//! End-to-end scheduler tests: full workflows with staging on a
//! simulated NEXTGenIO slice.

use norns::{HasNorns, NornsWorld, TaskCompletion};
use simcore::{CompletedFlow, FluidModel, FluidSystem, Sim, SimDuration, SimTime};
use simstore::{Cred, Mode};
use slurm_sim::{
    submit_script, HasSlurm, JobBody, JobEvent, JobState, SchedConfig, SlurmJobId, Slurmctld,
};

const GIB: u64 = 1 << 30;

struct Model {
    world: NornsWorld,
    ctld: Slurmctld,
    events: Vec<(SimTime, JobEvent)>,
    /// (job name, bytes, tier, path) written into node-local storage
    /// when the job starts — simulates the application's output.
    writes_on_start: Vec<(String, u64, String, String)>,
}

impl FluidModel for Model {
    fn fluid_mut(&mut self) -> &mut FluidSystem {
        &mut self.world.fluid
    }
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
        norns::handle_flow_complete(sim, done);
    }
}

impl HasNorns for Model {
    fn norns_mut(&mut self) -> &mut NornsWorld {
        &mut self.world
    }
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
        slurm_sim::handle_task_complete(sim, &completion);
    }
}

impl HasSlurm for Model {
    fn ctld_mut(&mut self) -> &mut Slurmctld {
        &mut self.ctld
    }
    fn on_job_event(sim: &mut Sim<Self>, event: JobEvent) {
        let now = sim.now();
        sim.model.events.push((now, event.clone()));
        // Simulate application output at job start.
        if let JobEvent::Started { job, nodes } = &event {
            let name = sim.model.ctld.job(*job).unwrap().script.name.clone();
            let writes = sim.model.writes_on_start.clone();
            for (jname, bytes, tier, path) in writes {
                if jname == name {
                    let t = sim.model.world.storage.resolve(&tier).unwrap();
                    for &n in nodes {
                        let node_arg = if sim.model.world.storage.kind(t).is_node_local() {
                            Some(n)
                        } else {
                            None
                        };
                        sim.model
                            .world
                            .storage
                            .ns_mut(t, node_arg)
                            .write_file(&path, bytes, &Cred::new(1000, 1000), Mode(0o644))
                            .unwrap();
                    }
                }
            }
        }
    }
}

fn testbed(nodes: usize, config: SchedConfig) -> Sim<Model> {
    let tb = cluster::nextgenio_quiet(nodes);
    let ctld = Slurmctld::new(nodes, config);
    let model = Model {
        world: tb.world,
        ctld,
        events: Vec::new(),
        writes_on_start: Vec::new(),
    };
    let mut sim = Sim::new(model, 7);
    for n in 0..nodes {
        norns::sim::ops::register_dataspace(&mut sim, n, "pmdk0", "pmdk0", false).unwrap();
        norns::sim::ops::register_dataspace(&mut sim, n, "lustre", "lustre", false).unwrap();
    }
    sim
}

fn cred() -> Cred {
    Cred::new(1000, 1000)
}

fn state_of(sim: &Sim<Model>, id: SlurmJobId) -> JobState {
    sim.model.ctld.job(id).unwrap().state
}

fn put_pfs(sim: &mut Sim<Model>, path: &str, bytes: u64) {
    let t = sim.model.world.storage.resolve("lustre").unwrap();
    sim.model
        .world
        .storage
        .ns_mut(t, None)
        .write_file(path, bytes, &cred(), Mode(0o644))
        .unwrap();
}

fn nvm_has(sim: &Sim<Model>, node: usize, path: &str) -> bool {
    let t = sim.model.world.storage.resolve("pmdk0").unwrap();
    sim.model.world.storage.ns(t, Some(node)).exists(path)
}

#[test]
fn fixed_job_without_staging_completes() {
    let mut sim = testbed(4, SchedConfig::default());
    let id = submit_script(
        &mut sim,
        "#SBATCH --job-name=hello\n#SBATCH --nodes=2\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(120)),
    )
    .unwrap();
    sim.run();
    assert_eq!(state_of(&sim, id), JobState::Completed);
    let job = sim.model.ctld.job(id).unwrap();
    assert_eq!(job.compute_time(), Some(SimDuration::from_secs(120)));
    assert_eq!(job.nodes.len(), 2);
    assert_eq!(sim.model.ctld.free_nodes(), 4, "nodes released");
}

#[test]
fn stage_in_runs_before_compute_and_cleans_after() {
    let mut sim = testbed(2, SchedConfig::default());
    put_pfs(&mut sim, "inputs/mesh.dat", 2 * GIB);
    let id = submit_script(
        &mut sim,
        "#SBATCH --job-name=sim\n#SBATCH --nodes=2\n\
         #NORNS stage_in lustre://inputs/mesh.dat pmdk0://work/mesh.dat all\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(60)),
    )
    .unwrap();
    // Run until the job starts computing.
    while state_of(&sim, id) != JobState::Running && sim.step() {}
    assert_eq!(state_of(&sim, id), JobState::Running);
    // Data present on both nodes during compute.
    assert!(nvm_has(&sim, 0, "work/mesh.dat"));
    assert!(nvm_has(&sim, 1, "work/mesh.dat"));
    let job = sim.model.ctld.job(id).unwrap();
    let stage_secs = job.stage_in_time().unwrap().as_secs_f64();
    // Two nodes pulling 2 GiB each from Lustre concurrently: client
    // lanes 2×2.4 GiB/s demand vs ~4.4 GiB/s OST read: ≈0.9-1.1 s.
    assert!(
        (0.5..2.0).contains(&stage_secs),
        "stage-in took {stage_secs}"
    );
    sim.run();
    assert_eq!(state_of(&sim, id), JobState::Completed);
    // cleanup_stage_in removed the staged copies.
    assert!(!nvm_has(&sim, 0, "work/mesh.dat"));
    assert!(!nvm_has(&sim, 1, "work/mesh.dat"));
}

#[test]
fn stage_out_moves_results_to_pfs() {
    let mut sim = testbed(1, SchedConfig::default());
    sim.model.writes_on_start.push((
        "producer".into(),
        4 * GIB,
        "pmdk0".into(),
        "out/result.dat".into(),
    ));
    let id = submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n\
         #NORNS stage_out pmdk0://out lustre://archive/run1 gather\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(30)),
    )
    .unwrap();
    sim.run();
    assert_eq!(state_of(&sim, id), JobState::Completed);
    let t = sim.model.world.storage.resolve("lustre").unwrap();
    assert!(sim
        .model
        .world
        .storage
        .ns(t, None)
        .exists("archive/run1/result.dat"));
    assert!(
        !nvm_has(&sim, 0, "out/result.dat"),
        "move semantics clear the NVM"
    );
    let job = sim.model.ctld.job(id).unwrap();
    assert!(job.stage_out_time().unwrap() > SimDuration::ZERO);
    assert!(job.leftover_stageout.is_empty());
}

#[test]
fn workflow_persist_reuses_producer_node() {
    let mut sim = testbed(4, SchedConfig::default());
    sim.model.writes_on_start.push((
        "producer".into(),
        8 * GIB,
        "pmdk0".into(),
        "shared/data.bin".into(),
    ));
    let producer = submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://shared alice\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(60)),
    )
    .unwrap();
    let consumer = submit_script(
        &mut sim,
        "#SBATCH --job-name=consumer\n#SBATCH --nodes=1\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=producer\n\
         #NORNS stage_in pmdk0://shared pmdk0://shared all\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(30)),
    )
    .unwrap();
    sim.run();
    assert_eq!(state_of(&sim, producer), JobState::Completed);
    assert_eq!(state_of(&sim, consumer), JobState::Completed);
    let pnodes = sim.model.ctld.job(producer).unwrap().nodes.clone();
    let cnodes = sim.model.ctld.job(consumer).unwrap().nodes.clone();
    assert_eq!(
        pnodes, cnodes,
        "data affinity should reuse the producer's node"
    );
    // Stage-in was a no-op: data already local.
    let cjob = sim.model.ctld.job(consumer).unwrap();
    assert_eq!(cjob.stage_in_time(), Some(SimDuration::ZERO));
    // The consumer must not start before the producer completes.
    let pfin = sim.model.ctld.job(producer).unwrap().finished.unwrap();
    let cstart = sim
        .model
        .ctld
        .job(consumer)
        .unwrap()
        .stage_in_started
        .unwrap();
    assert!(cstart >= pfin);
}

#[test]
fn persisted_data_is_pulled_node_to_node_when_needed() {
    let mut sim = testbed(2, SchedConfig::default());
    sim.model.writes_on_start.push((
        "producer".into(),
        2 * GIB,
        "pmdk0".into(),
        "shared/data.bin".into(),
    ));
    let producer = submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://shared alice\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    // Consumer needs BOTH nodes: node 0 holds the data (skip), node 1
    // pulls it over the fabric.
    let consumer = submit_script(
        &mut sim,
        "#SBATCH --job-name=consumer\n#SBATCH --nodes=2\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=producer\n\
         #NORNS stage_in pmdk0://shared pmdk0://shared all\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    sim.run();
    assert_eq!(state_of(&sim, producer), JobState::Completed);
    assert_eq!(state_of(&sim, consumer), JobState::Completed);
    let cjob = sim.model.ctld.job(consumer).unwrap();
    let stage = cjob.stage_in_time().unwrap().as_secs_f64();
    // 2 GiB over the 1.7 GiB/s pull session ≈ 1.2 s.
    assert!(
        (0.8..2.5).contains(&stage),
        "node-to-node stage took {stage}"
    );
}

#[test]
fn workflow_failure_cancels_downstream_jobs() {
    let mut sim = testbed(2, SchedConfig::default());
    // Producer's stage-in references a missing PFS file → job fails.
    let producer = submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS stage_in lustre://missing.dat pmdk0://in all\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    let consumer = submit_script(
        &mut sim,
        "#SBATCH --job-name=consumer\n#SBATCH --nodes=1\n\
         #SBATCH --workflow-prior-dependency=producer\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    let tail = submit_script(
        &mut sim,
        "#SBATCH --job-name=tail\n#SBATCH --nodes=1\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=consumer\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    sim.run();
    assert_eq!(state_of(&sim, producer), JobState::Failed);
    assert_eq!(state_of(&sim, consumer), JobState::Cancelled);
    assert_eq!(state_of(&sim, tail), JobState::Cancelled);
    assert_eq!(sim.model.ctld.free_nodes(), 2);
}

#[test]
fn stage_in_timeout_cancels_and_cleans() {
    let config = SchedConfig {
        stage_in_timeout: SimDuration::from_millis(200),
        ..Default::default()
    };
    let mut sim = testbed(1, config);
    // 100 GiB from Lustre takes far longer than 200 ms.
    put_pfs(&mut sim, "big/dataset", 100 * GIB);
    let id = submit_script(
        &mut sim,
        "#SBATCH --job-name=big\n#SBATCH --nodes=1\n\
         #NORNS stage_in lustre://big/dataset pmdk0://big all\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    sim.run();
    assert_eq!(state_of(&sim, id), JobState::Cancelled);
    let job = sim.model.ctld.job(id).unwrap();
    assert_eq!(job.failure_reason.as_deref(), Some("stage-in timeout"));
    // In-flight transfer finished eventually, then cleanup removed it.
    assert!(!nvm_has(&sim, 0, "big"), "staged data must be cleaned up");
    assert_eq!(sim.model.ctld.free_nodes(), 1, "node returned to the pool");
}

#[test]
fn stage_out_failure_leaves_data_for_recovery() {
    let mut sim = testbed(1, SchedConfig::default());
    // Fill Lustre almost completely so the stage-out hits NoSpace.
    {
        let t = sim.model.world.storage.resolve("lustre").unwrap();
        let ns = sim.model.world.storage.ns_mut(t, None);
        let avail = ns.available();
        ns.write_file("filler.bin", avail - GIB / 2, &cred(), Mode(0o644))
            .unwrap();
    }
    sim.model.writes_on_start.push((
        "producer".into(),
        2 * GIB,
        "pmdk0".into(),
        "out/result.dat".into(),
    ));
    let id = submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n\
         #NORNS stage_out pmdk0://out lustre://archive gather\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(5)),
    )
    .unwrap();
    sim.run();
    // Job still completes; data left on the node for later recovery.
    assert_eq!(state_of(&sim, id), JobState::Completed);
    let job = sim.model.ctld.job(id).unwrap();
    assert_eq!(job.leftover_stageout.len(), 1);
    assert!(nvm_has(&sim, 0, "out/result.dat"), "data left in place");
}

#[test]
fn workflow_boost_prioritizes_later_phases() {
    let config = SchedConfig {
        backfill: false,
        ..Default::default()
    };
    let mut sim = testbed(1, config);
    sim.model
        .writes_on_start
        .push(("phase1".into(), GIB, "pmdk0".into(), "wf/data".into()));
    let phase1 = submit_script(
        &mut sim,
        "#SBATCH --job-name=phase1\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://wf alice\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(100)),
    )
    .unwrap();
    // An unrelated job queued while phase1 runs (older than phase2).
    let unrelated = submit_script(
        &mut sim,
        "#SBATCH --job-name=other\n#SBATCH --nodes=1\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(100)),
    )
    .unwrap();
    let phase2 = submit_script(
        &mut sim,
        "#SBATCH --job-name=phase2\n#SBATCH --nodes=1\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=phase1\n\
         #NORNS stage_in pmdk0://wf pmdk0://wf all\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(50)),
    )
    .unwrap();
    sim.run();
    let p2_start = sim.model.ctld.job(phase2).unwrap().started.unwrap();
    let other_start = sim.model.ctld.job(unrelated).unwrap().started.unwrap();
    assert!(
        p2_start < other_start,
        "workflow boost should run phase2 ({p2_start}) before the older unrelated job ({other_start})"
    );
    assert_eq!(state_of(&sim, phase1), JobState::Completed);
    assert_eq!(state_of(&sim, phase2), JobState::Completed);
    assert_eq!(state_of(&sim, unrelated), JobState::Completed);
}

#[test]
fn backfill_lets_small_jobs_jump_blocked_heads() {
    let run = |backfill: bool| -> (SimTime, SimTime) {
        let config = SchedConfig {
            backfill,
            ..Default::default()
        };
        let mut sim = testbed(2, config);
        let _a = submit_script(
            &mut sim,
            "#SBATCH --job-name=a\n#SBATCH --nodes=1\n",
            cred(),
            JobBody::Fixed(SimDuration::from_secs(100)),
        )
        .unwrap();
        // Head of queue: needs both nodes, blocked while A runs.
        let b = submit_script(
            &mut sim,
            "#SBATCH --job-name=b\n#SBATCH --nodes=2\n",
            cred(),
            JobBody::Fixed(SimDuration::from_secs(10)),
        )
        .unwrap();
        // Small job that fits on the free node right now.
        let c = submit_script(
            &mut sim,
            "#SBATCH --job-name=c\n#SBATCH --nodes=1\n",
            cred(),
            JobBody::Fixed(SimDuration::from_secs(10)),
        )
        .unwrap();
        sim.run();
        (
            sim.model.ctld.job(c).unwrap().started.unwrap(),
            sim.model.ctld.job(b).unwrap().started.unwrap(),
        )
    };
    let (c_with, _) = run(true);
    let (c_without, _) = run(false);
    assert!(
        c_with < c_without,
        "backfill should start C earlier ({c_with} vs {c_without})"
    );
    assert_eq!(c_with, SimTime::ZERO, "C backfills immediately");
}

#[test]
fn workflow_status_reports_all_jobs() {
    let mut sim = testbed(2, SchedConfig::default());
    sim.model
        .writes_on_start
        .push(("p".into(), GIB, "pmdk0".into(), "d/x".into()));
    let p = submit_script(
        &mut sim,
        "#SBATCH --job-name=p\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://d alice\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(500)),
    )
    .unwrap();
    let c = submit_script(
        &mut sim,
        "#SBATCH --job-name=c\n#SBATCH --nodes=1\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=p\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(5)),
    )
    .unwrap();
    // Mid-run: p running, c pending.
    sim.run_until(SimTime::from_secs(100));
    let wf = sim.model.ctld.job(p).unwrap().workflow.unwrap();
    let status = sim.model.ctld.workflow_status(wf);
    assert_eq!(status.len(), 2);
    assert_eq!(status[0].1, "p");
    assert_eq!(status[0].2, JobState::Running);
    assert_eq!(status[1].1, "c");
    assert_eq!(status[1].2, JobState::Pending);
    sim.run();
    let status = sim.model.ctld.workflow_status(wf);
    assert!(status.iter().all(|(_, _, s)| *s == JobState::Completed));
    let _ = c;
}

#[test]
fn scatter_mapping_splits_children_across_nodes() {
    let mut sim = testbed(2, SchedConfig::default());
    // 4 children in a PFS dir, scattered over 2 nodes.
    for i in 0..4 {
        put_pfs(&mut sim, &format!("case/processor{i}/U"), GIB / 4);
    }
    let id = submit_script(
        &mut sim,
        "#SBATCH --job-name=solver\n#SBATCH --nodes=2\n\
         #NORNS stage_in lustre://case pmdk0://case scatter\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(600)),
    )
    .unwrap();
    while state_of(&sim, id) != JobState::Running && sim.step() {}
    // Children alternate: processor0,2 → node0; processor1,3 → node1.
    assert!(nvm_has(&sim, 0, "case/processor0/U"));
    assert!(nvm_has(&sim, 1, "case/processor1/U"));
    assert!(nvm_has(&sim, 0, "case/processor2/U"));
    assert!(nvm_has(&sim, 1, "case/processor3/U"));
    assert!(
        !nvm_has(&sim, 0, "case/processor1/U"),
        "scatter must not replicate"
    );
    sim.run();
}

#[test]
fn events_are_logged_in_order() {
    let mut sim = testbed(1, SchedConfig::default());
    put_pfs(&mut sim, "in.dat", GIB);
    sim.model
        .writes_on_start
        .push(("j".into(), GIB, "pmdk0".into(), "out.dat".into()));
    let id = submit_script(
        &mut sim,
        "#SBATCH --job-name=j\n#SBATCH --nodes=1\n\
         #NORNS stage_in lustre://in.dat pmdk0://in.dat all\n\
         #NORNS stage_out pmdk0://out.dat lustre://out.dat gather\n",
        cred(),
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    sim.run();
    let kinds: Vec<&'static str> = sim
        .model
        .events
        .iter()
        .filter(|(_, e)| e.job() == id)
        .map(|(_, e)| match e {
            JobEvent::Submitted { .. } => "submitted",
            JobEvent::StageInStarted { .. } => "stage-in",
            JobEvent::Started { .. } => "started",
            JobEvent::StageOutStarted { .. } => "stage-out",
            JobEvent::Completed { .. } => "completed",
            _ => "other",
        })
        .collect();
    assert_eq!(
        kinds,
        vec!["submitted", "stage-in", "started", "stage-out", "completed"]
    );
}
