//! Property-based tests of the fluid max-min allocator: for arbitrary
//! topologies and flow sets, the computed allocation must respect
//! every capacity, every per-flow cap, and max-min efficiency
//! (no resource that could serve more is left idle while a flow on it
//! is unsaturated).

use proptest::prelude::*;
use simcore::{FlowSpec, FluidNetwork, SimTime};

#[derive(Debug, Clone)]
struct Topo {
    capacities: Vec<f64>,
    // (path resource indices, cap)
    flows: Vec<(Vec<usize>, f64)>,
}

fn topo_strategy() -> impl Strategy<Value = Topo> {
    let caps = proptest::collection::vec(1.0f64..1000.0, 1..8);
    caps.prop_flat_map(|capacities| {
        let n = capacities.len();
        let flow = (
            proptest::collection::btree_set(0..n, 1..=n.min(4)),
            prop_oneof![Just(f64::INFINITY), 0.5f64..500.0],
        )
            .prop_map(|(path, cap)| (path.into_iter().collect::<Vec<_>>(), cap));
        (Just(capacities), proptest::collection::vec(flow, 1..12))
    })
    .prop_map(|(capacities, flows)| Topo { capacities, flows })
}

fn build(topo: &Topo) -> (FluidNetwork, Vec<simcore::ResourceId>, Vec<simcore::FlowId>) {
    let mut net = FluidNetwork::new();
    let rids: Vec<_> = topo
        .capacities
        .iter()
        .enumerate()
        .map(|(i, c)| net.add_resource(*c, format!("r{i}")))
        .collect();
    let fids: Vec<_> = topo
        .flows
        .iter()
        .map(|(path, cap)| {
            let path: Vec<_> = path.iter().map(|i| rids[*i]).collect();
            net.start_flow(SimTime::ZERO, FlowSpec::new(1e9, path).with_cap(*cap))
        })
        .collect();
    net.recompute();
    (net, rids, fids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rates_respect_capacities_and_caps(topo in topo_strategy()) {
        let (net, rids, fids) = build(&topo);
        // Per-flow cap respected.
        for (fid, (_, cap)) in fids.iter().zip(&topo.flows) {
            let rate = net.flow_rate(*fid).unwrap();
            prop_assert!(rate >= 0.0);
            prop_assert!(rate <= cap * (1.0 + 1e-9) + 1e-6, "rate {rate} > cap {cap}");
        }
        // Per-resource capacity respected (counting multiplicity for
        // flows that cross a resource more than once — our builder
        // uses sets, so each flow crosses each resource at most once).
        for (ri, _rid) in rids.iter().enumerate() {
            let mut used = 0.0;
            for (fid, (path, _)) in fids.iter().zip(&topo.flows) {
                if path.contains(&ri) {
                    used += net.flow_rate(*fid).unwrap();
                }
            }
            let cap = topo.capacities[ri];
            prop_assert!(
                used <= cap * (1.0 + 1e-6) + 1e-6,
                "resource {ri}: used {used} > cap {cap}"
            );
        }
    }

    #[test]
    fn allocation_is_maximal(topo in topo_strategy()) {
        // Max-min implies Pareto efficiency: every flow is blocked by
        // either its own cap or a saturated resource on its path.
        let (net, rids, fids) = build(&topo);
        let mut usage = vec![0.0f64; rids.len()];
        for (fid, (path, _)) in fids.iter().zip(&topo.flows) {
            for ri in path {
                usage[*ri] += net.flow_rate(*fid).unwrap();
            }
        }
        for (fid, (path, cap)) in fids.iter().zip(&topo.flows) {
            let rate = net.flow_rate(*fid).unwrap();
            let at_cap = rate >= cap - 1e-6;
            let blocked = path.iter().any(|ri| {
                usage[*ri] >= topo.capacities[*ri] * (1.0 - 1e-6)
            });
            prop_assert!(
                at_cap || blocked,
                "flow {fid:?} at {rate} is neither capped ({cap}) nor blocked"
            );
        }
    }

    #[test]
    fn conservation_through_time(topo in topo_strategy(), dt in 0.001f64..100.0) {
        // Advancing time never creates bytes: total moved equals
        // sum(rate × dt) within float tolerance, and remaining bytes
        // never go negative.
        let (mut net, _rids, fids) = build(&topo);
        let before: Vec<f64> =
            fids.iter().map(|f| net.flow_remaining(*f).unwrap_or(0.0)).collect();
        let rates: Vec<f64> = fids.iter().map(|f| net.flow_rate(*f).unwrap_or(0.0)).collect();
        net.advance(SimTime::from_secs_f64(dt));
        for ((fid, b), r) in fids.iter().zip(&before).zip(&rates) {
            match net.flow_remaining(*fid) {
                Some(after) => {
                    prop_assert!(after >= -1e-6);
                    let moved = b - after;
                    prop_assert!((moved - r * dt).abs() <= 1e-3 * (1.0 + r * dt));
                }
                None => {
                    // Completed: it must have had enough rate to drain.
                    prop_assert!(r * dt >= b - 1e-3, "flow finished early");
                }
            }
        }
    }
}
