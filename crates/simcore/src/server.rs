//! A FIFO queueing server with bounded concurrency.
//!
//! Models request-serving components with a fixed service capacity: the
//! PFS metadata server, an RPC handler pool, a staging worker pool.
//! Like [`crate::fluid::FluidNetwork`] it is a passive state machine;
//! the owner schedules one event per service completion.
//!
//! Jobs are identified by a caller-chosen `u64` tag. The server tracks
//! queueing and service; on completion the owner gets the tag back
//! along with waiting/service times.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    tag: u64,
    arrived: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct InService {
    tag: u64,
    arrived: SimTime,
    started: SimTime,
    finishes: SimTime,
}

/// Completion record for one served job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    pub tag: u64,
    pub arrived: SimTime,
    pub started: SimTime,
    pub finished: SimTime,
}

impl Served {
    pub fn wait(&self) -> SimDuration {
        self.started - self.arrived
    }

    pub fn service(&self) -> SimDuration {
        self.finished - self.started
    }

    pub fn sojourn(&self) -> SimDuration {
        self.finished - self.arrived
    }
}

/// FIFO multi-server queue.
#[derive(Debug)]
pub struct FifoServer {
    servers: usize,
    queue: VecDeque<Job>,
    in_service: Vec<InService>,
}

impl FifoServer {
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0);
        FifoServer {
            servers,
            queue: VecDeque::new(),
            in_service: Vec::new(),
        }
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub fn busy(&self) -> usize {
        self.in_service.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_empty()
    }

    /// Submit a job; `service_time` is sampled by the caller (so the
    /// caller's RNG controls determinism). Returns true if the job
    /// started immediately.
    pub fn submit(
        &mut self,
        now: SimTime,
        tag: u64,
        service_time: SimDuration,
        pending_service: &mut Vec<(u64, SimDuration)>,
    ) -> bool {
        self.queue.push_back(Job { tag, arrived: now });
        pending_service.push((tag, service_time));
        self.try_start(now, pending_service)
    }

    /// Start queued jobs while servers are free. Returns whether
    /// anything started. The caller then re-arms its completion event
    /// at [`FifoServer::next_completion`].
    pub fn try_start(
        &mut self,
        now: SimTime,
        pending_service: &mut Vec<(u64, SimDuration)>,
    ) -> bool {
        let mut any = false;
        while self.in_service.len() < self.servers {
            let Some(job) = self.queue.pop_front() else {
                break;
            };
            let idx = pending_service
                .iter()
                .position(|(t, _)| *t == job.tag)
                .expect("service time for queued job");
            let (_, svc) = pending_service.remove(idx);
            self.in_service.push(InService {
                tag: job.tag,
                arrived: job.arrived,
                started: now,
                finishes: now + svc,
            });
            any = true;
        }
        any
    }

    /// Earliest in-service completion.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.in_service.iter().map(|j| j.finishes).min()
    }

    /// Pop all jobs that finish at or before `now`.
    pub fn complete_due(&mut self, now: SimTime) -> Vec<Served> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].finishes <= now {
                let j = self.in_service.swap_remove(i);
                done.push(Served {
                    tag: j.tag,
                    arrived: j.arrived,
                    started: j.started,
                    finished: j.finishes,
                });
            } else {
                i += 1;
            }
        }
        // Deterministic delivery order.
        done.sort_by_key(|s| (s.finished, s.tag));
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn single_server_serializes() {
        let mut srv = FifoServer::new(1);
        let mut pend = Vec::new();
        assert!(srv.submit(t(0), 1, d(5), &mut pend));
        assert!(
            !srv.submit(t(0), 2, d(5), &mut pend),
            "second job must queue"
        );
        assert_eq!(srv.queue_len(), 1);
        assert_eq!(srv.next_completion(), Some(t(5)));

        let done = srv.complete_due(t(5));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        assert_eq!(done[0].wait(), SimDuration::ZERO);

        srv.try_start(t(5), &mut pend);
        let done = srv.complete_due(t(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 2);
        assert_eq!(done[0].wait(), d(5));
        assert!(srv.is_idle());
    }

    #[test]
    fn multi_server_runs_concurrently() {
        let mut srv = FifoServer::new(3);
        let mut pend = Vec::new();
        for tag in 0..3 {
            srv.submit(t(0), tag, d(4), &mut pend);
        }
        assert_eq!(srv.busy(), 3);
        assert_eq!(srv.queue_len(), 0);
        let done = srv.complete_due(t(4));
        assert_eq!(done.len(), 3);
        for s in done {
            assert_eq!(s.sojourn(), d(4));
        }
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut srv = FifoServer::new(1);
        let mut pend = Vec::new();
        srv.submit(t(0), 10, d(1), &mut pend);
        srv.submit(t(0), 20, d(1), &mut pend);
        srv.submit(t(0), 30, d(1), &mut pend);
        let mut order = Vec::new();
        let mut now;
        while !srv.is_idle() {
            let next = srv.next_completion().unwrap();
            now = next;
            for s in srv.complete_due(now) {
                order.push(s.tag);
            }
            srv.try_start(now, &mut pend);
        }
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn completion_time_accounts_for_queueing() {
        let mut srv = FifoServer::new(1);
        let mut pend = Vec::new();
        srv.submit(t(0), 1, d(3), &mut pend);
        srv.submit(t(1), 2, d(3), &mut pend);
        let done = srv.complete_due(t(3));
        assert_eq!(done[0].tag, 1);
        srv.try_start(t(3), &mut pend);
        let done = srv.complete_due(t(6));
        assert_eq!(done[0].tag, 2);
        assert_eq!(done[0].wait(), d(2));
        assert_eq!(done[0].sojourn(), SimDuration::from_secs(5));
    }
}
