//! Glue between [`FluidNetwork`] and [`Sim`].
//!
//! A model that owns a fluid network implements [`FluidModel`]; the
//! free functions here keep exactly one pending completion event armed
//! and deliver [`CompletedFlow`]s to the model's handler. All flow
//! mutations must go through these functions (or through
//! [`with_fluid`]) so the pending event stays consistent.

use crate::fluid::{CompletedFlow, FlowId, FlowSpec, FluidNetwork};
use crate::sim::{EventId, Sim};

/// A fluid network plus the id of its armed completion event.
#[derive(Debug)]
pub struct FluidSystem {
    pub net: FluidNetwork,
    pending: EventId,
}

impl Default for FluidSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl FluidSystem {
    pub fn new() -> Self {
        FluidSystem {
            net: FluidNetwork::new(),
            pending: EventId::NONE,
        }
    }
}

/// Implemented by simulation models that own a [`FluidSystem`].
pub trait FluidModel: Sized + 'static {
    fn fluid_mut(&mut self) -> &mut FluidSystem;

    /// Called once per completed flow, in completion order.
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow);
}

/// Start a flow and (re)arm the completion event.
pub fn start_flow<M: FluidModel>(sim: &mut Sim<M>, spec: FlowSpec) -> FlowId {
    let now = sim.now();
    let fs = sim.model.fluid_mut();
    fs.net.advance(now);
    let id = fs.net.start_flow(now, spec);
    fs.net.recompute();
    rearm_and_deliver(sim);
    id
}

/// Cancel a flow; returns the bytes it had left.
pub fn cancel_flow<M: FluidModel>(sim: &mut Sim<M>, flow: FlowId) -> Option<f64> {
    let now = sim.now();
    let fs = sim.model.fluid_mut();
    fs.net.advance(now);
    let left = fs.net.cancel_flow(flow);
    fs.net.recompute();
    rearm_and_deliver(sim);
    left
}

/// Apply an arbitrary mutation (capacity change, batch of starts...)
/// with correct advance/recompute/rearm sequencing.
pub fn with_fluid<M: FluidModel, R>(sim: &mut Sim<M>, f: impl FnOnce(&mut FluidNetwork) -> R) -> R {
    let now = sim.now();
    let fs = sim.model.fluid_mut();
    fs.net.advance(now);
    let out = f(&mut fs.net);
    fs.net.recompute();
    rearm_and_deliver(sim);
    out
}

fn on_tick<M: FluidModel>(sim: &mut Sim<M>) {
    let now = sim.now();
    let fs = sim.model.fluid_mut();
    fs.pending = EventId::NONE;
    fs.net.advance(now);
    fs.net.recompute();
    rearm_and_deliver(sim);
}

/// Re-arm the single completion event and deliver any completions that
/// accumulated (zero-byte flows, advance() past completion, ...).
/// Delivery happens *after* rearming so handlers can start new flows.
fn rearm_and_deliver<M: FluidModel>(sim: &mut Sim<M>) {
    let fs = sim.model.fluid_mut();
    let old = std::mem::replace(&mut fs.pending, EventId::NONE);
    sim.cancel(old);

    let fs = sim.model.fluid_mut();
    let next = fs.net.next_completion();
    if let Some(t) = next {
        let id = sim.schedule_at(t, on_tick::<M>);
        sim.model.fluid_mut().pending = id;
    }

    let done = sim.model.fluid_mut().net.take_completed();
    for d in done {
        M::on_flow_complete(sim, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    struct Model {
        fluid: FluidSystem,
        completions: Vec<(u64, SimTime)>,
        chain: bool,
        link: crate::fluid::ResourceId,
    }

    impl FluidModel for Model {
        fn fluid_mut(&mut self) -> &mut FluidSystem {
            &mut self.fluid
        }
        fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
            let t = sim.now();
            sim.model.completions.push((done.tag, t));
            if sim.model.chain && done.tag < 3 {
                let link = sim.model.link;
                let tag = done.tag + 1;
                start_flow(sim, FlowSpec::new(100.0, vec![link]).with_tag(tag));
            }
        }
    }

    fn new_sim(chain: bool) -> Sim<Model> {
        let mut fluid = FluidSystem::new();
        let link = fluid.net.add_resource(100.0, "link");
        Sim::new(
            Model {
                fluid,
                completions: Vec::new(),
                chain,
                link,
            },
            0,
        )
    }

    #[test]
    fn completion_event_fires_at_the_right_time() {
        let mut sim = new_sim(false);
        let link = sim.model.link;
        start_flow(&mut sim, FlowSpec::new(500.0, vec![link]).with_tag(1));
        sim.run();
        assert_eq!(sim.model.completions.len(), 1);
        let (tag, t) = sim.model.completions[0];
        assert_eq!(tag, 1);
        assert!((t.as_secs_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn staggered_flows_rebalance_and_complete_in_order() {
        let mut sim = new_sim(false);
        let link = sim.model.link;
        // Flow 1 alone for 2s (200 B done), then shares with flow 2.
        start_flow(&mut sim, FlowSpec::new(400.0, vec![link]).with_tag(1));
        sim.schedule_at(SimTime::from_secs(2), move |sim| {
            start_flow(sim, FlowSpec::new(400.0, vec![link]).with_tag(2));
        });
        sim.run();
        // Flow1: 200B left at t=2, at 50B/s → t=6. Flow2: 400B at 50,
        // then alone at 100 from t=6 with 200 left → t=8.
        assert_eq!(sim.model.completions.len(), 2);
        assert_eq!(sim.model.completions[0].0, 1);
        assert!((sim.model.completions[0].1.as_secs_f64() - 6.0).abs() < 1e-6);
        assert_eq!(sim.model.completions[1].0, 2);
        assert!((sim.model.completions[1].1.as_secs_f64() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn handlers_can_chain_new_flows() {
        let mut sim = new_sim(true);
        let link = sim.model.link;
        start_flow(&mut sim, FlowSpec::new(100.0, vec![link]).with_tag(1));
        sim.run();
        // 1 → 2 → 3, each 1s on a 100 B/s link.
        let tags: Vec<u64> = sim.model.completions.iter().map(|c| c.0).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert!((sim.model.completions[2].1.as_secs_f64() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_delivers_immediately() {
        let mut sim = new_sim(false);
        let link = sim.model.link;
        start_flow(&mut sim, FlowSpec::new(0.0, vec![link]).with_tag(9));
        assert_eq!(sim.model.completions.len(), 1);
        assert_eq!(sim.model.completions[0].0, 9);
    }

    #[test]
    fn cancel_prevents_completion() {
        let mut sim = new_sim(false);
        let link = sim.model.link;
        let f = start_flow(&mut sim, FlowSpec::new(500.0, vec![link]).with_tag(1));
        let left = cancel_flow(&mut sim, f).unwrap();
        assert!((left - 500.0).abs() < 1e-9);
        sim.run();
        assert!(sim.model.completions.is_empty());
    }

    #[test]
    fn with_fluid_capacity_change_reschedules() {
        let mut sim = new_sim(false);
        let link = sim.model.link;
        start_flow(&mut sim, FlowSpec::new(1000.0, vec![link]).with_tag(1));
        sim.schedule_at(SimTime::from_secs(5), move |sim| {
            // After 5s (500B done), drop capacity to 25 B/s → 20 more s.
            with_fluid(sim, |net| net.set_capacity(link, 25.0));
        });
        sim.run();
        assert_eq!(sim.model.completions.len(), 1);
        assert!((sim.model.completions[0].1.as_secs_f64() - 25.0).abs() < 1e-6);
    }
}
