//! Fluid-flow bandwidth model with max-min fair sharing.
//!
//! Every shared device in the simulated cluster — NIC, fabric core,
//! OST, NVM DIMM — is a [`Resource`] with a capacity in bytes/second.
//! A data movement is a [`Flow`] traversing an ordered path of
//! resources, optionally with a per-flow rate cap (e.g. a single
//! `ofi+tcp` stream saturates ≈1.7 GiB/s no matter how fat the link).
//!
//! Rates are assigned by *progressive filling*: all unfrozen flows grow
//! at the same rate until either a flow hits its cap or a resource
//! saturates; saturated participants freeze and filling continues. This
//! yields the classic max-min fair allocation and reproduces both
//! contention (many flows on one OST) and aggregation (many node-local
//! devices in parallel) — the two mechanisms behind every throughput
//! figure in the paper.
//!
//! The network itself is a passive state machine: callers must
//! [`FluidNetwork::advance`] it to the current time before mutating it
//! and re-arm a completion event afterwards. [`crate::fluid_driver`]
//! packages that pattern for use inside a [`crate::sim::Sim`].

use std::collections::BTreeSet;

use crate::slab::{Key, Slab};
use crate::time::{SimDuration, SimTime};

/// Handle to a bandwidth resource.
pub type ResourceId = Key;
/// Handle to an in-flight flow.
pub type FlowId = Key;

/// Bytes below which a flow counts as finished (guards float rounding).
const COMPLETE_EPS: f64 = 1e-3;

#[derive(Debug)]
struct Resource {
    /// Capacity in bytes per second. May be changed at runtime (the PFS
    /// interference model modulates OST capacity).
    capacity: f64,
    /// Flows currently traversing this resource. BTreeSet keeps
    /// iteration order deterministic.
    flows: BTreeSet<FlowId>,
    label: String,
}

#[derive(Debug)]
struct Flow {
    remaining: f64,
    total: f64,
    path: Vec<ResourceId>,
    rate_cap: f64,
    rate: f64,
    started: SimTime,
    /// Caller-supplied correlation tag (task id, client id, ...).
    tag: u64,
}

/// Description of a new flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    pub bytes: f64,
    pub path: Vec<ResourceId>,
    /// Per-flow rate cap in bytes/s; `f64::INFINITY` for none.
    pub rate_cap: f64,
    pub tag: u64,
}

impl FlowSpec {
    pub fn new(bytes: f64, path: Vec<ResourceId>) -> Self {
        FlowSpec {
            bytes,
            path,
            rate_cap: f64::INFINITY,
            tag: 0,
        }
    }

    pub fn with_cap(mut self, cap: f64) -> Self {
        self.rate_cap = cap;
        self
    }

    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// A finished (or cancelled) flow, reported to the model.
#[derive(Debug, Clone)]
pub struct CompletedFlow {
    pub flow: FlowId,
    pub tag: u64,
    pub bytes: f64,
    pub started: SimTime,
    pub finished: SimTime,
}

impl CompletedFlow {
    pub fn duration(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Mean achieved bandwidth in bytes/second.
    pub fn mean_rate(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.bytes / secs
        }
    }
}

/// The passive fluid-flow state machine.
#[derive(Debug, Default)]
pub struct FluidNetwork {
    resources: Slab<Resource>,
    flows: Slab<Flow>,
    last_advance: SimTime,
    completed: Vec<CompletedFlow>,
}

impl FluidNetwork {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_resource(&mut self, capacity_bps: f64, label: impl Into<String>) -> ResourceId {
        assert!(capacity_bps >= 0.0, "negative capacity");
        self.resources.insert(Resource {
            capacity: capacity_bps,
            flows: BTreeSet::new(),
            label: label.into(),
        })
    }

    pub fn resource_capacity(&self, rid: ResourceId) -> f64 {
        self.resources[rid].capacity
    }

    pub fn resource_label(&self, rid: ResourceId) -> &str {
        &self.resources[rid].label
    }

    /// Number of flows currently traversing `rid`.
    pub fn resource_load(&self, rid: ResourceId) -> usize {
        self.resources[rid].flows.len()
    }

    /// Change a resource's capacity (callers must have advanced the
    /// network to "now" first and must recompute afterwards).
    pub fn set_capacity(&mut self, rid: ResourceId, capacity_bps: f64) {
        assert!(capacity_bps >= 0.0);
        self.resources[rid].capacity = capacity_bps;
    }

    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    pub fn flow_rate(&self, fid: FlowId) -> Option<f64> {
        self.flows.get(fid).map(|f| f.rate)
    }

    pub fn flow_remaining(&self, fid: FlowId) -> Option<f64> {
        self.flows.get(fid).map(|f| f.remaining)
    }

    pub fn flow_progress(&self, fid: FlowId) -> Option<f64> {
        self.flows
            .get(fid)
            .map(|f| 1.0 - f.remaining / f.total.max(1e-12))
    }

    /// Progress all flows to `now`, moving any that finish into the
    /// completed list. Must be called before any mutation.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let dt = (now - self.last_advance).as_secs_f64();
        self.last_advance = now;
        let mut done: Vec<FlowId> = Vec::new();
        for (id, flow) in self.flows.iter_mut() {
            if flow.rate > 0.0 {
                flow.remaining -= flow.rate * dt;
                if flow.remaining <= COMPLETE_EPS {
                    flow.remaining = 0.0;
                    done.push(id);
                }
            }
        }
        for id in done {
            self.finish_flow(id, now);
        }
    }

    fn finish_flow(&mut self, id: FlowId, now: SimTime) {
        let flow = self.flows.remove(id).expect("finishing unknown flow");
        for rid in &flow.path {
            if let Some(r) = self.resources.get_mut(*rid) {
                r.flows.remove(&id);
            }
        }
        self.completed.push(CompletedFlow {
            flow: id,
            tag: flow.tag,
            bytes: flow.total,
            started: flow.started,
            finished: now,
        });
    }

    /// Start a flow. Zero-byte flows complete immediately.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        assert!(spec.bytes >= 0.0, "negative flow size");
        assert!(
            !spec.path.is_empty(),
            "flow must traverse at least one resource"
        );
        let id = self.flows.insert(Flow {
            remaining: spec.bytes,
            total: spec.bytes,
            path: spec.path.clone(),
            rate_cap: spec.rate_cap,
            rate: 0.0,
            started: now,
            tag: spec.tag,
        });
        if spec.bytes <= COMPLETE_EPS {
            self.finish_flow(id, now);
            return id;
        }
        for rid in &spec.path {
            self.resources[*rid].flows.insert(id);
        }
        id
    }

    /// Abort a flow, returning the bytes it had left (None if unknown
    /// or already finished).
    pub fn cancel_flow(&mut self, fid: FlowId) -> Option<f64> {
        let flow = self.flows.remove(fid)?;
        for rid in &flow.path {
            if let Some(r) = self.resources.get_mut(*rid) {
                r.flows.remove(&fid);
            }
        }
        Some(flow.remaining)
    }

    /// Recompute the max-min fair allocation via progressive filling.
    /// O(iterations × flows×path-len); iterations ≤ #resources+#flows.
    pub fn recompute(&mut self) {
        if self.flows.is_empty() {
            return;
        }
        // Working state, indexed by slab key.
        let flow_keys: Vec<FlowId> = self.flows.iter().map(|(k, _)| k).collect();
        let mut frozen: std::collections::HashMap<FlowId, bool> =
            flow_keys.iter().map(|k| (*k, false)).collect();
        let mut rate: std::collections::HashMap<FlowId, f64> =
            flow_keys.iter().map(|k| (*k, 0.0)).collect();

        let res_keys: Vec<ResourceId> = self.resources.iter().map(|(k, _)| k).collect();
        let mut remaining_cap: std::collections::HashMap<ResourceId, f64> = res_keys
            .iter()
            .map(|k| (*k, self.resources[*k].capacity))
            .collect();

        let mut unfrozen = flow_keys.len();
        // Each iteration freezes at least one flow, so this terminates.
        while unfrozen > 0 {
            // Count unfrozen flows per resource.
            let mut unfrozen_on: std::collections::HashMap<ResourceId, usize> =
                std::collections::HashMap::new();
            for k in &flow_keys {
                if frozen[k] {
                    continue;
                }
                for rid in &self.flows[*k].path {
                    *unfrozen_on.entry(*rid).or_insert(0) += 1;
                }
            }
            // The binding increment: smallest per-flow headroom across
            // saturating resources and flow caps.
            let mut inc = f64::INFINITY;
            for (rid, n) in &unfrozen_on {
                if *n > 0 {
                    inc = inc.min(remaining_cap[rid].max(0.0) / *n as f64);
                }
            }
            for k in &flow_keys {
                if !frozen[k] {
                    let f = &self.flows[*k];
                    inc = inc.min(f.rate_cap - rate[k]);
                }
            }
            if !inc.is_finite() {
                // All unfrozen flows are uncapped and cross no finite
                // resource: give them "infinite" rate (completes next
                // tick); practically this cannot happen since every
                // resource has finite capacity.
                inc = 0.0;
            }
            let inc = inc.max(0.0);

            // Apply the increment.
            for k in &flow_keys {
                if !frozen[k] {
                    *rate.get_mut(k).unwrap() += inc;
                }
            }
            for (rid, n) in &unfrozen_on {
                *remaining_cap.get_mut(rid).unwrap() -= inc * *n as f64;
            }

            // Freeze flows at their cap and flows crossing saturated
            // resources.
            let mut newly_frozen: Vec<FlowId> = Vec::new();
            for k in &flow_keys {
                if frozen[k] {
                    continue;
                }
                let f = &self.flows[*k];
                let at_cap = rate[k] >= f.rate_cap - 1e-9;
                let saturated = f
                    .path
                    .iter()
                    .any(|rid| remaining_cap[rid] <= self.resources[*rid].capacity * 1e-12 + 1e-9);
                if at_cap || saturated {
                    newly_frozen.push(*k);
                }
            }
            if newly_frozen.is_empty() {
                // Numerical stall: freeze everything to terminate.
                for k in &flow_keys {
                    if !frozen[k] {
                        newly_frozen.push(*k);
                    }
                }
            }
            for k in newly_frozen {
                if !frozen[&k] {
                    frozen.insert(k, true);
                    unfrozen -= 1;
                }
            }
        }

        for k in flow_keys {
            self.flows[k].rate = rate[&k];
        }
    }

    /// Earliest instant at which some flow completes at current rates.
    pub fn next_completion(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for (_, f) in self.flows.iter() {
            if f.rate > 0.0 {
                let secs = f.remaining / f.rate;
                // Round up to the next nanosecond so the event never
                // fires before the flow has actually drained.
                let ns = (secs * 1e9).ceil() as u64;
                let t = self.last_advance + SimDuration::from_nanos(ns.max(1));
                best = Some(match best {
                    Some(b) => b.min(t),
                    None => t,
                });
            }
        }
        best
    }

    /// Drain the completed-flow list.
    pub fn take_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        let f = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        net.recompute();
        assert!((net.flow_rate(f).unwrap() - 100.0).abs() < 1e-9);
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        let a = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        net.recompute();
        assert!((net.flow_rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert!((net.flow_rate(b).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn per_flow_cap_limits_and_leftover_is_shared() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        let capped = net.start_flow(
            SimTime::ZERO,
            FlowSpec::new(1000.0, vec![link]).with_cap(10.0),
        );
        let free = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        net.recompute();
        assert!((net.flow_rate(capped).unwrap() - 10.0).abs() < 1e-9);
        // Max-min: the uncapped flow takes the rest.
        assert!((net.flow_rate(free).unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_is_respected_on_multi_resource_paths() {
        let mut net = FluidNetwork::new();
        let nic = net.add_resource(100.0, "nic");
        let core = net.add_resource(40.0, "core");
        let f = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![nic, core]));
        net.recompute();
        assert!((net.flow_rate(f).unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_on_asymmetric_paths() {
        // Two flows share link A (cap 100); one of them also crosses
        // link B (cap 30). Max-min: constrained flow gets 30, the other
        // gets 70.
        let mut net = FluidNetwork::new();
        let a = net.add_resource(100.0, "A");
        let b = net.add_resource(30.0, "B");
        let f1 = net.start_flow(SimTime::ZERO, FlowSpec::new(1e6, vec![a, b]));
        let f2 = net.start_flow(SimTime::ZERO, FlowSpec::new(1e6, vec![a]));
        net.recompute();
        assert!((net.flow_rate(f1).unwrap() - 30.0).abs() < 1e-9);
        assert!((net.flow_rate(f2).unwrap() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn advance_completes_flows() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]).with_tag(7));
        net.recompute();
        net.advance(t(10.001));
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert!((done[0].bytes - 1000.0).abs() < 1e-9);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn partial_advance_tracks_remaining() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        let f = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        net.recompute();
        net.advance(t(4.0));
        assert!((net.flow_remaining(f).unwrap() - 600.0).abs() < 1e-6);
        assert!((net.flow_progress(f).unwrap() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn rates_rebalance_when_a_flow_finishes() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        let small = net.start_flow(SimTime::ZERO, FlowSpec::new(100.0, vec![link]));
        let big = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        net.recompute();
        // Both at 50 B/s; small finishes at t=2.
        net.advance(t(2.0));
        assert!(net.flow_rate(small).is_none());
        net.recompute();
        assert!((net.flow_rate(big).unwrap() - 100.0).abs() < 1e-9);
        // big had 900 left at t=2, now at 100 B/s → 9 more seconds.
        let done_at = net.next_completion().unwrap();
        assert!((done_at.as_secs_f64() - 11.0).abs() < 1e-6);
    }

    #[test]
    fn cancel_flow_returns_remaining_and_frees_resource() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        let a = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        net.recompute();
        net.advance(t(2.0));
        let left = net.cancel_flow(a).unwrap();
        assert!((left - 900.0).abs() < 1e-6);
        net.recompute();
        assert!((net.flow_rate(b).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(net.resource_load(link), 1);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        net.start_flow(t(1.0), FlowSpec::new(0.0, vec![link]).with_tag(3));
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished, t(1.0));
    }

    #[test]
    fn capacity_change_rebalances() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(100.0, "link");
        let f = net.start_flow(SimTime::ZERO, FlowSpec::new(1000.0, vec![link]));
        net.recompute();
        net.advance(t(1.0));
        net.set_capacity(link, 10.0);
        net.recompute();
        assert!((net.flow_rate(f).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_scales_linearly_across_disjoint_resources() {
        // 8 flows on 8 independent devices: total throughput = 8×cap —
        // the mechanism behind Fig. 8's node-local NVM scaling.
        let mut net = FluidNetwork::new();
        let mut total = 0.0;
        for i in 0..8 {
            let dev = net.add_resource(50.0, format!("nvm{i}"));
            net.start_flow(SimTime::ZERO, FlowSpec::new(1e6, vec![dev]));
        }
        net.recompute();
        let keys: Vec<_> = net.flows.iter().map(|(k, _)| k).collect();
        for k in keys {
            total += net.flow_rate(k).unwrap();
        }
        assert!((total - 400.0).abs() < 1e-6);
    }

    #[test]
    fn many_capped_flows_aggregate_until_shared_bottleneck() {
        // 32 flows capped at 1.7 into a shared resource of 100:
        // aggregated = min(32×1.7, 100) = 54.4 — the Fig. 6 shape.
        let mut net = FluidNetwork::new();
        let shared = net.add_resource(100.0, "target");
        for _ in 0..32 {
            net.start_flow(
                SimTime::ZERO,
                FlowSpec::new(1e9, vec![shared]).with_cap(1.7),
            );
        }
        net.recompute();
        let total: f64 = net
            .flows
            .iter()
            .map(|(k, _)| net.flow_rate(k).unwrap())
            .sum();
        assert!((total - 54.4).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn next_completion_never_fires_early() {
        let mut net = FluidNetwork::new();
        let link = net.add_resource(3.0, "link");
        net.start_flow(SimTime::ZERO, FlowSpec::new(10.0, vec![link]));
        net.recompute();
        let tc = net.next_completion().unwrap();
        net.advance(tc);
        assert_eq!(
            net.take_completed().len(),
            1,
            "flow must be done at its completion time"
        );
    }
}
