//! A small generational slab.
//!
//! Entries are addressed by a [`Key`] that embeds a generation counter,
//! so a key left dangling after `remove` can never alias a later
//! insertion in the same slot. This is the backing store for flows,
//! resources, sockets and any other frequently churning simulation
//! entity.

use std::fmt;

/// Opaque handle into a [`Slab`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    index: u32,
    generation: u32,
}

impl Key {
    /// A key that is never valid for any slab.
    pub const DANGLING: Key = Key {
        index: u32::MAX,
        generation: u32::MAX,
    };

    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({}v{})", self.index, self.generation)
    }
}

#[derive(Debug)]
enum Slot<T> {
    Vacant { next_free: Option<u32> },
    Occupied { generation: u32, value: T },
}

/// Generational arena with O(1) insert/remove and stable keys.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    generations: Vec<u32>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            generations: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            generations: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn insert(&mut self, value: T) -> Key {
        self.len += 1;
        match self.free_head {
            Some(idx) => {
                let generation = self.generations[idx as usize];
                match std::mem::replace(
                    &mut self.slots[idx as usize],
                    Slot::Occupied { generation, value },
                ) {
                    Slot::Vacant { next_free } => {
                        self.free_head = next_free;
                    }
                    Slot::Occupied { .. } => unreachable!("free list pointed at occupied slot"),
                }
                Key {
                    index: idx,
                    generation,
                }
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot::Occupied {
                    generation: 0,
                    value,
                });
                self.generations.push(0);
                Key {
                    index: idx,
                    generation: 0,
                }
            }
        }
    }

    pub fn get(&self, key: Key) -> Option<&T> {
        match self.slots.get(key.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    pub fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    pub fn remove(&mut self, key: Key) -> Option<T> {
        match self.slots.get_mut(key.index as usize) {
            Some(slot @ Slot::Occupied { .. }) => {
                if let Slot::Occupied { generation, .. } = slot {
                    if *generation != key.generation {
                        return None;
                    }
                }
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(key.index);
                // Bump the generation so stale keys cannot resolve.
                self.generations[key.index as usize] =
                    self.generations[key.index as usize].wrapping_add(1);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (Key, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { generation, value } => Some((
                Key {
                    index: i as u32,
                    generation: *generation,
                },
                value,
            )),
            Slot::Vacant { .. } => None,
        })
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Key, &mut T)> + '_ {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Occupied { generation, value } => Some((
                    Key {
                        index: i as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Vacant { .. } => None,
            })
    }

    pub fn keys(&self) -> Vec<Key> {
        self.iter().map(|(k, _)| k).collect()
    }

    pub fn clear(&mut self) {
        self.slots.clear();
        self.generations.clear();
        self.free_head = None;
        self.len = 0;
    }
}

impl<T> std::ops::Index<Key> for Slab<T> {
    type Output = T;
    fn index(&self, key: Key) -> &T {
        self.get(key).expect("stale or invalid slab key")
    }
}

impl<T> std::ops::IndexMut<Key> for Slab<T> {
    fn index_mut(&mut self, key: Key) -> &mut T {
        self.get_mut(key).expect("stale or invalid slab key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a], "a");
        assert_eq!(slab[b], "b");
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert!(slab.get(a).is_none());
    }

    #[test]
    fn generation_prevents_aliasing() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        slab.remove(a);
        let b = slab.insert(2u32);
        // The slot is reused but with a new generation.
        assert_eq!(b.index(), a.index());
        assert!(slab.get(a).is_none(), "stale key must not resolve");
        assert_eq!(slab[b], 2);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab[b], 2);
    }

    #[test]
    fn free_list_reuse_order() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..8).map(|i| slab.insert(i)).collect();
        for k in &keys {
            slab.remove(*k);
        }
        assert!(slab.is_empty());
        // All slots should be reused rather than growing the backing Vec.
        for i in 0..8 {
            slab.insert(i + 100);
        }
        assert_eq!(slab.slots.len(), 8);
        assert_eq!(slab.len(), 8);
    }

    #[test]
    fn iteration_visits_only_live_entries() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(a);
        slab.remove(c);
        let values: Vec<_> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![2]);
    }

    #[test]
    fn iter_mut_allows_updates() {
        let mut slab = Slab::new();
        let k = slab.insert(10);
        for (_, v) in slab.iter_mut() {
            *v += 1;
        }
        assert_eq!(slab[k], 11);
    }

    #[test]
    fn dangling_key_never_resolves() {
        let mut slab: Slab<u8> = Slab::new();
        slab.insert(1);
        assert!(slab.get(Key::DANGLING).is_none());
    }
}
