//! Deterministic random variates for the simulator.
//!
//! Only `rand`'s uniform primitives are used; the non-uniform
//! distributions the storage/network models need (normal, lognormal,
//! exponential, Pareto) are derived here so runs stay reproducible and
//! no extra dependency is pulled in.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seedable RNG wrapper used everywhere in the simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second variate of the Box-Muller pair.
    spare_normal: Option<f64>,
}

impl SimRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child stream (for per-node RNGs) in a way
    /// that only depends on the parent's seed state.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.gen::<u64>();
        SimRng::seed_from_u64(seed)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box-Muller, with the spare variate cached.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u1 == 0 which would yield ln(0).
        let u1: f64 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal with the given parameters of the *underlying* normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with the given mean (not rate).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u: f64 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto with scale `xm > 0` and shape `alpha > 0` (heavy tail for
    /// small alpha). Used to model bursty background I/O.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0);
        let u: f64 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        xm / u.powf(1.0 / alpha)
    }

    /// Normal truncated to `[lo, hi]` by resampling (clamping as a
    /// fallback after too many rejections).
    pub fn truncated_normal(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if x >= lo && x <= hi {
                return x;
            }
        }
        mean.clamp(lo, hi)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn forked_streams_differ_but_are_deterministic() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.gen_u64(), c2.gen_u64());
        let mut other = parent1.fork();
        assert_ne!(c1.gen_u64(), other.gen_u64());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = SimRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.lognormal(0.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // E[lognormal(0,1)] = exp(0.5) ≈ 1.6487
        assert!((mean - 1.6487).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.exponential(3.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.12, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn truncated_normal_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.truncated_normal(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_within_bounds() {
        let mut rng = SimRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }
}
