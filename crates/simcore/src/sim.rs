//! The event-driven simulator.
//!
//! [`Sim<M>`] owns a user model `M` plus the event heap and clock.
//! Events are boxed `FnOnce(&mut Sim<M>)` closures; ties at the same
//! instant are broken by submission order so execution is fully
//! deterministic. Events can be cancelled by id (used heavily by the
//! fluid-flow drivers, which keep exactly one pending completion event).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event; usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Sentinel for "no event scheduled".
    pub const NONE: EventId = EventId(u64::MAX);
}

type Action<M> = Box<dyn FnOnce(&mut Sim<M>)>;

struct Entry<M> {
    time: SimTime,
    seq: u64,
    id: EventId,
    action: Action<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first,
        // with submission order as the deterministic tie-breaker.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event simulator wrapping a user-supplied model.
pub struct Sim<M> {
    now: SimTime,
    heap: BinaryHeap<Entry<M>>,
    next_seq: u64,
    cancelled: HashSet<EventId>,
    executed: u64,
    rng: SimRng,
    /// The domain model (cluster, network, daemons...). Public so event
    /// closures can reach it; borrows of `model` and the scheduling API
    /// must be sequenced, not overlapped.
    pub model: M,
}

impl<M> Sim<M> {
    pub fn new(model: M, seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
            rng: SimRng::seed_from_u64(seed),
            model,
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of events executed so far (for diagnostics and budget
    /// guards in tests).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    pub fn pending_events(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// Schedule `action` to run at absolute time `at`. Scheduling in
    /// the past is a bug in the model and panics.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Sim<M>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            time: at,
            seq: self.next_seq,
            id,
            action: Box::new(action),
        });
        self.next_seq += 1;
        id
    }

    /// Schedule `action` to run `after` from now.
    pub fn schedule_in(
        &mut self,
        after: SimDuration,
        action: impl FnOnce(&mut Sim<M>) + 'static,
    ) -> EventId {
        let at = self.now + after;
        self.schedule_at(at, action)
    }

    /// Schedule an action to run at the current instant, after all
    /// events already queued for this instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut Sim<M>) + 'static) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancel a pending event. Cancelling an already-fired or unknown
    /// event is a no-op (returns false).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id == EventId::NONE || id.0 >= self.next_seq {
            return false;
        }
        // We cannot remove from the heap cheaply; mark and skip on pop.
        self.cancelled.insert(id)
    }

    /// Execute the next event, if any. Returns false when the queue is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "time went backwards");
            self.now = entry.time;
            self.executed += 1;
            (entry.action)(self);
            return true;
        }
        false
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the clock would pass `deadline`; events at exactly
    /// `deadline` are executed. The clock is left at
    /// `min(deadline, time of last event)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            let next = loop {
                match self.heap.peek() {
                    Some(e) if self.cancelled.contains(&e.id) => {
                        let e = self.heap.pop().unwrap();
                        self.cancelled.remove(&e.id);
                    }
                    Some(e) => break Some(e.time),
                    None => break None,
                }
            };
            match next {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => {
                    if deadline > self.now && deadline != SimTime::MAX {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Run with a safety cap on executed events; panics if exceeded.
    /// Useful in tests to catch runaway models.
    pub fn run_capped(&mut self, max_events: u64) {
        let start = self.executed;
        while self.step() {
            assert!(
                self.executed - start <= max_events,
                "simulation exceeded event budget of {max_events}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Trace {
        log: Rc<RefCell<Vec<(u64, &'static str)>>>,
    }

    fn record(sim: &mut Sim<Trace>, tag: &'static str) {
        let now = sim.now().as_nanos();
        sim.model.log.borrow_mut().push((now, tag));
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Trace::default(), 0);
        sim.schedule_at(SimTime::from_nanos(30), |s| record(s, "c"));
        sim.schedule_at(SimTime::from_nanos(10), |s| record(s, "a"));
        sim.schedule_at(SimTime::from_nanos(20), |s| record(s, "b"));
        sim.run();
        let log = sim.model.log.borrow().clone();
        assert_eq!(log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.now(), SimTime::from_nanos(30));
    }

    #[test]
    fn ties_break_by_submission_order() {
        let mut sim = Sim::new(Trace::default(), 0);
        let t = SimTime::from_nanos(5);
        sim.schedule_at(t, |s| record(s, "first"));
        sim.schedule_at(t, |s| record(s, "second"));
        sim.schedule_at(t, |s| record(s, "third"));
        sim.run();
        let log = sim.model.log.borrow().clone();
        assert_eq!(
            log.iter().map(|(_, tag)| *tag).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(Trace::default(), 0);
        sim.schedule_at(SimTime::from_nanos(10), |s| {
            record(s, "outer");
            s.schedule_in(SimDuration::from_nanos(5), |s| record(s, "inner"));
        });
        sim.run();
        let log = sim.model.log.borrow().clone();
        assert_eq!(log, vec![(10, "outer"), (15, "inner")]);
    }

    #[test]
    fn cancellation_suppresses_execution() {
        let mut sim = Sim::new(Trace::default(), 0);
        let id = sim.schedule_at(SimTime::from_nanos(10), |s| record(s, "cancelled"));
        sim.schedule_at(SimTime::from_nanos(20), |s| record(s, "kept"));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel is a no-op");
        sim.run();
        let log = sim.model.log.borrow().clone();
        assert_eq!(log, vec![(20, "kept")]);
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut sim = Sim::new(Trace::default(), 0);
        assert!(!sim.cancel(EventId::NONE));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(Trace::default(), 0);
        sim.schedule_at(SimTime::from_nanos(10), |s| record(s, "a"));
        sim.schedule_at(SimTime::from_nanos(50), |s| record(s, "late"));
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(sim.now(), SimTime::from_nanos(25));
        assert_eq!(sim.model.log.borrow().len(), 1);
        // The late event is still pending and fires afterwards.
        sim.run();
        assert_eq!(sim.model.log.borrow().len(), 2);
    }

    #[test]
    fn run_until_executes_events_at_deadline() {
        let mut sim = Sim::new(Trace::default(), 0);
        sim.schedule_at(SimTime::from_nanos(25), |s| record(s, "edge"));
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(sim.model.log.borrow().len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(Trace::default(), 0);
        sim.schedule_at(SimTime::from_nanos(10), |s| {
            s.schedule_at(SimTime::from_nanos(5), |_| {});
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn run_capped_catches_runaway() {
        struct Loopy;
        let mut sim = Sim::new(Loopy, 0);
        fn again(s: &mut Sim<Loopy>) {
            s.schedule_in(SimDuration::from_nanos(1), again);
        }
        sim.schedule_now(again);
        sim.run_capped(100);
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        let mk = || {
            let mut sim = Sim::new(Trace::default(), 99);
            let mut out = Vec::new();
            for _ in 0..10 {
                out.push(sim.rng().gen_u64());
            }
            out
        };
        assert_eq!(mk(), mk());
    }
}
