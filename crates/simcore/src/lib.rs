//! # simcore — deterministic discrete-event simulation engine
//!
//! The substrate under the NORNS reproduction: everything that needs a
//! clock, an event queue or a bandwidth model builds on this crate.
//!
//! * [`sim::Sim`] — event loop over a user model, deterministic
//!   ordering, cancellable events, seeded RNG.
//! * [`fluid::FluidNetwork`] — fluid-flow max-min fair bandwidth
//!   sharing across arbitrary resource paths (NICs, fabric, OSTs,
//!   NVM devices); [`fluid_driver`] wires it into the event loop.
//! * [`server::FifoServer`] — bounded-concurrency FIFO queueing
//!   station (metadata servers, worker pools).
//! * [`metrics`] — counters, summaries, histograms, time-weighted
//!   stats and CSV output for the experiment harness.
//! * [`rng::SimRng`] — seeded RNG with the non-uniform variates the
//!   interference models need.
//! * [`slab::Slab`] — generational arena used for all churning ids.

pub mod fluid;
pub mod fluid_driver;
pub mod metrics;
pub mod rng;
pub mod server;
pub mod sim;
pub mod slab;
pub mod time;

pub use fluid::{CompletedFlow, FlowId, FlowSpec, FluidNetwork, ResourceId};
pub use fluid_driver::{cancel_flow, start_flow, with_fluid, FluidModel, FluidSystem};
pub use rng::SimRng;
pub use server::{FifoServer, Served};
pub use sim::{EventId, Sim};
pub use slab::{Key, Slab};
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};

/// Convenience byte-size constants used across the workspace.
pub mod units {
    pub const KIB: u64 = 1024;
    pub const MIB: u64 = 1024 * KIB;
    pub const GIB: u64 = 1024 * MIB;
    pub const TIB: u64 = 1024 * GIB;
    pub const KB: u64 = 1000;
    pub const MB: u64 = 1000 * KB;
    pub const GB: u64 = 1000 * MB;
    pub const TB: u64 = 1000 * GB;

    /// Gibibytes/second as bytes/second.
    pub fn gib_per_s(x: f64) -> f64 {
        x * GIB as f64
    }

    /// Mebibytes/second as bytes/second.
    pub fn mib_per_s(x: f64) -> f64 {
        x * MIB as f64
    }

    /// Gigabits/second as bytes/second (network link ratings).
    pub fn gbit_per_s(x: f64) -> f64 {
        x * 1e9 / 8.0
    }

    /// Format a byte count human-readably.
    pub fn fmt_bytes(b: f64) -> String {
        if b >= TIB as f64 {
            format!("{:.2} TiB", b / TIB as f64)
        } else if b >= GIB as f64 {
            format!("{:.2} GiB", b / GIB as f64)
        } else if b >= MIB as f64 {
            format!("{:.2} MiB", b / MIB as f64)
        } else if b >= KIB as f64 {
            format!("{:.2} KiB", b / KIB as f64)
        } else {
            format!("{b:.0} B")
        }
    }

    /// Format a bandwidth in MiB/s or GiB/s.
    pub fn fmt_rate(bps: f64) -> String {
        if bps >= GIB as f64 {
            format!("{:.2} GiB/s", bps / GIB as f64)
        } else {
            format!("{:.1} MiB/s", bps / MIB as f64)
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::units::*;

    #[test]
    fn conversions() {
        assert_eq!(GIB, 1_073_741_824);
        assert!((gbit_per_s(100.0) - 12.5e9).abs() < 1.0);
        assert!((gib_per_s(1.0) - GIB as f64).abs() < 1e-9);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2.0 * MIB as f64), "2.00 MiB");
        assert_eq!(fmt_rate(1.5 * GIB as f64), "1.50 GiB/s");
        assert_eq!(fmt_rate(100.0 * MIB as f64), "100.0 MiB/s");
    }
}
