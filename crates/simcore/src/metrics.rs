//! Measurement utilities: counters, summaries, histograms and
//! time-weighted statistics, plus a tiny CSV writer used by the
//! experiment binaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::SimTime;

/// Incrementing counter.
#[derive(Debug, Default, Clone)]
pub struct Counter(u64);

impl Counter {
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Streaming summary of scalar samples: count/mean/min/max/variance
/// (Welford) plus exact quantiles from retained samples.
#[derive(Debug, Default, Clone)]
pub struct Summary {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl Summary {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        let n = self.samples.len() as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            f64::NAN
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            self.m2 / (self.samples.len() - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Exact quantile via nearest-rank on a sorted copy; `q` in [0,1].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Log-2-bucketed histogram for latency-style values.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    pub fn record(&mut self, value: f64) {
        assert!(value >= 0.0);
        let bucket = if value < 1.0 {
            0
        } else {
            value.log2().floor() as u32 + 1
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
        self.count += 1;
        self.sum += value;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (bucket, n) in &self.buckets {
            seen += n;
            if seen >= target.max(1) {
                return if *bucket == 0 {
                    1.0
                } else {
                    2f64.powi(*bucket as i32)
                };
            }
        }
        f64::INFINITY
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue
/// depth, nodes busy).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = (now - self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
    }

    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.set(now, v);
    }

    pub fn current(&self) -> f64 {
        self.last_value
    }

    pub fn average(&self, now: SimTime) -> f64 {
        let dt_tail = (now - self.last_time).as_secs_f64();
        let total = (now - self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * dt_tail) / total
    }
}

/// Minimal CSV table builder used by the experiment binaries.
#[derive(Debug, Default, Clone)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        CsvTable {
            header: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138).abs() < 1e-3);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.median() - 4.0).abs() < 1.01);
    }

    #[test]
    fn summary_quantiles_monotone() {
        let mut s = Summary::new();
        for i in 0..100 {
            s.record(i as f64);
        }
        assert!(s.quantile(0.1) <= s.quantile(0.5));
        assert!(s.quantile(0.5) <= s.quantile(0.9));
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 99.0);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.median().is_nan());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 26.25).abs() < 1e-9);
        assert!(h.quantile_bound(0.99) >= 100.0);
        assert!(h.quantile_bound(0.25) <= 2.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 4.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 0.0); // 4 for 10s
        let avg = tw.average(SimTime::from_secs(20));
        assert!((avg - 2.0).abs() < 1e-12);
        // add() applies deltas
        tw.add(SimTime::from_secs(30), 6.0);
        assert_eq!(tw.current(), 6.0);
    }

    #[test]
    fn csv_escaping_and_shape() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["1", "plain"]);
        t.row(["2", "with,comma"]);
        t.row(["3", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn csv_arity_checked() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
