//! Simulation time.
//!
//! All simulated time is kept as an integer number of nanoseconds so
//! that event ordering is exact and runs are reproducible. Floating
//! point only appears at the edges (rates in bytes/second, conversions
//! for reporting).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since
/// the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// sentinel for events that never fire.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time: {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale a duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < NANOS_PER_SEC {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert!((SimTime::from_secs_f64(1.25).as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(SimTime::from_secs(14) - t, d);
        assert_eq!(t.since(SimTime::from_secs(4)), SimDuration::from_secs(6));
        // saturating behaviour
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(SimTime::MAX > b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
