//! # cluster — simulated HPC testbeds
//!
//! Builders for the three machines the paper measures, wiring a
//! [`norns::NornsWorld`] with the right fabric, storage tiers and
//! interference models:
//!
//! * [`nextgenio`] — the 34-node NEXTGenIO prototype (2× Xeon 8260M,
//!   48 cores, 192 GiB RAM, 3 TB DCPMM per node, Omni-Path, Lustre
//!   with 6 OSTs behind 56 Gbps IB). The evaluation platform.
//! * [`archer`] — ARCHER-like Cray XC30 slice (Lustre, 12 OSS × 4
//!   OST, moderate production interference). Motivation Fig. 1a.
//! * [`marenostrum4`] — MareNostrum-IV-like slice (GPFS with
//!   heavy-tailed production interference, node-local NVMe).
//!   Motivation Fig. 1b.
//! * [`bandwidth_bench`] — the fat-NIC variant used by the Fig. 6/7
//!   transfer-rate benchmarks (the target link is oversized there so
//!   the measured path, not the sink, is the bottleneck).
//! * [`nextgenio_with_bb`] — extension testbed with a shared
//!   DataWarp-like burst buffer (BB plugins are listed as future work
//!   in the paper; we implement them and benchmark the comparison).

use norns::{HasNorns, NornsWorld, WorldConfig};
use simcore::{Sim, SimDuration, SimRng, SimTime};
use simnet::FabricParams;
use simstore::{BurstBufferParams, Interference, LocalParams, PfsParams, TierKind};

/// Static description of a testbed, used by workload models for
/// core-count- and memory-dependent behaviour.
#[derive(Debug, Clone)]
pub struct TestbedSpec {
    pub name: &'static str,
    pub nodes: usize,
    pub cores_per_node: usize,
    pub mem_per_node: u64,
    /// Name of the PFS tier.
    pub pfs: &'static str,
    /// Name of the node-local tier, if the machine has one.
    pub node_local: Option<&'static str>,
}

/// A built testbed: the NORNS world plus its description.
pub struct Testbed {
    pub world: NornsWorld,
    pub spec: TestbedSpec,
}

fn nextgenio_inner(nodes: usize, interference: Interference) -> Testbed {
    assert!(
        (1..=34).contains(&nodes),
        "the prototype has 34 compute nodes"
    );
    let mut world = NornsWorld::new(
        nodes,
        FabricParams::omni_path_tcp(nodes),
        WorldConfig::default(),
    );
    // "a Lustre server (6 OSTs) is reached using a 56 Gbps InfiniBand
    // link" (§V-A). The per-node client stack is calibrated from the
    // paper's own Table III: the producer moves 100 GB in ≈51 s of
    // I/O time → ≈1.9 GiB/s per node.
    let mut pfs = PfsParams::nextgenio_lustre();
    pfs.client_bps = simcore::units::gib_per_s(1.9);
    pfs.interference = interference;
    world.storage.add_pfs(
        &mut world.fluid.net,
        "lustre",
        nodes,
        pfs,
        200 * simcore::units::TB,
    );
    world.storage.add_local_class(
        &mut world.fluid.net,
        "pmdk0",
        nodes,
        LocalParams::dcpmm(),
        TierKind::NodeLocalNvm,
    );
    Testbed {
        world,
        spec: TestbedSpec {
            name: "nextgenio",
            nodes,
            cores_per_node: 48,
            mem_per_node: 192 * simcore::units::GIB,
            pfs: "lustre",
            node_local: Some("pmdk0"),
        },
    }
}

/// The NEXTGenIO prototype (evaluation platform, §V-A). Benchmarks in
/// the paper ran "during a maintenance period where fewer jobs
/// competed for I/O resources": interference is mild but nonzero.
pub fn nextgenio(nodes: usize) -> Testbed {
    nextgenio_inner(
        nodes,
        Interference::Lognormal {
            sigma: 0.35,
            mean_load: 0.12,
        },
    )
}

/// NEXTGenIO with interference disabled — for deterministic tests and
/// the workflow experiments where the paper reports <5% variation.
pub fn nextgenio_quiet(nodes: usize) -> Testbed {
    nextgenio_inner(nodes, Interference::Off)
}

/// ARCHER-like Cray XC30 slice: Lustre with 12 OSSs × 4 OSTs (480
/// disks), ~20 GB/s theoretical write, run co-located with production
/// traffic (Fig. 1a: "a four fold difference in achieved bandwidth
/// between the fastest and slowest results").
pub fn archer(nodes: usize) -> Testbed {
    let mut world = NornsWorld::new(
        nodes,
        FabricParams::omni_path_tcp(nodes),
        WorldConfig::default(),
    );
    let pfs = PfsParams {
        osts: 48,
        ost_read_bps: simcore::units::gib_per_s(0.52),
        ost_write_bps: simcore::units::gib_per_s(0.42),
        ingress_bps: simcore::units::gib_per_s(24.0),
        client_bps: simcore::units::gib_per_s(3.0),
        default_stripe: 4,
        mds_op_time: SimDuration::from_micros(500),
        interference: Interference::Lognormal {
            sigma: 0.55,
            mean_load: 0.35,
        },
    };
    world.storage.add_pfs(
        &mut world.fluid.net,
        "lustre",
        nodes,
        pfs,
        4_000 * simcore::units::TB,
    );
    Testbed {
        world,
        spec: TestbedSpec {
            name: "archer",
            nodes,
            cores_per_node: 24,
            mem_per_node: 64 * simcore::units::GIB,
            pfs: "lustre",
            node_local: None,
        },
    }
}

/// MareNostrum-IV-like slice: GPFS under full production load with
/// heavy-tailed interference ("bandwidths often diverging by orders of
/// magnitude", Fig. 1b) plus node-local NVMe SSDs.
pub fn marenostrum4(nodes: usize) -> Testbed {
    let mut world = NornsWorld::new(
        nodes,
        FabricParams::omni_path_tcp(nodes),
        WorldConfig::default(),
    );
    let pfs = PfsParams {
        osts: 16,
        ost_read_bps: simcore::units::gib_per_s(2.0),
        ost_write_bps: simcore::units::gib_per_s(1.6),
        ingress_bps: simcore::units::gib_per_s(28.0),
        client_bps: simcore::units::gib_per_s(2.2),
        default_stripe: 8,
        mds_op_time: SimDuration::from_micros(350),
        interference: Interference::HeavyTail {
            alpha: 1.05,
            mean_load: 0.5,
        },
    };
    world.storage.add_pfs(
        &mut world.fluid.net,
        "gpfs",
        nodes,
        pfs,
        14_000 * simcore::units::TB,
    );
    world.storage.add_local_class(
        &mut world.fluid.net,
        "nvme0",
        nodes,
        LocalParams::nvme_ssd(),
        TierKind::NodeLocalSsd,
    );
    Testbed {
        world,
        spec: TestbedSpec {
            name: "marenostrum4",
            nodes,
            cores_per_node: 48,
            mem_per_node: 96 * simcore::units::GIB,
            pfs: "gpfs",
            node_local: Some("nvme0"),
        },
    }
}

/// The configuration used by the Fig. 5/6/7 NORNS microbenchmarks:
/// `ofi+tcp`, one target node (node 0), `clients` client nodes, fat
/// multi-rail target link so the per-session protocol cap is the
/// binding constraint.
pub fn bandwidth_bench(clients: usize) -> Testbed {
    let nodes = clients + 1;
    // The benchmark target serves dozens of GiB/s from RAM-backed
    // buffers; give nodes their full dual-socket memory bandwidth so
    // the protocol session cap is the binding constraint (the default
    // WorldConfig uses a conservative per-application share that backs
    // the Table IV co-location experiment instead).
    let config = WorldConfig {
        ram_bps: simcore::units::gib_per_s(64.0),
        ..WorldConfig::default()
    };
    let mut world = NornsWorld::new(nodes, FabricParams::benchmark_fat_nic(nodes), config);
    // The benchmark moves RAM-backed buffers — model a tier at full
    // memory speed on every node so it is never the bottleneck.
    let ram_tier = LocalParams {
        read_bps: simcore::units::gib_per_s(64.0),
        write_bps: simcore::units::gib_per_s(64.0),
        file_setup: simcore::SimDuration::from_micros(2),
        capacity: simcore::units::TB,
    };
    world.storage.add_local_class(
        &mut world.fluid.net,
        "pmdk0",
        nodes,
        ram_tier,
        TierKind::Tmpfs,
    );
    Testbed {
        world,
        spec: TestbedSpec {
            name: "bandwidth-bench",
            nodes,
            cores_per_node: 48,
            mem_per_node: 192 * simcore::units::GIB,
            pfs: "pmdk0",
            node_local: Some("pmdk0"),
        },
    }
}

/// Extension testbed: NEXTGenIO plus a shared DataWarp-like burst
/// buffer (`bb0`).
pub fn nextgenio_with_bb(nodes: usize) -> Testbed {
    let mut tb = nextgenio(nodes);
    tb.world.storage.add_burst_buffer(
        &mut tb.world.fluid.net,
        "bb0",
        BurstBufferParams::datawarp_like(),
    );
    tb
}

/// Drive the PFS interference process: resample background load every
/// `period` until `horizon`. Start once per simulation that wants a
/// *live* production machine (Fig. 1 and Fig. 8 sweeps).
pub fn drive_interference<M: HasNorns>(sim: &mut Sim<M>, period: SimDuration, horizon: SimTime) {
    fn tick<M: HasNorns>(sim: &mut Sim<M>, period: SimDuration, horizon: SimTime) {
        let mut rng = sim.rng().fork();
        resample_now(sim, &mut rng);
        let next = sim.now() + period;
        if next <= horizon {
            sim.schedule_at(next, move |sim| tick(sim, period, horizon));
        }
    }
    tick(sim, period, horizon);
}

/// Resample interference once, rebalancing all active flows.
fn resample_now<M: HasNorns>(sim: &mut Sim<M>, rng: &mut SimRng) {
    let now = sim.now();
    {
        let world = sim.model.norns_mut();
        world.fluid.net.advance(now);
        let NornsWorld { fluid, storage, .. } = world;
        storage.resample_interference(&mut fluid.net, rng);
    }
    // Recompute rates and re-arm the completion event.
    simcore::with_fluid(sim, |_| {});
}

#[cfg(test)]
mod tests {
    use super::*;
    use norns::TaskCompletion;
    use simcore::{CompletedFlow, FluidModel, FluidSystem};

    struct M {
        world: NornsWorld,
        app_done: Vec<u64>,
    }

    impl FluidModel for M {
        fn fluid_mut(&mut self) -> &mut FluidSystem {
            &mut self.world.fluid
        }
        fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
            norns::handle_flow_complete(sim, done);
        }
    }

    impl HasNorns for M {
        fn norns_mut(&mut self) -> &mut NornsWorld {
            &mut self.world
        }
        fn on_task_complete(_sim: &mut Sim<Self>, _c: TaskCompletion) {}
        fn on_app_io_complete(sim: &mut Sim<Self>, token: u64) {
            sim.model.app_done.push(token);
        }
    }

    #[test]
    fn presets_have_expected_tiers() {
        let tb = nextgenio(8);
        assert_eq!(tb.world.nodes(), 8);
        assert!(tb.world.storage.resolve("lustre").is_some());
        assert!(tb.world.storage.resolve("pmdk0").is_some());
        assert_eq!(tb.spec.cores_per_node, 48);

        let tb = archer(4);
        assert!(tb.world.storage.resolve("lustre").is_some());
        assert!(tb.spec.node_local.is_none());

        let tb = marenostrum4(4);
        assert!(tb.world.storage.resolve("gpfs").is_some());
        assert!(tb.world.storage.resolve("nvme0").is_some());

        let tb = nextgenio_with_bb(2);
        assert!(tb.world.storage.resolve("bb0").is_some());

        let tb = bandwidth_bench(32);
        assert_eq!(tb.world.nodes(), 33);
    }

    #[test]
    #[should_panic(expected = "34 compute nodes")]
    fn nextgenio_node_count_checked() {
        nextgenio(35);
    }

    #[test]
    fn interference_changes_observed_app_io_times() {
        // Run the same 4 GiB PFS read on a noisy ARCHER with different
        // seeds and check the runtimes vary.
        let mut times = Vec::new();
        for seed in 0..6 {
            let tb = archer(1);
            let mut sim = Sim::new(
                M {
                    world: tb.world,
                    app_done: Vec::new(),
                },
                seed,
            );
            drive_interference(
                &mut sim,
                SimDuration::from_millis(500),
                SimTime::from_secs(300),
            );
            norns::sim::ops::app_io(
                &mut sim,
                0,
                "lustre",
                simstore::IoDir::Read,
                4 * simcore::units::GIB,
                1,
                Some(48),
            )
            .unwrap();
            sim.run_until(SimTime::from_secs(310));
            assert_eq!(sim.model.app_done.len(), 1, "io must finish");
            // app_done records only the token; measure via drain: the
            // last flow completion sets sim clock before horizon.
            times.push(sim.events_executed() as f64);
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(max >= min, "sanity");
    }

    #[test]
    fn interference_spreads_io_latency_across_seeds() {
        let mut durations = Vec::new();
        for seed in 0..8 {
            let tb = archer(1);
            let mut sim = Sim::new(
                M {
                    world: tb.world,
                    app_done: Vec::new(),
                },
                seed,
            );
            drive_interference(
                &mut sim,
                SimDuration::from_secs(120),
                SimTime::from_secs(600),
            );
            // Stripe 1 so the (interference-modulated) OST lane binds
            // rather than the constant client lane.
            norns::sim::ops::app_io(
                &mut sim,
                0,
                "lustre",
                simstore::IoDir::Read,
                8 * simcore::units::GIB,
                1,
                Some(1),
            )
            .unwrap();
            // Run until the I/O completes; capture the completion time
            // by polling app_done between steps.
            while sim.model.app_done.is_empty() && sim.step() {}
            durations.push(sim.now().as_secs_f64());
        }
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durations.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max / min > 1.1,
            "interference should spread runtimes: {durations:?}"
        );
    }

    #[test]
    fn quiet_testbed_is_deterministic() {
        let run = |seed| {
            let tb = nextgenio_quiet(2);
            let mut sim = Sim::new(
                M {
                    world: tb.world,
                    app_done: Vec::new(),
                },
                seed,
            );
            norns::sim::ops::app_io(
                &mut sim,
                0,
                "lustre",
                simstore::IoDir::Write,
                simcore::units::GIB,
                1,
                None,
            )
            .unwrap();
            sim.run();
            sim.now()
        };
        assert_eq!(run(1), run(2), "no interference → identical timing");
    }
}
