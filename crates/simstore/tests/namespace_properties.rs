//! Property-based tests of the namespace: under arbitrary operation
//! sequences, byte accounting stays consistent and capacity is never
//! exceeded — the invariants quota enforcement and tracked-dataspace
//! checks depend on.

use proptest::prelude::*;
use simstore::{Cred, Mode, Namespace, NsError};

#[derive(Debug, Clone)]
enum Op {
    Create { slot: u8, size: u32 },
    Overwrite { slot: u8, size: u32 },
    Remove { slot: u8 },
    Mkdir { slot: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u32..5_000_000).prop_map(|(slot, size)| Op::Create { slot, size }),
        (any::<u8>(), 0u32..5_000_000).prop_map(|(slot, size)| Op::Overwrite { slot, size }),
        any::<u8>().prop_map(|slot| Op::Remove { slot }),
        any::<u8>().prop_map(|slot| Op::Mkdir { slot }),
    ]
}

fn path_for(slot: u8) -> String {
    // A small tree: 16 dirs × 16 files.
    format!("d{}/f{}", slot / 16, slot % 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accounting_stays_consistent(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let capacity = 64_000_000u64;
        let mut ns = Namespace::new(capacity);
        let cred = Cred::new(1000, 1000);
        // Shadow model: slot → size.
        let mut model: std::collections::HashMap<u8, u64> = std::collections::HashMap::new();

        for op in ops {
            match op {
                Op::Create { slot, size } => {
                    let res = ns.create_file(&path_for(slot), size as u64, &cred, Mode(0o644));
                    match res {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(&slot), "create over existing");
                            model.insert(slot, size as u64);
                        }
                        Err(NsError::AlreadyExists(_)) => {
                            prop_assert!(model.contains_key(&slot));
                        }
                        Err(NsError::NoSpace { .. }) => {
                            let used: u64 = model.values().sum();
                            prop_assert!(used + size as u64 > capacity);
                        }
                        Err(e) => prop_assert!(false, "unexpected error: {e}"),
                    }
                }
                Op::Overwrite { slot, size } => {
                    let res = ns.write_file(&path_for(slot), size as u64, &cred, Mode(0o644));
                    match res {
                        Ok(_) => {
                            model.insert(slot, size as u64);
                        }
                        Err(NsError::NoSpace { .. }) => {
                            let used: u64 = model.values().sum();
                            let old = model.get(&slot).copied().unwrap_or(0);
                            prop_assert!(used - old + size as u64 > capacity);
                        }
                        Err(e) => prop_assert!(false, "unexpected error: {e}"),
                    }
                }
                Op::Remove { slot } => {
                    let res = ns.remove(&path_for(slot), &cred, false);
                    match res {
                        Ok(freed) => {
                            let expected = model.remove(&slot);
                            prop_assert_eq!(expected, Some(freed), "freed bytes mismatch");
                        }
                        Err(NsError::NotFound(_)) => {
                            prop_assert!(!model.contains_key(&slot));
                        }
                        Err(e) => prop_assert!(false, "unexpected error: {e}"),
                    }
                }
                Op::Mkdir { slot } => {
                    // Directories are free; they may collide with file
                    // components, which must error, not corrupt.
                    let _ = ns.mkdir_p(&format!("d{}", slot / 16), &cred, Mode(0o755));
                }
            }
            // Core invariants after every step.
            let used: u64 = model.values().sum();
            prop_assert_eq!(ns.used(), used, "used() diverged from model");
            prop_assert!(ns.used() <= ns.capacity());
            prop_assert_eq!(ns.available(), capacity - used);
        }

        // Tree bytes agree with the sum of files.
        let total = ns.tree_bytes("", &cred).unwrap_or(0);
        let used: u64 = model.values().sum();
        prop_assert_eq!(total, used);
        // walk_files sees exactly the model's live files.
        let files = ns.walk_files("", &cred).unwrap();
        prop_assert_eq!(files.len(), model.len());
    }

    #[test]
    fn permissions_never_leak_across_users(
        mode_bits in 0u16..0o1000,
        owner_uid in 1u32..5,
        other_uid in 5u32..10,
    ) {
        let mut ns = Namespace::new(1 << 30);
        let owner = Cred::new(owner_uid, owner_uid);
        let other = Cred::new(other_uid, other_uid);
        ns.create_file("f", 10, &owner, Mode(mode_bits)).unwrap();
        let other_can_read = ns.check_access("f", &other, simstore::Access::Read).is_ok();
        let world_read = mode_bits & 0o4 != 0;
        prop_assert_eq!(other_can_read, world_read,
            "mode {:o}: other-read must equal the world-read bit", mode_bits);
        // Root always passes.
        prop_assert!(ns.check_access("f", &Cred::root(), simstore::Access::Write).is_ok());
    }
}
