//! Lustre/GPFS-like parallel file system model.
//!
//! The PFS is the shared, contended resource whose behaviour motivates
//! the whole paper (Section II / Fig. 1): bandwidth is served by a set
//! of OSTs behind a server-side ingress link, files are striped over
//! OSTs, metadata goes through a single MDS, and *cross-application
//! interference* — background load from the rest of the machine —
//! makes observed bandwidth vary wildly between runs.
//!
//! Resources created per OST: a read lane, a write lane and a disk
//! coupling resource (so mixed read/write traffic contends), plus one
//! shared ingress resource and one PFS-client lane per compute node
//! (the client-side stack limits a single node well below the server
//! aggregate).

use simcore::{FluidNetwork, ResourceId, SimDuration, SimRng};

/// Direction of an I/O with respect to the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoDir {
    /// Data flows tier → node.
    Read,
    /// Data flows node → tier.
    Write,
}

/// How strongly background load from the rest of the machine perturbs
/// the PFS. Calibrated per testbed in the `cluster` crate.
#[derive(Debug, Clone, Copy)]
pub enum Interference {
    /// No background load (dedicated benchmark slice).
    Off,
    /// Moderate, lognormally distributed background occupancy —
    /// ARCHER-like: ~4× spread between best and worst runs.
    Lognormal { sigma: f64, mean_load: f64 },
    /// Heavy-tailed occupancy — MareNostrum-IV-like: observed
    /// bandwidths "often diverging by orders of magnitude".
    HeavyTail { alpha: f64, mean_load: f64 },
}

impl Interference {
    /// Sample the fraction of a resource consumed by background load,
    /// in [0, 0.995].
    pub fn sample_load(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Interference::Off => 0.0,
            Interference::Lognormal { sigma, mean_load } => {
                // Lognormal with median ≈ mean_load. Moderate regime:
                // background jobs never monopolize the server (ARCHER
                // shows ≈4× spread, i.e. ≥25% residual capacity).
                let x = mean_load * rng.lognormal(0.0, sigma);
                x.clamp(0.0, self.load_cap())
            }
            Interference::HeavyTail { alpha, mean_load } => {
                // Pareto-distributed bursts, scaled so the *median*
                // load is ≈ mean_load; occasionally pins near 1.
                let x = mean_load * rng.pareto(0.5, alpha);
                x.clamp(0.0, self.load_cap())
            }
        }
    }

    /// Ceiling on background occupancy, also applied after per-OST
    /// jitter so composites cannot exceed the regime's bound.
    pub fn load_cap(&self) -> f64 {
        match self {
            Interference::Off => 0.0,
            Interference::Lognormal { .. } => 0.78,
            Interference::HeavyTail { .. } => 0.995,
        }
    }
}

/// Static description of a PFS deployment.
#[derive(Debug, Clone)]
pub struct PfsParams {
    pub osts: usize,
    /// Per-OST bandwidths, bytes/s.
    pub ost_read_bps: f64,
    pub ost_write_bps: f64,
    /// Server-side ingress (e.g. the 56 Gbps IB link on NEXTGenIO).
    pub ingress_bps: f64,
    /// Per-compute-node client-stack limit.
    pub client_bps: f64,
    /// Default stripe count for files that don't specify one.
    pub default_stripe: usize,
    /// Mean metadata operation service time.
    pub mds_op_time: SimDuration,
    pub interference: Interference,
}

impl PfsParams {
    /// The NEXTGenIO Lustre: 6 OSTs behind 56 Gbps InfiniBand.
    pub fn nextgenio_lustre() -> Self {
        PfsParams {
            osts: 6,
            ost_read_bps: simcore::units::gib_per_s(1.1),
            ost_write_bps: simcore::units::gib_per_s(0.9),
            ingress_bps: simcore::units::gbit_per_s(56.0),
            client_bps: simcore::units::gib_per_s(2.4),
            default_stripe: 4,
            mds_op_time: SimDuration::from_micros(300),
            interference: Interference::Lognormal {
                sigma: 0.45,
                mean_load: 0.25,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OstResources {
    read: ResourceId,
    write: ResourceId,
    disk: ResourceId,
}

/// A built PFS instance with its fluid resources.
#[derive(Debug)]
pub struct PfsModel {
    pub params: PfsParams,
    osts: Vec<OstResources>,
    ingress: ResourceId,
    clients: Vec<ResourceId>,
    next_ost: usize,
    base_read: f64,
    base_write: f64,
    base_ingress: f64,
}

impl PfsModel {
    pub fn build(net: &mut FluidNetwork, name: &str, nodes: usize, params: PfsParams) -> Self {
        let ingress = net.add_resource(params.ingress_bps, format!("{name}.ingress"));
        let osts = (0..params.osts)
            .map(|i| {
                let disk_cap = params.ost_read_bps.max(params.ost_write_bps);
                OstResources {
                    read: net.add_resource(params.ost_read_bps, format!("{name}.ost{i}.r")),
                    write: net.add_resource(params.ost_write_bps, format!("{name}.ost{i}.w")),
                    disk: net.add_resource(disk_cap, format!("{name}.ost{i}.disk")),
                }
            })
            .collect();
        let clients = (0..nodes)
            .map(|n| net.add_resource(params.client_bps, format!("{name}.client{n}")))
            .collect();
        PfsModel {
            base_read: params.ost_read_bps,
            base_write: params.ost_write_bps,
            base_ingress: params.ingress_bps,
            params,
            osts,
            ingress,
            clients,
            next_ost: 0,
        }
    }

    pub fn ost_count(&self) -> usize {
        self.osts.len()
    }

    /// Split `bytes` across `stripe` OSTs starting from the rotating
    /// allocation cursor, as Lustre's round-robin allocator does.
    /// Returns `(ost_index, bytes)` shards.
    pub fn plan_shards(&mut self, bytes: u64, stripe: Option<usize>) -> Vec<(usize, u64)> {
        let stripe = stripe
            .unwrap_or(self.params.default_stripe)
            .clamp(1, self.osts.len());
        let start = self.next_ost;
        self.next_ost = (self.next_ost + stripe) % self.osts.len();
        let per = bytes / stripe as u64;
        let mut rem = bytes % stripe as u64;
        (0..stripe)
            .map(|i| {
                let extra = if rem > 0 {
                    rem -= 1;
                    1
                } else {
                    0
                };
                ((start + i) % self.osts.len(), per + extra)
            })
            .filter(|(_, b)| *b > 0)
            .collect()
    }

    /// Split `bytes` across a *fixed* OST set — shared-file semantics:
    /// every client of one striped file hits the same OSTs, no matter
    /// how many clients there are.
    pub fn plan_shards_at(&self, bytes: u64, osts: &[usize]) -> Vec<(usize, u64)> {
        assert!(!osts.is_empty());
        let per = bytes / osts.len() as u64;
        let mut rem = bytes % osts.len() as u64;
        osts.iter()
            .map(|&o| {
                let extra = if rem > 0 {
                    rem -= 1;
                    1
                } else {
                    0
                };
                (o % self.osts.len(), per + extra)
            })
            .filter(|(_, b)| *b > 0)
            .collect()
    }

    /// Allocate an OST set for a new striped file (advances the
    /// round-robin cursor once).
    pub fn allocate_osts(&mut self, stripe: Option<usize>) -> Vec<usize> {
        let stripe = stripe
            .unwrap_or(self.params.default_stripe)
            .clamp(1, self.osts.len());
        let start = self.next_ost;
        self.next_ost = (self.next_ost + stripe) % self.osts.len();
        (0..stripe).map(|i| (start + i) % self.osts.len()).collect()
    }

    /// The resource path for one shard of an I/O issued from `node`
    /// against OST `ost`.
    pub fn shard_path(&self, node: usize, ost: usize, dir: IoDir) -> Vec<ResourceId> {
        let o = &self.osts[ost];
        let lane = match dir {
            IoDir::Read => o.read,
            IoDir::Write => o.write,
        };
        vec![self.clients[node], self.ingress, lane, o.disk]
    }

    /// Deterministic metadata cost for `ops` operations (create, open,
    /// stat). A single MDS serializes heavy bursts, so cost is linear.
    pub fn mds_cost(&self, ops: u64) -> SimDuration {
        SimDuration::from_nanos(self.params.mds_op_time.as_nanos() * ops)
    }

    /// Resample background interference, modulating OST lanes and the
    /// ingress. Caller must invoke inside `with_fluid` so rates
    /// rebalance.
    ///
    /// The background load has a *common mode*: production
    /// interference comes from whole applications hammering the file
    /// system, so one machine-wide draw dominates, with small per-OST
    /// jitter on top. (Independent per-OST draws would average out
    /// across stripes and erase the run-to-run spread of Fig. 1.)
    pub fn resample_interference(&mut self, net: &mut FluidNetwork, rng: &mut SimRng) {
        match self.params.interference {
            Interference::Off => {}
            model => {
                let cap = model.load_cap();
                let global = model.sample_load(rng);
                for o in &self.osts {
                    let jitter = rng.lognormal(0.0, 0.15);
                    let load = (global * jitter).clamp(0.0, cap);
                    net.set_capacity(o.read, self.base_read * (1.0 - load));
                    net.set_capacity(o.write, self.base_write * (1.0 - load));
                    let disk_cap = (self.base_read.max(self.base_write)) * (1.0 - load);
                    net.set_capacity(o.disk, disk_cap);
                }
                let load = (global * rng.lognormal(0.0, 0.1)).clamp(0.0, cap);
                net.set_capacity(self.ingress, self.base_ingress * (1.0 - load));
            }
        }
    }

    /// Aggregate server-side read capacity at base (no interference).
    pub fn aggregate_read_bps(&self) -> f64 {
        (self.base_read * self.osts.len() as f64).min(self.base_ingress)
    }

    pub fn aggregate_write_bps(&self) -> f64 {
        (self.base_write * self.osts.len() as f64).min(self.base_ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FlowSpec, SimTime};

    fn build(nodes: usize) -> (FluidNetwork, PfsModel) {
        let mut net = FluidNetwork::new();
        let pfs = PfsModel::build(&mut net, "lustre", nodes, PfsParams::nextgenio_lustre());
        (net, pfs)
    }

    #[test]
    fn shard_planning_round_robins_and_balances() {
        let (_, mut pfs) = build(1);
        let shards = pfs.plan_shards(100, Some(4));
        assert_eq!(shards.len(), 4);
        let total: u64 = shards.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 100);
        let osts1: Vec<usize> = shards.iter().map(|(o, _)| *o).collect();
        assert_eq!(osts1, vec![0, 1, 2, 3]);
        // Next allocation starts where the previous ended.
        let shards2 = pfs.plan_shards(100, Some(4));
        let osts2: Vec<usize> = shards2.iter().map(|(o, _)| *o).collect();
        assert_eq!(osts2, vec![4, 5, 0, 1]);
    }

    #[test]
    fn stripe_wider_than_osts_is_clamped() {
        let (_, mut pfs) = build(1);
        let shards = pfs.plan_shards(600, Some(100));
        assert_eq!(shards.len(), 6);
    }

    #[test]
    fn zero_byte_shards_are_dropped() {
        let (_, mut pfs) = build(1);
        let shards = pfs.plan_shards(2, Some(4));
        assert_eq!(shards.len(), 2);
    }

    #[test]
    fn single_node_is_client_limited() {
        let (mut net, mut pfs) = build(4);
        // One node reading with full stripe: aggregate OST read would
        // allow ~6.6 GiB/s but the client lane caps at 2.4 GiB/s.
        for (ost, bytes) in pfs.plan_shards(6 * (1 << 30), Some(6)) {
            let path = pfs.shard_path(0, ost, IoDir::Read);
            net.start_flow(SimTime::ZERO, FlowSpec::new(bytes as f64, path));
        }
        net.recompute();
        let secs = net.next_completion().unwrap().as_secs_f64();
        let rate = 6.0 * (1u64 << 30) as f64 / secs;
        let client = simcore::units::gib_per_s(2.4);
        assert!((rate - client).abs() / client < 0.01, "rate {rate}");
    }

    #[test]
    fn many_nodes_saturate_the_server_side() {
        let (mut net, mut pfs) = build(32);
        for node in 0..32 {
            for (ost, bytes) in pfs.plan_shards(1 << 30, Some(6)) {
                let path = pfs.shard_path(node, ost, IoDir::Write);
                net.start_flow(SimTime::ZERO, FlowSpec::new(bytes as f64, path));
            }
        }
        net.recompute();
        // Aggregate write cannot exceed min(6 × 0.9 GiB/s, ingress).
        let expected = pfs.aggregate_write_bps();
        // Steady-state aggregate: all flows symmetric; use first
        // completion to estimate aggregate rate.
        let secs = net.next_completion().unwrap().as_secs_f64();
        let slowest_total = 32.0 * (1u64 << 30) as f64;
        let rate = slowest_total / secs; // all equal shares
        assert!(rate <= expected * 1.01, "rate {rate} vs cap {expected}");
        assert!(
            rate >= expected * 0.60,
            "server should be near-saturated: {rate}"
        );
    }

    #[test]
    fn reads_faster_than_writes() {
        let (_, pfs) = build(1);
        assert!(pfs.aggregate_read_bps() > pfs.aggregate_write_bps());
    }

    #[test]
    fn interference_reduces_capacity_and_varies() {
        let (mut net, mut pfs) = build(1);
        let mut rng = SimRng::seed_from_u64(11);
        let base = pfs.aggregate_read_bps();
        let mut seen = Vec::new();
        for _ in 0..50 {
            pfs.resample_interference(&mut net, &mut rng);
            // Measure effective capacity of ost0 read lane.
            let shards = pfs.plan_shards(1 << 20, Some(1));
            let path = pfs.shard_path(0, shards[0].0, IoDir::Read);
            let cap = net.resource_capacity(path[2]);
            seen.push(cap);
        }
        let min = seen.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = seen.iter().cloned().fold(0.0f64, f64::max);
        assert!(max <= pfs.params.ost_read_bps + 1.0);
        assert!(min < max, "interference must vary");
        assert!(max / min > 1.3, "spread too small: {}", max / min);
        let _ = base;
    }

    #[test]
    fn heavy_tail_interference_produces_order_of_magnitude_spread() {
        let mut net = FluidNetwork::new();
        let mut params = PfsParams::nextgenio_lustre();
        params.interference = Interference::HeavyTail {
            alpha: 1.1,
            mean_load: 0.55,
        };
        let mut pfs = PfsModel::build(&mut net, "gpfs", 1, params);
        let mut rng = SimRng::seed_from_u64(12);
        let mut caps = Vec::new();
        for _ in 0..200 {
            pfs.resample_interference(&mut net, &mut rng);
            let path = pfs.shard_path(0, 0, IoDir::Read);
            caps.push(net.resource_capacity(path[2]));
        }
        let min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = caps.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 10.0, "heavy tail spread {}", max / min);
    }

    #[test]
    fn mds_cost_is_linear() {
        let (_, pfs) = build(1);
        let one = pfs.mds_cost(1);
        let thousand = pfs.mds_cost(1000);
        assert_eq!(thousand.as_nanos(), 1000 * one.as_nanos());
    }
}
