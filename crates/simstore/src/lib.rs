//! # simstore — the storage substrate
//!
//! Everything the paper's storage hierarchy needs, modeled on
//! `simcore`'s fluid bandwidth engine:
//!
//! * [`namespace::Namespace`] — capacity-bounded in-memory file tree
//!   with POSIX-ish permissions; every tier tracks which data lives
//!   where (dataspace validation, `persist`, tracked-dataspace checks).
//! * [`pfs::PfsModel`] — Lustre/GPFS-like PFS: OST lanes, striping,
//!   server ingress, per-node client limits, MDS costs and the
//!   cross-application interference behind Fig. 1.
//! * [`local::LocalDeviceClass`] — node-local NVM (DCPMM) and NVMe SSD
//!   lanes whose aggregate scales with node count (Fig. 8).
//! * [`bb::BurstBufferModel`] — shared DataWarp-like appliance
//!   (extension: the paper lists BB transfer plugins as future work).
//! * [`system::StorageSystem`] — the registry gluing tiers, namespaces
//!   and I/O shard planning together for the NORNS service.

pub mod bb;
pub mod local;
pub mod namespace;
pub mod pfs;
pub mod system;

pub use bb::{BurstBufferModel, BurstBufferParams};
pub use local::{LocalDeviceClass, LocalParams};
pub use namespace::{Access, Cred, Gid, Mode, Namespace, NsError, Stat, Uid};
pub use pfs::{Interference, IoDir, PfsModel, PfsParams};
pub use system::{IoShard, StorageSystem, TierKind, TierRef};
