//! In-memory hierarchical namespace.
//!
//! Every storage tier (PFS, node-local NVM, burst buffer) carries one
//! of these so the system tracks *which data lives where* — the heart
//! of dataspace validation, `persist` bookkeeping and the "non-empty
//! tracked dataspace at node release" check from the paper.
//!
//! Permissions follow a simplified POSIX model: numeric uid/gid plus
//! rwx bits for owner/group/other. NORNS' urd validates that a
//! requesting process can actually access the resources named in an
//! I/O task (Section IV-B), so the namespace has to enforce this.

use std::collections::BTreeMap;

/// Numeric user id.
pub type Uid = u32;
/// Numeric group id.
pub type Gid = u32;

/// Simplified mode bits: octal `0oOGW` style, three octal digits
/// (owner, group, other), each rwx.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode(pub u16);

impl Mode {
    pub const RWX_ALL: Mode = Mode(0o777);
    pub const PRIVATE: Mode = Mode(0o700);
    pub const SHARED_READ: Mode = Mode(0o755);

    fn bits_for(self, who: Who) -> u16 {
        match who {
            Who::Owner => (self.0 >> 6) & 0o7,
            Who::Group => (self.0 >> 3) & 0o7,
            Who::Other => self.0 & 0o7,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Who {
    Owner,
    Group,
    Other,
}

/// Access classes checked by [`Namespace`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
    Exec,
}

impl Access {
    fn mask(self) -> u16 {
        match self {
            Access::Read => 0o4,
            Access::Write => 0o2,
            Access::Exec => 0o1,
        }
    }
}

/// Identity of a caller, with supplementary groups (Slurm can place
/// job processes into the `norns-user` group via `setgroups(2)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cred {
    pub uid: Uid,
    pub gid: Gid,
    pub groups: Vec<Gid>,
}

impl Cred {
    pub fn new(uid: Uid, gid: Gid) -> Self {
        Cred {
            uid,
            gid,
            groups: Vec::new(),
        }
    }

    pub fn root() -> Self {
        Cred::new(0, 0)
    }

    pub fn with_group(mut self, gid: Gid) -> Self {
        self.groups.push(gid);
        self
    }

    pub fn is_root(&self) -> bool {
        self.uid == 0
    }

    fn in_group(&self, gid: Gid) -> bool {
        self.gid == gid || self.groups.contains(&gid)
    }
}

/// Namespace errors, deliberately close to errno semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsError {
    NotFound(String),
    NotADirectory(String),
    IsADirectory(String),
    AlreadyExists(String),
    PermissionDenied(String),
    NoSpace { requested: u64, available: u64 },
    DirectoryNotEmpty(String),
    InvalidPath(String),
}

impl std::fmt::Display for NsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            NsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            NsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            NsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            NsError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            NsError::NoSpace {
                requested,
                available,
            } => {
                write!(
                    f,
                    "no space left: requested {requested} B, available {available} B"
                )
            }
            NsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            NsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
        }
    }
}

impl std::error::Error for NsError {}

/// Metadata common to files and directories.
#[derive(Debug, Clone)]
pub struct Meta {
    pub owner: Uid,
    pub group: Gid,
    pub mode: Mode,
}

#[derive(Debug, Clone)]
enum Node {
    File {
        meta: Meta,
        size: u64,
    },
    Dir {
        meta: Meta,
        children: BTreeMap<String, Node>,
    },
}

impl Node {
    fn meta(&self) -> &Meta {
        match self {
            Node::File { meta, .. } | Node::Dir { meta, .. } => meta,
        }
    }

    fn meta_mut(&mut self) -> &mut Meta {
        match self {
            Node::File { meta, .. } | Node::Dir { meta, .. } => meta,
        }
    }

    fn check(&self, cred: &Cred, access: Access, path: &str) -> Result<(), NsError> {
        if cred.is_root() {
            return Ok(());
        }
        let meta = self.meta();
        let who = if cred.uid == meta.owner {
            Who::Owner
        } else if cred.in_group(meta.group) {
            Who::Group
        } else {
            Who::Other
        };
        if meta.mode.bits_for(who) & access.mask() != 0 {
            Ok(())
        } else {
            Err(NsError::PermissionDenied(path.to_string()))
        }
    }
}

/// Information returned by [`Namespace::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    pub is_dir: bool,
    pub size: u64,
    pub owner: Uid,
    pub group: Gid,
    pub mode: Mode,
}

/// A capacity-bounded in-memory file tree.
#[derive(Debug, Clone)]
pub struct Namespace {
    root: Node,
    capacity: u64,
    used: u64,
}

fn split(path: &str) -> Result<Vec<&str>, NsError> {
    if path.contains("//") || path.contains("..") {
        return Err(NsError::InvalidPath(path.to_string()));
    }
    Ok(path
        .split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect())
}

impl Namespace {
    /// Create an empty namespace with the given byte capacity. The
    /// root directory is owned by root and world-accessible.
    pub fn new(capacity: u64) -> Self {
        Namespace {
            root: Node::Dir {
                meta: Meta {
                    owner: 0,
                    group: 0,
                    mode: Mode(0o777),
                },
                children: BTreeMap::new(),
            },
            capacity,
            used: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    fn walk(&self, comps: &[&str], cred: &Cred, path: &str) -> Result<&Node, NsError> {
        let mut cur = &self.root;
        for (i, comp) in comps.iter().enumerate() {
            if matches!(cur, Node::File { .. }) {
                return Err(NsError::NotADirectory(comps[..i].join("/")));
            }
            // Traversal needs exec on every intermediate directory.
            cur.check(cred, Access::Exec, path)?;
            match cur {
                Node::Dir { children, .. } => match children.get(*comp) {
                    Some(next) => cur = next,
                    None => return Err(NsError::NotFound(path.to_string())),
                },
                Node::File { .. } => unreachable!("checked above"),
            }
        }
        Ok(cur)
    }

    fn walk_mut(&mut self, comps: &[&str], cred: &Cred, path: &str) -> Result<&mut Node, NsError> {
        // Immutable pre-check so error paths do not require unsafe.
        self.walk(comps, cred, path)?;
        let mut cur = &mut self.root;
        for comp in comps {
            match cur {
                Node::Dir { children, .. } => cur = children.get_mut(*comp).unwrap(),
                Node::File { .. } => unreachable!("validated by walk()"),
            }
        }
        Ok(cur)
    }

    /// `mkdir -p`: create all missing components, owned by the caller.
    pub fn mkdir_p(&mut self, path: &str, cred: &Cred, mode: Mode) -> Result<(), NsError> {
        let comps = split(path)?;
        let mut cur = &mut self.root;
        for comp in comps {
            cur.check(cred, Access::Exec, path)?;
            let needs_create = match &*cur {
                Node::Dir { children, .. } => !children.contains_key(comp),
                Node::File { .. } => return Err(NsError::NotADirectory(path.to_string())),
            };
            if needs_create {
                // Creating an entry requires write on the parent.
                cur.check(cred, Access::Write, path)?;
            }
            match cur {
                Node::Dir { children, .. } => {
                    if needs_create {
                        children.insert(
                            comp.to_string(),
                            Node::Dir {
                                meta: Meta {
                                    owner: cred.uid,
                                    group: cred.gid,
                                    mode,
                                },
                                children: BTreeMap::new(),
                            },
                        );
                    }
                    cur = children.get_mut(comp).unwrap();
                }
                Node::File { .. } => unreachable!("checked above"),
            }
        }
        Ok(())
    }

    /// Create a file of `size` bytes. Fails if it exists or the tier
    /// has insufficient capacity. Missing parents are created.
    pub fn create_file(
        &mut self,
        path: &str,
        size: u64,
        cred: &Cred,
        mode: Mode,
    ) -> Result<(), NsError> {
        let comps = split(path)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(NsError::InvalidPath(path.to_string()));
        };
        if size > self.available() {
            return Err(NsError::NoSpace {
                requested: size,
                available: self.available(),
            });
        }
        let parent_path = parents.join("/");
        if self.walk(parents, cred, &parent_path).is_err() {
            self.mkdir_p(&parent_path, cred, Mode(0o755))?;
        }
        let parent = self.walk_mut(parents, cred, &parent_path)?;
        parent.check(cred, Access::Write, &parent_path)?;
        match parent {
            Node::Dir { children, .. } => {
                if children.contains_key(*name) {
                    return Err(NsError::AlreadyExists(path.to_string()));
                }
                children.insert(
                    name.to_string(),
                    Node::File {
                        meta: Meta {
                            owner: cred.uid,
                            group: cred.gid,
                            mode,
                        },
                        size,
                    },
                );
                self.used += size;
                Ok(())
            }
            Node::File { .. } => Err(NsError::NotADirectory(parent_path)),
        }
    }

    /// Overwrite or create; returns the byte delta applied to `used`.
    pub fn write_file(
        &mut self,
        path: &str,
        size: u64,
        cred: &Cred,
        mode: Mode,
    ) -> Result<i64, NsError> {
        match self.stat(path, cred) {
            Ok(st) if !st.is_dir => {
                let old = st.size;
                let extra = size.saturating_sub(old);
                let available = self.capacity.saturating_sub(self.used);
                if extra > available {
                    return Err(NsError::NoSpace {
                        requested: extra,
                        available,
                    });
                }
                let comps = split(path)?;
                // Overwrite requires write permission on the file.
                let node = self.walk_mut(&comps, cred, path)?;
                node.check(cred, Access::Write, path)?;
                if let Node::File { size: s, .. } = node {
                    *s = size;
                }
                self.used = self.used + size - old;
                Ok(size as i64 - old as i64)
            }
            Ok(_) => Err(NsError::IsADirectory(path.to_string())),
            Err(NsError::NotFound(_)) => {
                self.create_file(path, size, cred, mode)?;
                Ok(size as i64)
            }
            Err(e) => Err(e),
        }
    }

    pub fn stat(&self, path: &str, cred: &Cred) -> Result<Stat, NsError> {
        let comps = split(path)?;
        let node = self.walk(&comps, cred, path)?;
        let meta = node.meta();
        Ok(match node {
            Node::File { size, .. } => Stat {
                is_dir: false,
                size: *size,
                owner: meta.owner,
                group: meta.group,
                mode: meta.mode,
            },
            Node::Dir { children, .. } => Stat {
                is_dir: true,
                size: children.len() as u64,
                owner: meta.owner,
                group: meta.group,
                mode: meta.mode,
            },
        })
    }

    pub fn exists(&self, path: &str) -> bool {
        split(path)
            .ok()
            .and_then(|c| self.walk(&c, &Cred::root(), path).ok())
            .is_some()
    }

    /// Check that `cred` may open `path` with `access`.
    pub fn check_access(&self, path: &str, cred: &Cred, access: Access) -> Result<(), NsError> {
        let comps = split(path)?;
        let node = self.walk(&comps, cred, path)?;
        node.check(cred, access, path)
    }

    /// Remove a file (or an empty directory); `recursive` removes
    /// whole trees. Returns bytes freed.
    pub fn remove(&mut self, path: &str, cred: &Cred, recursive: bool) -> Result<u64, NsError> {
        let comps = split(path)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(NsError::InvalidPath(path.to_string()));
        };
        let parent_path = parents.join("/");
        let parent = self.walk_mut(parents, cred, &parent_path)?;
        parent.check(cred, Access::Write, &parent_path)?;
        let Node::Dir { children, .. } = parent else {
            return Err(NsError::NotADirectory(parent_path));
        };
        let Some(node) = children.get(*name) else {
            return Err(NsError::NotFound(path.to_string()));
        };
        if let Node::Dir { children: sub, .. } = node {
            if !sub.is_empty() && !recursive {
                return Err(NsError::DirectoryNotEmpty(path.to_string()));
            }
        }
        fn tree_size(n: &Node) -> u64 {
            match n {
                Node::File { size, .. } => *size,
                Node::Dir { children, .. } => children.values().map(tree_size).sum(),
            }
        }
        let freed = tree_size(node);
        children.remove(*name);
        self.used -= freed;
        Ok(freed)
    }

    /// List names in a directory.
    pub fn list(&self, path: &str, cred: &Cred) -> Result<Vec<String>, NsError> {
        let comps = split(path)?;
        let node = self.walk(&comps, cred, path)?;
        node.check(cred, Access::Read, path)?;
        match node {
            Node::Dir { children, .. } => Ok(children.keys().cloned().collect()),
            Node::File { .. } => Err(NsError::NotADirectory(path.to_string())),
        }
    }

    /// Total bytes under `path` (file size or recursive dir size).
    pub fn tree_bytes(&self, path: &str, cred: &Cred) -> Result<u64, NsError> {
        let comps = split(path)?;
        let node = self.walk(&comps, cred, path)?;
        fn rec(n: &Node) -> u64 {
            match n {
                Node::File { size, .. } => *size,
                Node::Dir { children, .. } => children.values().map(rec).sum(),
            }
        }
        Ok(rec(node))
    }

    /// Is the subtree at `path` empty of files? Used for the paper's
    /// tracked-dataspace check on node release.
    pub fn is_empty_tree(&self, path: &str, cred: &Cred) -> Result<bool, NsError> {
        Ok(self.tree_bytes(path, cred)? == 0)
    }

    /// All files under `path` as `(relative_path, size)` pairs, in
    /// deterministic (sorted) order. For a file, returns one entry with
    /// an empty relative path. Used to mirror directory trees when a
    /// staging task copies a whole directory (e.g. OpenFOAM's
    /// directory-per-process layout).
    pub fn walk_files(&self, path: &str, cred: &Cred) -> Result<Vec<(String, u64)>, NsError> {
        let comps = split(path)?;
        let node = self.walk(&comps, cred, path)?;
        let mut out = Vec::new();
        fn rec(node: &Node, prefix: &str, out: &mut Vec<(String, u64)>) {
            match node {
                Node::File { size, .. } => out.push((prefix.to_string(), *size)),
                Node::Dir { children, .. } => {
                    for (name, child) in children {
                        let sub = if prefix.is_empty() {
                            name.clone()
                        } else {
                            format!("{prefix}/{name}")
                        };
                        rec(child, &sub, out);
                    }
                }
            }
        }
        rec(node, "", &mut out);
        Ok(out)
    }

    /// Number of files in the subtree at `path`.
    pub fn file_count(&self, path: &str, cred: &Cred) -> Result<u64, NsError> {
        Ok(self.walk_files(path, cred)?.len() as u64)
    }

    /// chmod-like; only owner or root.
    pub fn set_mode(&mut self, path: &str, cred: &Cred, mode: Mode) -> Result<(), NsError> {
        let comps = split(path)?;
        let node = self.walk_mut(&comps, cred, path)?;
        if !cred.is_root() && node.meta().owner != cred.uid {
            return Err(NsError::PermissionDenied(path.to_string()));
        }
        node.meta_mut().mode = mode;
        Ok(())
    }

    /// chown-like; root only (matches the restricted kernel semantics).
    pub fn set_owner(
        &mut self,
        path: &str,
        cred: &Cred,
        owner: Uid,
        group: Gid,
    ) -> Result<(), NsError> {
        if !cred.is_root() {
            return Err(NsError::PermissionDenied(path.to_string()));
        }
        let comps = split(path)?;
        let node = self.walk_mut(&comps, cred, path)?;
        node.meta_mut().owner = owner;
        node.meta_mut().group = group;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn ns() -> Namespace {
        Namespace::new(100 * GIB)
    }

    #[test]
    fn create_and_stat_file() {
        let mut ns = ns();
        let alice = Cred::new(1000, 1000);
        ns.create_file("data/input.dat", 4 * GIB, &alice, Mode(0o644))
            .unwrap();
        let st = ns.stat("data/input.dat", &alice).unwrap();
        assert!(!st.is_dir);
        assert_eq!(st.size, 4 * GIB);
        assert_eq!(st.owner, 1000);
        assert_eq!(ns.used(), 4 * GIB);
    }

    #[test]
    fn missing_parents_are_created() {
        let mut ns = ns();
        let cred = Cred::new(1, 1);
        ns.create_file("a/b/c/file", 10, &cred, Mode(0o644))
            .unwrap();
        assert!(ns.stat("a/b/c", &cred).unwrap().is_dir);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut ns = ns();
        let cred = Cred::new(1, 1);
        ns.create_file("x", 1, &cred, Mode(0o644)).unwrap();
        assert!(matches!(
            ns.create_file("x", 1, &cred, Mode(0o644)),
            Err(NsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut ns = Namespace::new(10);
        let cred = Cred::new(1, 1);
        ns.create_file("a", 8, &cred, Mode(0o644)).unwrap();
        match ns.create_file("b", 4, &cred, Mode(0o644)) {
            Err(NsError::NoSpace {
                requested: 4,
                available: 2,
            }) => {}
            other => panic!("expected NoSpace, got {other:?}"),
        }
        // Free and retry.
        assert_eq!(ns.remove("a", &cred, false).unwrap(), 8);
        ns.create_file("b", 4, &cred, Mode(0o644)).unwrap();
        assert_eq!(ns.used(), 4);
    }

    #[test]
    fn write_file_tracks_size_delta() {
        let mut ns = ns();
        let cred = Cred::new(1, 1);
        assert_eq!(ns.write_file("f", 100, &cred, Mode(0o644)).unwrap(), 100);
        assert_eq!(ns.write_file("f", 40, &cred, Mode(0o644)).unwrap(), -60);
        assert_eq!(ns.used(), 40);
        assert_eq!(ns.write_file("f", 140, &cred, Mode(0o644)).unwrap(), 100);
        assert_eq!(ns.used(), 140);
    }

    #[test]
    fn permission_denied_for_other_users() {
        let mut ns = ns();
        let alice = Cred::new(1000, 1000);
        let bob = Cred::new(2000, 2000);
        ns.create_file("private/secret", 10, &alice, Mode(0o600))
            .unwrap();
        // Parent dirs were auto-created 0755, so traversal works, but
        // the file itself denies read.
        assert!(matches!(
            ns.check_access("private/secret", &bob, Access::Read),
            Err(NsError::PermissionDenied(_))
        ));
        assert!(ns
            .check_access("private/secret", &alice, Access::Read)
            .is_ok());
    }

    #[test]
    fn group_sharing_via_supplementary_groups() {
        let mut ns = ns();
        let alice = Cred::new(1000, 1000);
        ns.create_file("shared/data", 10, &alice, Mode(0o640))
            .unwrap();
        let bob_plain = Cred::new(2000, 2000);
        let bob_in_group = Cred::new(2000, 2000).with_group(1000);
        assert!(ns
            .check_access("shared/data", &bob_plain, Access::Read)
            .is_err());
        assert!(ns
            .check_access("shared/data", &bob_in_group, Access::Read)
            .is_ok());
    }

    #[test]
    fn root_bypasses_permissions() {
        let mut ns = ns();
        let alice = Cred::new(1000, 1000);
        ns.create_file("p/f", 10, &alice, Mode(0o600)).unwrap();
        assert!(ns.check_access("p/f", &Cred::root(), Access::Write).is_ok());
    }

    #[test]
    fn traversal_requires_exec_on_parents() {
        let mut ns = ns();
        let alice = Cred::new(1000, 1000);
        ns.mkdir_p("locked", &alice, Mode(0o700)).unwrap();
        ns.create_file("locked/f", 10, &alice, Mode(0o777)).unwrap();
        let bob = Cred::new(2000, 2000);
        assert!(matches!(
            ns.stat("locked/f", &bob),
            Err(NsError::PermissionDenied(_))
        ));
    }

    #[test]
    fn remove_nonempty_dir_requires_recursive() {
        let mut ns = ns();
        let cred = Cred::new(1, 1);
        ns.create_file("d/f1", 10, &cred, Mode(0o644)).unwrap();
        ns.create_file("d/f2", 20, &cred, Mode(0o644)).unwrap();
        assert!(matches!(
            ns.remove("d", &cred, false),
            Err(NsError::DirectoryNotEmpty(_))
        ));
        assert_eq!(ns.remove("d", &cred, true).unwrap(), 30);
        assert_eq!(ns.used(), 0);
        assert!(!ns.exists("d"));
    }

    #[test]
    fn list_and_tree_bytes() {
        let mut ns = ns();
        let cred = Cred::new(1, 1);
        ns.create_file("out/rank0/u.dat", 100, &cred, Mode(0o644))
            .unwrap();
        ns.create_file("out/rank1/u.dat", 150, &cred, Mode(0o644))
            .unwrap();
        let names = ns.list("out", &cred).unwrap();
        assert_eq!(names, vec!["rank0", "rank1"]);
        assert_eq!(ns.tree_bytes("out", &cred).unwrap(), 250);
        assert!(!ns.is_empty_tree("out", &cred).unwrap());
        ns.remove("out/rank0/u.dat", &cred, false).unwrap();
        ns.remove("out/rank1/u.dat", &cred, false).unwrap();
        assert!(ns.is_empty_tree("out", &cred).unwrap());
    }

    #[test]
    fn walk_files_mirrors_tree() {
        let mut ns = ns();
        let cred = Cred::new(1, 1);
        ns.create_file("case/processor0/U", 10, &cred, Mode(0o644))
            .unwrap();
        ns.create_file("case/processor0/p", 20, &cred, Mode(0o644))
            .unwrap();
        ns.create_file("case/processor1/U", 30, &cred, Mode(0o644))
            .unwrap();
        let files = ns.walk_files("case", &cred).unwrap();
        assert_eq!(
            files,
            vec![
                ("processor0/U".to_string(), 10),
                ("processor0/p".to_string(), 20),
                ("processor1/U".to_string(), 30),
            ]
        );
        assert_eq!(ns.file_count("case", &cred).unwrap(), 3);
        // A single file yields one entry with empty rel path.
        assert_eq!(
            ns.walk_files("case/processor0/U", &cred).unwrap(),
            vec![("".into(), 10)]
        );
    }

    #[test]
    fn invalid_paths_rejected() {
        let ns = ns();
        assert!(matches!(
            ns.stat("a//b", &Cred::root()),
            Err(NsError::InvalidPath(_))
        ));
        assert!(matches!(
            ns.stat("../etc", &Cred::root()),
            Err(NsError::InvalidPath(_))
        ));
    }

    #[test]
    fn chmod_chown_semantics() {
        let mut ns = ns();
        let alice = Cred::new(1000, 1000);
        let bob = Cred::new(2000, 2000);
        ns.create_file("f", 1, &alice, Mode(0o600)).unwrap();
        assert!(ns.set_mode("f", &bob, Mode(0o777)).is_err());
        ns.set_mode("f", &alice, Mode(0o644)).unwrap();
        assert!(ns.check_access("f", &bob, Access::Read).is_ok());
        assert!(
            ns.set_owner("f", &alice, 2000, 2000).is_err(),
            "chown is root-only"
        );
        ns.set_owner("f", &Cred::root(), 2000, 2000).unwrap();
        assert_eq!(ns.stat("f", &bob).unwrap().owner, 2000);
    }

    #[test]
    fn file_component_in_middle_of_path_errors() {
        let mut ns = ns();
        let cred = Cred::new(1, 1);
        ns.create_file("f", 1, &cred, Mode(0o644)).unwrap();
        assert!(matches!(
            ns.stat("f/child", &cred),
            Err(NsError::NotADirectory(_))
        ));
    }
}
