//! Shared burst-buffer appliance model (Cray DataWarp / DDN IME-like).
//!
//! The paper discusses shared burst buffers as dedicated storage
//! hardware on separate I/O nodes, "available as an I/O resource that
//! is external to the compute nodes in the same way a traditional
//! parallel filesystem is accessed", and lists transfer plugins for
//! them as future work. This model lets the reproduction run the
//! paper's comparisons *and* that extension: a handful of BB servers
//! behind a shared ingress, no striping metadata, flat namespace
//! allocation round-robined over servers.

use simcore::{FluidNetwork, ResourceId, SimDuration};

use crate::pfs::IoDir;

/// Static parameters of a burst-buffer appliance.
#[derive(Debug, Clone)]
pub struct BurstBufferParams {
    pub servers: usize,
    pub server_bps: f64,
    pub ingress_bps: f64,
    pub capacity: u64,
    /// Allocation/session setup cost (DataWarp allocation calls).
    pub setup: SimDuration,
}

impl BurstBufferParams {
    /// A DataWarp-like appliance: 4 servers, fast NVMe arrays.
    pub fn datawarp_like() -> Self {
        BurstBufferParams {
            servers: 4,
            server_bps: simcore::units::gib_per_s(5.0),
            ingress_bps: simcore::units::gib_per_s(16.0),
            capacity: 40 * simcore::units::TB,
            setup: SimDuration::from_millis(2),
        }
    }
}

/// A built appliance with its fluid resources.
#[derive(Debug)]
pub struct BurstBufferModel {
    pub params: BurstBufferParams,
    ingress: ResourceId,
    servers: Vec<ResourceId>,
    next_server: usize,
}

impl BurstBufferModel {
    pub fn build(net: &mut FluidNetwork, name: &str, params: BurstBufferParams) -> Self {
        let ingress = net.add_resource(params.ingress_bps, format!("{name}.ingress"));
        let servers = (0..params.servers)
            .map(|i| net.add_resource(params.server_bps, format!("{name}.srv{i}")))
            .collect();
        BurstBufferModel {
            params,
            ingress,
            servers,
            next_server: 0,
        }
    }

    /// Pick the server for a new object (round-robin) and return the
    /// resource path for moving data to/from it. Direction does not
    /// change the path: BB servers are symmetric NVMe arrays.
    pub fn alloc_path(&mut self, _dir: IoDir) -> Vec<ResourceId> {
        let s = self.servers[self.next_server];
        self.next_server = (self.next_server + 1) % self.servers.len();
        vec![self.ingress, s]
    }

    /// Path to a specific server (for reading back an object that was
    /// placed earlier).
    pub fn server_path(&self, server: usize) -> Vec<ResourceId> {
        vec![self.ingress, self.servers[server]]
    }

    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    pub fn aggregate_bps(&self) -> f64 {
        (self.params.server_bps * self.servers.len() as f64).min(self.params.ingress_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FlowSpec, SimTime};

    #[test]
    fn round_robin_allocation() {
        let mut net = FluidNetwork::new();
        let mut bb = BurstBufferModel::build(&mut net, "bb", BurstBufferParams::datawarp_like());
        let p1 = bb.alloc_path(IoDir::Write);
        let p2 = bb.alloc_path(IoDir::Write);
        assert_ne!(
            p1[1], p2[1],
            "consecutive objects land on different servers"
        );
        assert_eq!(p1[0], p2[0], "shared ingress");
    }

    #[test]
    fn aggregate_is_ingress_limited() {
        let mut net = FluidNetwork::new();
        let mut bb = BurstBufferModel::build(&mut net, "bb", BurstBufferParams::datawarp_like());
        // 4 servers × 5 GiB/s = 20, but ingress = 16 GiB/s.
        for _ in 0..4 {
            let p = bb.alloc_path(IoDir::Write);
            net.start_flow(SimTime::ZERO, FlowSpec::new(1e12, p));
        }
        net.recompute();
        let secs = net.next_completion().unwrap().as_secs_f64();
        let aggregate = 4.0 * 1e12 / secs;
        let expected = bb.aggregate_bps();
        assert!((aggregate - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn many_to_few_funnel_contends() {
        // The paper's critique of stage-node designs: "the overall
        // buffer available for data staging is limited, and subject to
        // performance interference between applications". 16 clients
        // into 4 servers share 16 GiB/s; per-client share is 1 GiB/s,
        // far below a node-local device.
        let mut net = FluidNetwork::new();
        let mut bb = BurstBufferModel::build(&mut net, "bb", BurstBufferParams::datawarp_like());
        for _ in 0..16 {
            let p = bb.alloc_path(IoDir::Write);
            net.start_flow(SimTime::ZERO, FlowSpec::new(1e12, p));
        }
        net.recompute();
        let secs = net.next_completion().unwrap().as_secs_f64();
        let per_client = 1e12 / secs;
        assert!(per_client <= simcore::units::gib_per_s(1.0) * 1.01);
    }
}
