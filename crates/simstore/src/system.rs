//! Registry of storage tiers in a simulated cluster.
//!
//! A [`StorageSystem`] owns every tier model plus its namespace(s):
//! shared tiers (PFS, burst buffer) have one namespace, node-local
//! classes have one namespace per node. Tier names follow the paper's
//! dataspace-id convention (`lustre://`, `nvme0://`, `pmdk0://`): the
//! scheme part is the tier name here.

use std::collections::HashMap;

use simcore::{FluidNetwork, ResourceId, SimDuration, SimRng};

use crate::bb::{BurstBufferModel, BurstBufferParams};
use crate::local::{LocalDeviceClass, LocalParams};
use crate::namespace::Namespace;
use crate::pfs::{IoDir, PfsModel, PfsParams};

/// Coarse classification of a tier, used by the scheduler to decide
/// what counts as "node-local storage" for persist/stage operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierKind {
    Pfs,
    NodeLocalNvm,
    NodeLocalSsd,
    Tmpfs,
    BurstBuffer,
}

impl TierKind {
    pub fn is_node_local(self) -> bool {
        matches!(
            self,
            TierKind::NodeLocalNvm | TierKind::NodeLocalSsd | TierKind::Tmpfs
        )
    }
}

/// Opaque reference to a registered tier class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierRef {
    Pfs(usize),
    Local(usize),
    Bb(usize),
}

/// One shard of a planned I/O: move `bytes` across `path`.
#[derive(Debug, Clone)]
pub struct IoShard {
    pub path: Vec<ResourceId>,
    pub bytes: u64,
}

struct PfsEntry {
    name: String,
    model: PfsModel,
    ns: Namespace,
}

struct LocalEntry {
    name: String,
    kind: TierKind,
    class: LocalDeviceClass,
    per_node_ns: Vec<Namespace>,
}

struct BbEntry {
    name: String,
    model: BurstBufferModel,
    ns: Namespace,
    /// Object placement: path → server index (flat namespace).
    placement: HashMap<String, usize>,
}

/// All storage in the cluster.
#[derive(Default)]
pub struct StorageSystem {
    pfs: Vec<PfsEntry>,
    locals: Vec<LocalEntry>,
    bbs: Vec<BbEntry>,
    by_name: HashMap<String, TierRef>,
}

impl StorageSystem {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_pfs(
        &mut self,
        net: &mut FluidNetwork,
        name: &str,
        nodes: usize,
        params: PfsParams,
        capacity: u64,
    ) -> TierRef {
        let model = PfsModel::build(net, name, nodes, params);
        let r = TierRef::Pfs(self.pfs.len());
        self.pfs.push(PfsEntry {
            name: name.to_string(),
            model,
            ns: Namespace::new(capacity),
        });
        self.by_name.insert(name.to_string(), r);
        r
    }

    pub fn add_local_class(
        &mut self,
        net: &mut FluidNetwork,
        name: &str,
        nodes: usize,
        params: LocalParams,
        kind: TierKind,
    ) -> TierRef {
        assert!(kind.is_node_local(), "kind must be node-local");
        let capacity = params.capacity;
        let class = LocalDeviceClass::build(net, name, nodes, params);
        let r = TierRef::Local(self.locals.len());
        self.locals.push(LocalEntry {
            name: name.to_string(),
            kind,
            class,
            per_node_ns: (0..nodes).map(|_| Namespace::new(capacity)).collect(),
        });
        self.by_name.insert(name.to_string(), r);
        r
    }

    pub fn add_burst_buffer(
        &mut self,
        net: &mut FluidNetwork,
        name: &str,
        params: BurstBufferParams,
    ) -> TierRef {
        let capacity = params.capacity;
        let model = BurstBufferModel::build(net, name, params);
        let r = TierRef::Bb(self.bbs.len());
        self.bbs.push(BbEntry {
            name: name.to_string(),
            model,
            ns: Namespace::new(capacity),
            placement: HashMap::new(),
        });
        self.by_name.insert(name.to_string(), r);
        r
    }

    pub fn resolve(&self, name: &str) -> Option<TierRef> {
        self.by_name.get(name).copied()
    }

    pub fn tier_name(&self, tier: TierRef) -> &str {
        match tier {
            TierRef::Pfs(i) => &self.pfs[i].name,
            TierRef::Local(i) => &self.locals[i].name,
            TierRef::Bb(i) => &self.bbs[i].name,
        }
    }

    pub fn kind(&self, tier: TierRef) -> TierKind {
        match tier {
            TierRef::Pfs(_) => TierKind::Pfs,
            TierRef::Local(i) => self.locals[i].kind,
            TierRef::Bb(_) => TierKind::BurstBuffer,
        }
    }

    /// Namespace for a tier; node-local tiers require `node`.
    pub fn ns(&self, tier: TierRef, node: Option<usize>) -> &Namespace {
        match tier {
            TierRef::Pfs(i) => &self.pfs[i].ns,
            TierRef::Bb(i) => &self.bbs[i].ns,
            TierRef::Local(i) => {
                let n = node.expect("node-local tier requires a node");
                &self.locals[i].per_node_ns[n]
            }
        }
    }

    pub fn ns_mut(&mut self, tier: TierRef, node: Option<usize>) -> &mut Namespace {
        match tier {
            TierRef::Pfs(i) => &mut self.pfs[i].ns,
            TierRef::Bb(i) => &mut self.bbs[i].ns,
            TierRef::Local(i) => {
                let n = node.expect("node-local tier requires a node");
                &mut self.locals[i].per_node_ns[n]
            }
        }
    }

    /// Plan the tier-side resource shards for moving `bytes` between
    /// compute node `node` and this tier. `stripe` is honoured only by
    /// PFS tiers. Fabric resources are *not* included — callers add
    /// them when source and sink live on different nodes.
    pub fn plan_io(
        &mut self,
        tier: TierRef,
        node: usize,
        dir: IoDir,
        bytes: u64,
        stripe: Option<usize>,
    ) -> Vec<IoShard> {
        match tier {
            TierRef::Pfs(i) => {
                let entry = &mut self.pfs[i];
                entry
                    .model
                    .plan_shards(bytes, stripe)
                    .into_iter()
                    .map(|(ost, b)| IoShard {
                        path: entry.model.shard_path(node, ost, dir),
                        bytes: b,
                    })
                    .collect()
            }
            TierRef::Local(i) => {
                let entry = &mut self.locals[i];
                vec![IoShard {
                    path: entry.class.path(node, dir),
                    bytes,
                }]
            }
            TierRef::Bb(i) => {
                let entry = &mut self.bbs[i];
                vec![IoShard {
                    path: entry.model.alloc_path(dir),
                    bytes,
                }]
            }
        }
    }

    /// Plan I/O against a *fixed* OST allocation (shared-file
    /// semantics). Non-PFS tiers fall back to [`StorageSystem::plan_io`].
    pub fn plan_io_fixed(
        &mut self,
        tier: TierRef,
        node: usize,
        dir: IoDir,
        bytes: u64,
        osts: &[usize],
    ) -> Vec<IoShard> {
        match tier {
            TierRef::Pfs(i) => {
                let entry = &mut self.pfs[i];
                entry
                    .model
                    .plan_shards_at(bytes, osts)
                    .into_iter()
                    .map(|(ost, b)| IoShard {
                        path: entry.model.shard_path(node, ost, dir),
                        bytes: b,
                    })
                    .collect()
            }
            _ => self.plan_io(tier, node, dir, bytes, None),
        }
    }

    /// Allocate the OST set for a new shared striped file.
    pub fn allocate_osts(&mut self, tier: TierRef, stripe: Option<usize>) -> Vec<usize> {
        match tier {
            TierRef::Pfs(i) => self.pfs[i].model.allocate_osts(stripe),
            _ => Vec::new(),
        }
    }

    /// Setup cost before the data moves: metadata ops on a PFS,
    /// fallocate+mmap on local devices, allocation calls on a BB.
    pub fn setup_cost(&self, tier: TierRef, files: u64) -> SimDuration {
        match tier {
            TierRef::Pfs(i) => self.pfs[i].model.mds_cost(files),
            TierRef::Local(i) => {
                let per = self.locals[i].class.params.file_setup;
                SimDuration::from_nanos(per.as_nanos() * files)
            }
            TierRef::Bb(i) => {
                let per = self.bbs[i].model.params.setup;
                SimDuration::from_nanos(per.as_nanos() * files)
            }
        }
    }

    /// Resample PFS interference (call periodically under `with_fluid`).
    pub fn resample_interference(&mut self, net: &mut FluidNetwork, rng: &mut SimRng) {
        for entry in &mut self.pfs {
            entry.model.resample_interference(net, rng);
        }
    }

    /// All registered tier names.
    pub fn tier_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_name.keys().cloned().collect();
        v.sort();
        v
    }

    /// Record which BB server holds an object (set after a write
    /// lands), so later reads hit the same server.
    pub fn bb_place(&mut self, tier: TierRef, path: &str, server: usize) {
        if let TierRef::Bb(i) = tier {
            self.bbs[i].placement.insert(path.to_string(), server);
        }
    }

    pub fn bb_lookup(&self, tier: TierRef, path: &str) -> Option<usize> {
        match tier {
            TierRef::Bb(i) => self.bbs[i].placement.get(path).copied(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::{Cred, Mode};

    fn system() -> (FluidNetwork, StorageSystem) {
        let mut net = FluidNetwork::new();
        let mut sys = StorageSystem::new();
        sys.add_pfs(
            &mut net,
            "lustre",
            4,
            PfsParams::nextgenio_lustre(),
            14 * simcore::units::TB,
        );
        sys.add_local_class(
            &mut net,
            "pmdk0",
            4,
            LocalParams::dcpmm(),
            TierKind::NodeLocalNvm,
        );
        sys.add_burst_buffer(&mut net, "bb0", BurstBufferParams::datawarp_like());
        (net, sys)
    }

    #[test]
    fn resolution_and_kinds() {
        let (_, sys) = system();
        let lustre = sys.resolve("lustre").unwrap();
        let pmdk = sys.resolve("pmdk0").unwrap();
        let bb = sys.resolve("bb0").unwrap();
        assert_eq!(sys.kind(lustre), TierKind::Pfs);
        assert_eq!(sys.kind(pmdk), TierKind::NodeLocalNvm);
        assert_eq!(sys.kind(bb), TierKind::BurstBuffer);
        assert!(sys.kind(pmdk).is_node_local());
        assert!(!sys.kind(lustre).is_node_local());
        assert!(sys.resolve("nope").is_none());
        assert_eq!(sys.tier_names(), vec!["bb0", "lustre", "pmdk0"]);
    }

    #[test]
    fn node_local_namespaces_are_independent() {
        let (_, mut sys) = system();
        let pmdk = sys.resolve("pmdk0").unwrap();
        let cred = Cred::new(1000, 1000);
        sys.ns_mut(pmdk, Some(0))
            .create_file("job1/out.dat", 100, &cred, Mode(0o644))
            .unwrap();
        assert!(sys.ns(pmdk, Some(0)).exists("job1/out.dat"));
        assert!(!sys.ns(pmdk, Some(1)).exists("job1/out.dat"));
    }

    #[test]
    fn pfs_planning_stripes_local_planning_does_not() {
        let (_, mut sys) = system();
        let lustre = sys.resolve("lustre").unwrap();
        let pmdk = sys.resolve("pmdk0").unwrap();
        let pfs_shards = sys.plan_io(lustre, 0, IoDir::Write, 1 << 30, Some(4));
        assert_eq!(pfs_shards.len(), 4);
        let total: u64 = pfs_shards.iter().map(|s| s.bytes).sum();
        assert_eq!(total, 1 << 30);
        let local_shards = sys.plan_io(pmdk, 2, IoDir::Write, 1 << 30, Some(4));
        assert_eq!(local_shards.len(), 1);
        assert_eq!(local_shards[0].bytes, 1 << 30);
    }

    #[test]
    fn setup_costs_scale_with_file_count() {
        let (_, sys) = system();
        let lustre = sys.resolve("lustre").unwrap();
        let one = sys.setup_cost(lustre, 1);
        let many = sys.setup_cost(lustre, 768);
        assert_eq!(many.as_nanos(), 768 * one.as_nanos());
    }

    #[test]
    fn bb_placement_roundtrip() {
        let (_, mut sys) = system();
        let bb = sys.resolve("bb0").unwrap();
        assert!(sys.bb_lookup(bb, "obj1").is_none());
        sys.bb_place(bb, "obj1", 2);
        assert_eq!(sys.bb_lookup(bb, "obj1"), Some(2));
        // Non-BB tiers ignore placement.
        let lustre = sys.resolve("lustre").unwrap();
        assert!(sys.bb_lookup(lustre, "obj1").is_none());
    }

    #[test]
    fn interference_resample_is_safe_with_active_flows() {
        let (mut net, mut sys) = system();
        let lustre = sys.resolve("lustre").unwrap();
        let shards = sys.plan_io(lustre, 0, IoDir::Read, 1 << 30, None);
        for s in &shards {
            net.start_flow(
                simcore::SimTime::ZERO,
                simcore::FlowSpec::new(s.bytes as f64, s.path.clone()),
            );
        }
        net.recompute();
        let mut rng = SimRng::seed_from_u64(5);
        sys.resample_interference(&mut net, &mut rng);
        net.recompute();
        assert!(net.next_completion().is_some());
    }
}
