//! Node-local storage models: NVM (Intel DCPMM-like) and NVMe SSD.
//!
//! These are the devices the paper's whole approach leans on: every
//! compute node contributes its own bandwidth, so application-observed
//! I/O performance scales with the number of nodes (Section II, items
//! 1–4; Fig. 8). Each node gets independent read/write lanes plus a
//! DIMM/PCIe bus coupling resource so mixed traffic contends.

use simcore::{FluidNetwork, ResourceId, SimDuration};

use crate::pfs::IoDir;

/// Static parameters of a node-local device class.
#[derive(Debug, Clone)]
pub struct LocalParams {
    pub read_bps: f64,
    pub write_bps: f64,
    /// Per-file setup cost (fallocate+mmap in the paper's plugins).
    pub file_setup: SimDuration,
    /// Byte capacity per node.
    pub capacity: u64,
}

impl LocalParams {
    /// Intel DCPMM in App Direct mode, 3 TB per node (NEXTGenIO).
    pub fn dcpmm() -> Self {
        LocalParams {
            read_bps: simcore::units::gib_per_s(8.0),
            write_bps: simcore::units::gib_per_s(5.0),
            file_setup: SimDuration::from_micros(15),
            capacity: 3 * simcore::units::TB,
        }
    }

    /// A node-local NVMe SSD (MareNostrum-IV-like burst device).
    pub fn nvme_ssd() -> Self {
        LocalParams {
            read_bps: simcore::units::gib_per_s(3.2),
            write_bps: simcore::units::gib_per_s(1.8),
            file_setup: SimDuration::from_micros(40),
            capacity: 2 * simcore::units::TB,
        }
    }

    /// A RAM-backed tmpfs staging area.
    pub fn tmpfs(capacity: u64) -> Self {
        LocalParams {
            read_bps: simcore::units::gib_per_s(20.0),
            write_bps: simcore::units::gib_per_s(16.0),
            file_setup: SimDuration::from_micros(2),
            capacity,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DeviceLanes {
    read: ResourceId,
    write: ResourceId,
    bus: ResourceId,
}

/// One device class instantiated on every node.
#[derive(Debug)]
pub struct LocalDeviceClass {
    pub params: LocalParams,
    lanes: Vec<DeviceLanes>,
}

impl LocalDeviceClass {
    pub fn build(net: &mut FluidNetwork, name: &str, nodes: usize, params: LocalParams) -> Self {
        let lanes = (0..nodes)
            .map(|n| DeviceLanes {
                read: net.add_resource(params.read_bps, format!("{name}.{n}.r")),
                write: net.add_resource(params.write_bps, format!("{name}.{n}.w")),
                bus: net.add_resource(
                    params.read_bps.max(params.write_bps),
                    format!("{name}.{n}.bus"),
                ),
            })
            .collect();
        LocalDeviceClass { params, lanes }
    }

    pub fn nodes(&self) -> usize {
        self.lanes.len()
    }

    /// The resource path for I/O against this node's device.
    pub fn path(&self, node: usize, dir: IoDir) -> Vec<ResourceId> {
        let l = &self.lanes[node];
        let lane = match dir {
            IoDir::Read => l.read,
            IoDir::Write => l.write,
        };
        vec![lane, l.bus]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FlowSpec, SimTime};

    #[test]
    fn independent_nodes_do_not_contend() {
        let mut net = FluidNetwork::new();
        let dev = LocalDeviceClass::build(&mut net, "pmdk0", 4, LocalParams::dcpmm());
        for n in 0..4 {
            net.start_flow(SimTime::ZERO, FlowSpec::new(1e9, dev.path(n, IoDir::Read)));
        }
        net.recompute();
        // All four flows run at the full per-node read rate.
        let secs = net.next_completion().unwrap().as_secs_f64();
        let rate = 1e9 / secs;
        assert!((rate - dev.params.read_bps).abs() / dev.params.read_bps < 1e-6);
    }

    #[test]
    fn same_node_flows_share_the_lane() {
        let mut net = FluidNetwork::new();
        let dev = LocalDeviceClass::build(&mut net, "pmdk0", 1, LocalParams::dcpmm());
        for _ in 0..2 {
            net.start_flow(SimTime::ZERO, FlowSpec::new(1e9, dev.path(0, IoDir::Read)));
        }
        net.recompute();
        let secs = net.next_completion().unwrap().as_secs_f64();
        let per_flow = 1e9 / secs;
        assert!((per_flow - dev.params.read_bps / 2.0).abs() / dev.params.read_bps < 1e-6);
    }

    #[test]
    fn mixed_read_write_couples_on_the_bus() {
        let mut net = FluidNetwork::new();
        let dev = LocalDeviceClass::build(&mut net, "pmdk0", 1, LocalParams::dcpmm());
        net.start_flow(SimTime::ZERO, FlowSpec::new(1e12, dev.path(0, IoDir::Read)));
        net.start_flow(
            SimTime::ZERO,
            FlowSpec::new(1e12, dev.path(0, IoDir::Write)),
        );
        net.recompute();
        // Bus capacity = max(read, write) = 8 GiB/s; fair share 4/4,
        // write lane allows 5 so write gets 4; read gets 4.
        let bus_cap = dev.params.read_bps;
        let secs = net.next_completion().unwrap().as_secs_f64();
        let per_flow = 1e12 / secs;
        assert!((per_flow - bus_cap / 2.0).abs() / bus_cap < 1e-6);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let dcpmm = LocalParams::dcpmm();
        let ssd = LocalParams::nvme_ssd();
        assert!(dcpmm.read_bps > ssd.read_bps);
        assert!(dcpmm.write_bps > ssd.write_bps);
        assert!(dcpmm.file_setup < ssd.file_setup);
    }
}
