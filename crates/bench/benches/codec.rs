//! Criterion micro-benchmarks for the wire codec — the per-request
//! serialization cost on the Fig. 4/5 hot path.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use norns_proto::{
    encode_frame, CtlRequest, Durability, FrameReader, ResourceDesc, TaskOp, TaskSpec, Wire,
    DEFAULT_PRIORITY,
};

fn submit_request() -> CtlRequest {
    CtlRequest::SubmitTask {
        job_id: 42,
        spec: TaskSpec {
            op: TaskOp::Copy,
            priority: DEFAULT_PRIORITY,
            input: ResourceDesc::PosixPath {
                nsid: "lustre".into(),
                path: "inputs/mesh.dat".into(),
            },
            output: Some(ResourceDesc::PosixPath {
                nsid: "pmdk0".into(),
                path: "work/mesh.dat".into(),
            }),
            durability: Durability::LocalOnly,
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let req = submit_request();
    let encoded = req.to_bytes();

    c.bench_function("encode_submit_request", |b| {
        b.iter(|| black_box(submit_request().to_bytes()))
    });

    c.bench_function("decode_submit_request", |b| {
        b.iter(|| CtlRequest::from_bytes(black_box(encoded.clone())).unwrap())
    });

    let framed = encode_frame(&encoded);
    c.bench_function("frame_roundtrip", |b| {
        b.iter(|| {
            let mut reader = FrameReader::new();
            reader.extend(black_box(&framed));
            reader.next_frame().unwrap().unwrap()
        })
    });

    let payload: Bytes = encoded.clone();
    c.bench_function("encode_frame_only", |b| {
        b.iter(|| encode_frame(black_box(&payload)))
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
