//! Criterion micro-benchmarks for the fluid bandwidth engine — the
//! simulator's hot loop (rate recomputation on every flow event).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use simcore::{FlowSpec, FluidNetwork, SimTime};

fn build_network(flows: usize) -> FluidNetwork {
    let mut net = FluidNetwork::new();
    let core = net.add_resource(1e12, "core");
    let links: Vec<_> = (0..32)
        .map(|i| net.add_resource(12.5e9, format!("nic{i}")))
        .collect();
    for f in 0..flows {
        let a = links[f % 32];
        let b = links[(f * 7 + 3) % 32];
        net.start_flow(
            SimTime::ZERO,
            FlowSpec::new(1e12, vec![a, core, b]).with_cap(1.8e9),
        );
    }
    net.recompute();
    net
}

fn bench_fluid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_recompute");
    for flows in [8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            let mut net = build_network(flows);
            b.iter(|| net.recompute());
        });
    }
    group.finish();

    c.bench_function("flow_churn_64", |b| {
        b.iter_batched(
            || build_network(64),
            |mut net| {
                let done = net.next_completion().expect("fresh network has flows");
                net.advance(done);
                net.recompute();
                net.take_completed().len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_fluid);
criterion_main!(benches);
