//! Criterion micro-benchmark of the real daemon's request path: the
//! per-request cost behind Fig. 4 (submit → validate → enqueue →
//! respond, over a real AF_UNIX socket).

use criterion::{criterion_group, criterion_main, Criterion};
use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
use norns_proto::{
    BackendKind, DataspaceDesc, Durability, ResourceDesc, TaskOp, TaskSpec, DEFAULT_PRIORITY,
};

fn bench_request_rate(c: &mut Criterion) {
    let root = std::env::temp_dir().join(format!("norns-bench-rr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let daemon = UrdDaemon::spawn({
        let mut cfg = DaemonConfig::in_dir(root.join("sockets"));
        cfg.workers = 2;
        cfg
    })
    .unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: "tmp0".into(),
        kind: BackendKind::Tmpfs,
        mount: root.join("tmp0").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();

    c.bench_function("daemon_ping_rtt", |b| b.iter(|| ctl.ping().unwrap()));

    let spec = TaskSpec {
        op: TaskOp::Remove,
        priority: DEFAULT_PRIORITY,
        input: ResourceDesc::PosixPath {
            nsid: "tmp0".into(),
            path: "missing".into(),
        },
        output: None,
        durability: Durability::LocalOnly,
    };
    c.bench_function("daemon_submit_rtt", |b| {
        b.iter(|| loop {
            match ctl.submit(0, spec.clone(), None) {
                Ok(id) => break id,
                // Bounded queue pushing back: spin until admitted.
                Err(norns_ipc::ClientError::Remote {
                    code: norns_proto::ErrorCode::Busy,
                    ..
                }) => std::thread::yield_now(),
                Err(e) => panic!("submit: {e}"),
            }
        })
    });

    c.bench_function("daemon_status_rtt", |b| b.iter(|| ctl.status().unwrap()));
}

criterion_group!(benches, bench_request_rate);
criterion_main!(benches);
