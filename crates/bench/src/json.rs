//! Machine-readable benchmark output: the `BENCH_*.json` files.
//!
//! The workspace builds offline (no serde), so this module carries a
//! deliberately small JSON value type, parser, and serializer — just
//! enough for the bench documents the suite emits and CI validates.
//!
//! Every `BENCH_<name>.json` document has the same shape:
//!
//! ```json
//! {
//!   "bench": "remote",
//!   "schema": 1,
//!   "quick": false,
//!   "rows": [ {"source": "bench_suite", "scenario": "...", ...}, ... ],
//!   "notes": ["..."]
//! }
//! ```
//!
//! `rows` is a flat list of measurement objects; each carries a
//! `source` naming the binary that produced it, so different binaries
//! can merge into one document ([`BenchDoc::merge_into`] replaces only
//! its own source's rows) and the perf trajectory across PRs stays in
//! one place per scenario family.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Schema version stamped into every document; bump on breaking
/// changes to the shape above.
pub const SCHEMA_VERSION: f64 = 1.0;

/// Where the `BENCH_*.json` files land: the repo root by default
/// (committed, unlike `results/`), overridable for tests via
/// `NORNS_BENCH_DIR`.
pub fn bench_dir() -> PathBuf {
    let dir = std::env::var("NORNS_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// A JSON value. Numbers are `f64` (every value the suite emits fits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered (the serializer must be deterministic so
    /// `BENCH_*.json` diffs stay readable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at offset {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

/// One `BENCH_<name>.json` document under construction.
pub struct BenchDoc {
    pub bench: String,
    pub quick: bool,
    pub rows: Vec<Json>,
    pub notes: Vec<String>,
}

impl BenchDoc {
    pub fn new(bench: &str) -> BenchDoc {
        BenchDoc {
            bench: bench.to_string(),
            quick: crate::quick_mode(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one measurement row. `source` names the producing binary;
    /// the remaining fields are scenario-specific.
    pub fn row(&mut self, source: &str, fields: Vec<(&str, Json)>) {
        let mut obj = vec![("source".to_string(), Json::str(source))];
        obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        self.rows.push(Json::Obj(obj));
    }

    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::str(&self.bench)),
            ("schema".into(), Json::Num(SCHEMA_VERSION)),
            ("quick".into(), Json::Bool(self.quick)),
            ("rows".into(), Json::Arr(self.rows.clone())),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Path of this document: `<bench_dir>/BENCH_<name>.json`.
    pub fn path(bench: &str) -> PathBuf {
        bench_dir().join(format!("BENCH_{bench}.json"))
    }

    /// Write the document, replacing the file wholesale.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = Self::path(&self.bench);
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Merge this document's rows into an existing `BENCH_*.json`:
    /// rows from the same `source`s as ours are replaced, rows from
    /// other sources are preserved (so `bench_suite` and
    /// `ablation_remote` share `BENCH_remote.json` without clobbering
    /// each other). Notes carry no source attribution, so ours are
    /// appended with duplicates dropped. A missing or invalid existing
    /// file degrades to a plain write.
    pub fn merge_into(&self) -> std::io::Result<PathBuf> {
        let path = Self::path(&self.bench);
        let existing = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .filter(|doc| validate(doc).is_ok());
        let Some(existing) = existing else {
            return self.write();
        };
        let my_sources: Vec<&str> = self
            .rows
            .iter()
            .filter_map(|r| r.get("source").and_then(Json::as_str))
            .collect();
        let mut rows: Vec<Json> = existing
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter(|r| {
                r.get("source")
                    .and_then(Json::as_str)
                    .map(|s| !my_sources.contains(&s))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        rows.extend(self.rows.iter().cloned());
        let mut notes: Vec<String> = existing
            .get("notes")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|n| n.as_str().map(String::from))
            .collect();
        for note in &self.notes {
            if !notes.contains(note) {
                notes.push(note.clone());
            }
        }
        let merged = BenchDoc {
            bench: self.bench.clone(),
            // A merged doc is "quick" only if every contribution was.
            quick: self.quick
                && existing
                    .get("quick")
                    .and_then(Json::as_bool)
                    .unwrap_or(true),
            rows,
            notes,
        };
        std::fs::write(&path, merged.to_json().to_pretty())?;
        Ok(path)
    }
}

/// Validate the canonical document shape: `bench` (string), `schema`
/// (number, current version), `quick` (bool), `rows` (array of objects
/// each carrying a string `source`), `notes` (array of strings).
pub fn validate(doc: &Json) -> Result<(), String> {
    doc.get("bench")
        .and_then(Json::as_str)
        .ok_or("missing string field 'bench'")?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_f64)
        .ok_or("missing numeric field 'schema'")?;
    if schema != SCHEMA_VERSION {
        return Err(format!("schema {schema} != supported {SCHEMA_VERSION}"));
    }
    doc.get("quick")
        .and_then(Json::as_bool)
        .ok_or("missing bool field 'quick'")?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'rows'")?;
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Json::Obj(_)) {
            return Err(format!("rows[{i}] is not an object"));
        }
        row.get("source")
            .and_then(Json::as_str)
            .ok_or(format!("rows[{i}] missing string field 'source'"))?;
    }
    let notes = doc
        .get("notes")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'notes'")?;
    if notes.iter().any(|n| n.as_str().is_none()) {
        return Err("notes must be strings".into());
    }
    Ok(())
}

/// Load and validate `BENCH_<name>.json`.
pub fn load(bench: &str) -> Result<Json, String> {
    let path = BenchDoc::path(bench);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    validate(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let mut doc = BenchDoc::new("testbench");
        doc.quick = true;
        doc.row(
            "unit_test",
            vec![
                ("scenario", Json::str("x")),
                ("gib_per_s", Json::num(1.25)),
                ("bytes", Json::num(1u32 << 30)),
                ("ok", Json::Bool(true)),
            ],
        );
        doc.note("a \"quoted\" note\nwith a newline");
        let text = doc.to_json().to_pretty();
        let parsed = Json::parse(&text).unwrap();
        validate(&parsed).unwrap();
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("testbench")
        );
        let rows = parsed.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("gib_per_s").and_then(Json::as_f64), Some(1.25));
        assert_eq!(
            rows[0].get("bytes").and_then(Json::as_f64),
            Some((1u32 << 30) as f64)
        );
        assert_eq!(
            parsed.get("notes").and_then(Json::as_arr).unwrap()[0].as_str(),
            Some("a \"quoted\" note\nwith a newline")
        );
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        let text = Json::num(67108864u32).to_pretty();
        assert_eq!(text.trim(), "67108864");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn validate_rejects_wrong_shapes() {
        let missing = Json::parse(r#"{"bench": "x"}"#).unwrap();
        assert!(validate(&missing).is_err());
        let bad_row = Json::parse(
            r#"{"bench":"x","schema":1,"quick":false,"rows":[{"no_source":1}],"notes":[]}"#,
        )
        .unwrap();
        assert!(validate(&bad_row).is_err());
        let good = Json::parse(
            r#"{"bench":"x","schema":1,"quick":false,"rows":[{"source":"s"}],"notes":["n"]}"#,
        )
        .unwrap();
        assert!(validate(&good).is_ok());
    }

    #[test]
    fn merge_replaces_own_source_and_keeps_others() {
        let dir = std::env::temp_dir().join(format!("norns-json-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("NORNS_BENCH_DIR", dir.to_str().unwrap());

        let mut first = BenchDoc::new("mergetest");
        first.row("tool_a", vec![("v", Json::num(1u32))]);
        first.row("tool_b", vec![("v", Json::num(2u32))]);
        first.write().unwrap();

        let mut second = BenchDoc::new("mergetest");
        second.row("tool_b", vec![("v", Json::num(99u32))]);
        second.merge_into().unwrap();

        let doc = load("mergetest").unwrap();
        let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        let by_source = |s: &str| {
            rows.iter()
                .find(|r| r.get("source").and_then(Json::as_str) == Some(s))
                .unwrap()
                .get("v")
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(by_source("tool_a"), 1.0, "other sources preserved");
        assert_eq!(by_source("tool_b"), 99.0, "own source replaced");

        std::env::remove_var("NORNS_BENCH_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
