//! Shared plumbing for the experiment binaries.
//!
//! Every binary regenerates one figure or table from the paper's
//! evaluation: it prints the paper's reported values next to our
//! measured values and writes a CSV under `results/`.

use std::path::PathBuf;

pub mod json;

pub use simcore::metrics::{CsvTable, Summary};

/// Where experiment CSVs land (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("NORNS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// Scale factor for long benchmarks: set `NORNS_QUICK=1` to shrink
/// request counts / repetitions during development.
pub fn quick_mode() -> bool {
    std::env::var("NORNS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Repetition count honoring quick mode.
pub fn reps(full: usize) -> usize {
    if quick_mode() {
        (full / 5).max(2)
    } else {
        full
    }
}

/// An experiment report: banner, notes, aligned table, CSV output.
pub struct Report {
    pub id: &'static str,
    pub title: &'static str,
    pub table: CsvTable,
    notes: Vec<String>,
}

impl Report {
    pub fn new<S: Into<String>>(
        id: &'static str,
        title: &'static str,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        Report {
            id,
            title,
            table: CsvTable::new(columns),
            notes: Vec::new(),
        }
    }

    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.table.row(cells);
    }

    /// Print the report and write `results/<id>.csv`.
    pub fn finish(self) {
        self.print();
        let path = results_dir().join(format!("{}.csv", self.id));
        match self.table.write_to(&path) {
            Ok(()) => println!("  csv: {}", path.display()),
            Err(e) => println!("  csv write failed: {e}"),
        }
        println!();
    }

    /// Print the banner, aligned table, and notes without writing a
    /// CSV — for binaries whose canonical output is a `BENCH_*.json`.
    pub fn print(&self) {
        println!("================================================================");
        println!("{} — {}", self.id, self.title);
        println!("================================================================");
        // Pretty-print the CSV as an aligned table.
        let csv = self.table.to_csv();
        let rows: Vec<Vec<&str>> = csv.lines().map(|l| split_csv(l)).collect();
        if !rows.is_empty() {
            let cols = rows[0].len();
            let mut widths = vec![0usize; cols];
            for row in &rows {
                for (i, cell) in row.iter().enumerate() {
                    widths[i] = widths[i].max(cell.chars().count());
                }
            }
            for (ri, row) in rows.iter().enumerate() {
                let line: Vec<String> = row
                    .iter()
                    .enumerate()
                    .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                    .collect();
                println!("  {}", line.join("  "));
                if ri == 0 {
                    println!(
                        "  {}",
                        widths
                            .iter()
                            .map(|w| "-".repeat(*w))
                            .collect::<Vec<_>>()
                            .join("  ")
                    );
                }
            }
        }
        for note in &self.notes {
            println!("  note: {note}");
        }
    }
}

/// Minimal CSV line splitter for pretty-printing (handles our own
/// quoting only).
fn split_csv(line: &str) -> Vec<&str> {
    // The tables we build never embed commas in quoted cells except
    // notes; a simple split is fine for display purposes.
    line.split(',').collect()
}

/// Format bytes/s as MB/s (decimal, as IOR and the paper's figures do).
pub fn mbps(bytes_per_sec: f64) -> String {
    format!("{:.0}", bytes_per_sec / 1e6)
}

/// Format bytes/s as GiB/s.
pub fn gibps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / (1u64 << 30) as f64)
}

/// Drivers shared by the Fig. 5/6/7 experiment binaries.
pub mod drivers {
    use norns::sim::ops;
    use norns::{ApiSource, JobId, JobSpec, ResourceRef, RpcRequest, TaskSpec};
    use simcore::{Sim, SimTime};
    use simstore::{Cred, Mode};
    use workloads::{register_tiers, BenchWorld};

    pub const MIB16: u64 = 16 << 20;

    fn bench_world(clients: usize, seed: u64) -> Sim<BenchWorld> {
        let tb = cluster::bandwidth_bench(clients);
        let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
        register_tiers(&mut sim);
        let nodes: Vec<usize> = (0..clients + 1).collect();
        ops::register_job(
            &mut sim,
            JobSpec {
                id: JobId(1),
                hosts: nodes,
                limits: vec![("pmdk0".into(), 0)],
                cred: Cred::new(1000, 1000),
            },
        )
        .unwrap();
        sim
    }

    /// Fig. 5: `clients` nodes send `per_client` control requests to
    /// the single target urd (node 0), keeping `window` RPCs in
    /// flight. Returns (throughput req/s, mean latency µs).
    pub fn request_rate(clients: usize, window: usize, per_client: usize, seed: u64) -> (f64, f64) {
        let mut sim = bench_world(clients, seed);
        let total = clients * per_client;
        let mut sent = vec![0usize; clients + 1];
        let mut send_time = std::collections::HashMap::new();
        let token_of = |client: usize, seq: usize| ((client as u64) << 32) | seq as u64;
        #[allow(clippy::needless_range_loop)]
        for c in 1..=clients {
            for _ in 0..window.min(per_client) {
                let tok = token_of(c, sent[c]);
                send_time.insert(tok, sim.now());
                ops::rpc_call(&mut sim, c, 0, RpcRequest::Ping, tok);
                sent[c] += 1;
            }
        }
        let mut latency_sum = 0.0f64;
        let mut seen = 0usize;
        let mut cursor = 0usize;
        let mut last = SimTime::ZERO;
        while seen < total {
            assert!(sim.step(), "sim drained early ({seen}/{total})");
            while cursor < sim.model.reply_times.len() {
                let (tok, at) = sim.model.reply_times[cursor];
                cursor += 1;
                seen += 1;
                last = last.max(at);
                let sent_at = send_time.remove(&tok).expect("reply for unknown token");
                latency_sum += (at - sent_at).as_micros_f64();
                let client = (tok >> 32) as usize;
                if sent[client] < per_client {
                    let tok = token_of(client, sent[client]);
                    send_time.insert(tok, at);
                    // Replies arrive inside step(); scheduling from the
                    // driver at the current instant is fine.
                    ops::rpc_call(&mut sim, client, 0, RpcRequest::Ping, tok);
                    sent[client] += 1;
                }
            }
        }
        let secs = last.as_secs_f64().max(1e-9);
        (total as f64 / secs, latency_sum / total as f64)
    }

    /// Transfer direction for the bandwidth benchmarks.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum XferDir {
        /// Fig. 6: clients read (pull) 16 MiB buffers from the target.
        Read,
        /// Fig. 7: clients write (push) 16 MiB buffers to the target.
        Write,
    }

    /// Fig. 6/7: aggregated bandwidth from `clients` nodes moving 16
    /// MiB buffers against the single target (node 0) with `window`
    /// RPCs in flight each. Returns bytes/second.
    pub fn transfer_rate(
        clients: usize,
        window: usize,
        tasks_per_client: usize,
        dir: XferDir,
        seed: u64,
    ) -> f64 {
        let mut sim = bench_world(clients, seed);
        let cred = Cred::new(1000, 1000);
        // Source buffers.
        {
            let world = &mut sim.model.world;
            let t = world.storage.resolve("pmdk0").unwrap();
            match dir {
                XferDir::Read => {
                    world
                        .storage
                        .ns_mut(t, Some(0))
                        .write_file("buf", MIB16, &cred, Mode(0o644))
                        .unwrap();
                }
                XferDir::Write => {
                    for c in 1..=clients {
                        world
                            .storage
                            .ns_mut(t, Some(c))
                            .write_file("buf", MIB16, &cred, Mode(0o644))
                            .unwrap();
                    }
                }
            }
        }
        let spec_for = |client: usize, slot: usize| -> TaskSpec {
            match dir {
                XferDir::Read => TaskSpec::copy(
                    ResourceRef::remote(0, "pmdk0", "buf"),
                    ResourceRef::local("pmdk0", format!("in/slot{slot}")),
                ),
                XferDir::Write => TaskSpec::copy(
                    ResourceRef::local("pmdk0", "buf"),
                    ResourceRef::remote(0, "pmdk0", format!("out/c{client}_s{slot}")),
                ),
            }
        };
        let mut submitted = vec![0usize; clients + 1];
        #[allow(clippy::needless_range_loop)]
        for c in 1..=clients {
            for w in 0..window.min(tasks_per_client) {
                ops::submit_task(
                    &mut sim,
                    c,
                    JobId(1),
                    ApiSource::Control,
                    spec_for(c, w % window),
                    c as u64,
                )
                .unwrap();
                submitted[c] += 1;
            }
        }
        let total = clients * tasks_per_client;
        let mut done = 0usize;
        let mut cursor = 0usize;
        let mut last = SimTime::ZERO;
        while done < total {
            assert!(sim.step(), "sim drained early ({done}/{total})");
            while cursor < sim.model.completions.len() {
                let c = sim.model.completions[cursor].clone();
                cursor += 1;
                done += 1;
                assert!(c.error.is_none(), "transfer failed: {:?}", c.error);
                last = last.max(c.stats.finished.unwrap());
                let client = c.tag as usize;
                if submitted[client] < tasks_per_client {
                    let slot = submitted[client] % window;
                    ops::submit_task(
                        &mut sim,
                        client,
                        JobId(1),
                        ApiSource::Control,
                        spec_for(client, slot),
                        client as u64,
                    )
                    .unwrap();
                    submitted[client] += 1;
                }
            }
        }
        let bytes = (total as u64 * MIB16) as f64;
        bytes / last.as_secs_f64().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_writes_csv() {
        std::env::set_var(
            "NORNS_RESULTS_DIR",
            std::env::temp_dir()
                .join("norns-bench-test")
                .to_str()
                .unwrap(),
        );
        let mut r = Report::new("test_report", "smoke", ["a", "b"]);
        r.row(["1", "2"]);
        r.note("hello");
        r.finish();
        let path = results_dir().join("test_report.csv");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mbps(1e9), "1000");
        assert_eq!(gibps((1u64 << 30) as f64 * 1.5), "1.50");
    }
}
