//! Fig. 8 — Lustre vs node-local Intel DCPMM on the NEXTGenIO
//! prototype.
//!
//! IOR with 48 processes per node, 512 KiB transfers, file sizes above
//! the 192 GiB node RAM; 25 repetitions during a maintenance window
//! (mild interference). The paper: node-local NVM bandwidth is
//! "significantly higher than Lustre's median bandwidth, even up to an
//! order of magnitude for higher node counts. It also scales better."

use norns_bench::{mbps, reps, Report};
use simcore::metrics::Summary;
use simcore::{Sim, SimDuration, SimTime};
use simstore::IoDir;
use workloads::ior::{self, IorConfig};
use workloads::{register_tiers, BenchWorld};

fn one_run(nodes: usize, tier: &str, dir: IoDir, seed: u64) -> f64 {
    let tb = cluster::nextgenio(nodes);
    let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
    register_tiers(&mut sim);
    cluster::drive_interference(
        &mut sim,
        SimDuration::from_secs(600),
        SimTime::from_secs(36_000),
    );
    let cfg = IorConfig::fig8(tier, dir);
    let all: Vec<usize> = (0..nodes).collect();
    ior::run(&mut sim, &all, &cfg).bandwidth()
}

fn main() {
    let mut report = Report::new(
        "fig8",
        "NEXTGenIO: Lustre vs node-local DCPMM aggregated IOR bandwidth",
        ["nodes", "series", "median_MB/s", "min_MB/s", "max_MB/s"],
    );
    let repetitions = reps(10);
    for &nodes in &[1usize, 2, 4, 8, 16, 24, 32] {
        for (series, tier, dir) in [
            ("read-lustre", "lustre", IoDir::Read),
            ("write-lustre", "lustre", IoDir::Write),
            ("read-dcpmm", "pmdk0", IoDir::Read),
            ("write-dcpmm", "pmdk0", IoDir::Write),
        ] {
            let mut s = Summary::new();
            for rep in 0..repetitions {
                s.record(one_run(
                    nodes,
                    tier,
                    dir,
                    880 + rep as u64 * 17 + nodes as u64,
                ));
            }
            report.row([
                nodes.to_string(),
                series.to_string(),
                mbps(s.median()),
                mbps(s.min()),
                mbps(s.max()),
            ]);
        }
    }
    report.note("paper shape: DCPMM scales ~linearly with nodes; Lustre flattens at the");
    report.note("server side; at 32 nodes DCPMM exceeds Lustre by ~an order of magnitude");
    report.finish();
}
