//! The canonical perf suite: five scenarios, five `BENCH_*.json`
//! files at the repo root.
//!
//! ```text
//! cargo run --release --bin bench_suite            # full run
//! NORNS_QUICK=1 cargo run --release --bin bench_suite   # CI smoke
//! cargo run --release --bin bench_suite -- --check      # validate files only
//! ```
//!
//! Scenarios (one output file each, schema in `norns_bench::json`):
//!
//! 1. **control** — control-plane ops/sec against a live urd daemon
//!    over its AF_UNIX socket: single-client round-trips (ping and
//!    status) plus a concurrent sweep of client counts × wire-v7
//!    pipeline depths. Depth 1 *is* the pre-v7 one-outstanding
//!    discipline, so every run carries its own baseline; the suite
//!    fails unless pipelined depth ≥ 8 beats it at 64+ clients.
//! 2. **local** — chunked same-daemon copy bandwidth (no network).
//! 3. **remote** — loopback push + pull bandwidth across data-plane
//!    window sizes. Window 1 *is* the old stop-and-wait protocol, so
//!    every run carries its own baseline; the suite fails if the
//!    windowed (≥4) data plane is not strictly faster than that
//!    same-run baseline in both directions.
//! 4. **flow** — end-to-end makespan of a two-job `#NORNS` workflow
//!    (remote pull, compute, remote push, dependent local staging)
//!    driven by the norns-flow executor against two live daemons.
//! 5. **replication** — stage-out ACK latency under each wire-v8
//!    durability mode against a live replica peer, plus the time the
//!    background queue takes to drain the replication lag to zero.
//!    `local_plus_one` ACKs on the local leg, so the suite fails
//!    unless it ACKs faster than `synchronous` in the same run.
//!
//! `--check` reloads the five files, validates their schema, and
//! re-asserts the remote, control and replication regression gates
//! from the recorded rows — CI runs the suite in quick mode and then
//! this mode.

use std::fs;
use std::path::Path;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use norns_bench::json::{self, BenchDoc, Json};
use norns_bench::{gibps, quick_mode, Report};
use norns_flow::{FlowConfig, FlowJobState, JobBody, NodeSpec, WorkflowExecutor};
use norns_ipc::{CtlClient, DaemonConfig, PipelinedCtl, UrdDaemon};
use norns_proto::{
    BackendKind, DataspaceDesc, Durability, ResourceDesc, TaskOp, TaskSpec, TaskState,
    DEFAULT_PRIORITY,
};

const MIB: u64 = 1 << 20;
const SOURCE: &str = "bench_suite";

/// Window sizes swept by the remote scenario; 1 is the stop-and-wait
/// baseline, the rest exercise the pipelined data plane.
fn windows() -> &'static [usize] {
    if quick_mode() {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16]
    }
}

fn spawn_node(root: &Path, name: &str, config: DaemonConfig) -> (UrdDaemon, CtlClient) {
    let daemon = UrdDaemon::spawn(config).unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: format!("{name}-ds"),
        kind: BackendKind::PosixFilesystem,
        mount: root.join(name).join("ds").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    (daemon, ctl)
}

fn copy_spec(input: ResourceDesc, output: ResourceDesc) -> TaskSpec {
    TaskSpec {
        op: TaskOp::Copy,
        priority: DEFAULT_PRIORITY,
        input,
        output: Some(output),
        durability: Durability::LocalOnly,
    }
}

fn posix(nsid: &str, path: &str) -> ResourceDesc {
    ResourceDesc::PosixPath {
        nsid: nsid.into(),
        path: path.into(),
    }
}

fn remote(host: &str, nsid: &str, path: &str) -> ResourceDesc {
    ResourceDesc::RemotePath {
        host: host.into(),
        nsid: nsid.into(),
        path: path.into(),
    }
}

/// Submit one transfer and block in the wire's WaitTask until it
/// finishes; returns elapsed seconds.
fn timed_copy(ctl: &mut CtlClient, spec: TaskSpec, size: u64) -> f64 {
    let start = Instant::now();
    let id = ctl.submit(1, spec, None).unwrap();
    let stats = ctl.wait(id, 0).unwrap();
    assert_eq!(stats.state, TaskState::Finished, "transfer failed");
    assert_eq!(stats.bytes_moved, size, "byte count");
    start.elapsed().as_secs_f64()
}

fn patterned(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

// --- scenario 1: control-plane ops/sec ------------------------------

/// Concurrent-client sweep: client counts × wire-v7 pipeline depths.
/// Depth 1 is the in-run baseline (one request outstanding, i.e. the
/// pre-v7 request/response discipline over the same reactor daemon).
fn control_sweep() -> (&'static [usize], &'static [usize]) {
    if quick_mode() {
        (&[1, 64], &[1, 8])
    } else {
        (&[1, 64, 512], &[1, 8, 32])
    }
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

// SAFETY: `RLimit` above is `#[repr(C)]` with two u64 fields, the
// exact layout of glibc's `struct rlimit` on 64-bit Linux, and the
// signatures match the headers.
extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Raise the soft fd limit to the hard limit: both ends of every
/// client connection live in this process.
fn raise_nofile() {
    const RLIMIT_NOFILE: i32 = 7;
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: both calls receive pointers to live, initialised stack
    // `RLimit` values matching the declared parameter types.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) == 0 && lim.cur < lim.max {
            let want = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            let _ = setrlimit(RLIMIT_NOFILE, &want);
        }
    }
}

/// `clients` threads each hold one control connection and drive
/// `per_client` pings with up to `depth` outstanding. Returns
/// (total_ops, ops_per_s); only the ping loop is timed, not the
/// connection setup.
fn measure_concurrent(
    control_path: &Path,
    clients: usize,
    depth: usize,
    per_client: usize,
) -> (u64, f64) {
    let start_line = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let start_line = Arc::clone(&start_line);
        let control_path = control_path.to_path_buf();
        handles.push(std::thread::spawn(move || {
            let mut conn = PipelinedCtl::connect(&control_path).unwrap();
            start_line.wait();
            let mut issued = 0usize;
            let mut done = 0usize;
            while issued < depth.min(per_client) {
                conn.issue_ping().unwrap();
                issued += 1;
            }
            while done < per_client {
                let responses = conn.poll(Duration::from_secs(30)).unwrap();
                for (_tag, resp) in responses {
                    assert!(
                        matches!(resp, norns_proto::Response::Ok),
                        "ping answered {resp:?}"
                    );
                    done += 1;
                    if issued < per_client {
                        conn.issue_ping().unwrap();
                        issued += 1;
                    }
                }
            }
        }));
    }
    start_line.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let total = (clients * per_client) as u64;
    (total, total as f64 / secs)
}

fn measure_ops(ctl: &mut CtlClient, ops: u64, mut f: impl FnMut(&mut CtlClient)) -> f64 {
    let start = Instant::now();
    for _ in 0..ops {
        f(ctl);
    }
    start.elapsed().as_secs_f64()
}

fn bench_control(root: &Path) -> BenchDoc {
    let ops = if quick_mode() { 2_000u64 } else { 20_000 };
    let (daemon, mut ctl) = spawn_node(
        root,
        "ctrl",
        DaemonConfig::in_dir(root.join("ctrl/sockets")),
    );
    let ctl_path = daemon.control_path.clone();

    let mut doc = BenchDoc::new("control");
    let mut report = Report::new(
        "bench_control",
        "control-plane round-trips over AF_UNIX",
        ["op", "ops_per_s", "mean_usec"],
    );
    let timings = [
        ("ping", measure_ops(&mut ctl, ops, |c| c.ping().unwrap())),
        (
            "status",
            measure_ops(&mut ctl, ops, |c| {
                c.status().unwrap();
            }),
        ),
    ];
    for (op, secs) in timings {
        let rate = ops as f64 / secs;
        report.row([
            op.to_string(),
            format!("{rate:.0}"),
            format!("{:.1}", secs * 1e6 / ops as f64),
        ]);
        doc.row(
            SOURCE,
            vec![
                ("scenario", Json::str("control_roundtrip")),
                ("op", Json::str(op)),
                ("ops", Json::num(ops as f64)),
                ("ops_per_s", Json::num(rate)),
                ("mean_usec", Json::num(secs * 1e6 / ops as f64)),
            ],
        );
    }
    doc.note(format!(
        "{ops} sequential round-trips per op against one live daemon, single client"
    ));
    report.print();

    // Concurrent storm: clients × pipeline depth over the same daemon.
    raise_nofile();
    let (client_counts, depths) = control_sweep();
    let total_target = if quick_mode() { 8_000usize } else { 40_000 };
    let mut sweep_report = Report::new(
        "bench_control_concurrent",
        "concurrent clients x wire-v7 pipeline depth (ping ops/sec; depth 1 = baseline)",
        ["clients", "depth", "ops", "ops_per_s"],
    );
    // (clients, depth, ops/s)
    let mut sweep: Vec<(usize, usize, f64)> = Vec::new();
    for &clients in client_counts {
        for &depth in depths {
            let per_client = (total_target / clients).clamp(depth * 2, 20_000);
            let (total, rate) = measure_concurrent(&ctl_path, clients, depth, per_client);
            sweep.push((clients, depth, rate));
            sweep_report.row([
                clients.to_string(),
                depth.to_string(),
                total.to_string(),
                format!("{rate:.0}"),
            ]);
            doc.row(
                SOURCE,
                vec![
                    ("scenario", Json::str("control_concurrent")),
                    ("clients", Json::num(clients as f64)),
                    ("depth", Json::num(depth as f64)),
                    ("ops", Json::num(total as f64)),
                    ("ops_per_s", Json::num(rate)),
                ],
            );
        }
    }
    // Regression gate: under real concurrency (64+ clients) the
    // pipelined discipline (depth >= 8) must beat the one-outstanding
    // baseline measured in the same run.
    for &clients in client_counts.iter().filter(|c| **c >= 64) {
        let rate_at = |d: usize| {
            sweep
                .iter()
                .find(|(c, dd, _)| *c == clients && *dd == d)
                .map(|(_, _, r)| *r)
                .expect("swept combination")
        };
        let baseline = rate_at(1);
        let best_deep = depths
            .iter()
            .filter(|d| **d >= 8)
            .map(|&d| rate_at(d))
            .fold(0.0f64, f64::max);
        assert!(
            best_deep > baseline,
            "at {clients} clients, pipelined depth>=8 ({best_deep:.0} ops/s) did not beat depth 1 ({baseline:.0} ops/s) — pipelining regression"
        );
        sweep_report.note(format!(
            "{clients} clients: pipelined best {best_deep:.0} ops/s vs depth-1 baseline {baseline:.0} ops/s"
        ));
    }
    doc.note("control_concurrent rows storm one daemon with N pipelined clients; the suite fails unless depth>=8 beats the same-run depth-1 baseline at 64+ clients".to_string());
    sweep_report.print();
    doc
}

// --- scenario 2: local chunked copy ---------------------------------

fn bench_local(root: &Path) -> BenchDoc {
    let size = if quick_mode() { 64 * MIB } else { 256 * MIB };
    let reps = if quick_mode() { 2 } else { 3 };
    let (_daemon, mut ctl) = spawn_node(
        root,
        "local",
        DaemonConfig::in_dir(root.join("local/sockets")),
    );
    let payload = patterned(size as usize);
    fs::write(root.join("local/ds/src.dat"), &payload).unwrap();

    let mut best = f64::MAX;
    for _ in 0..reps {
        let _ = fs::remove_file(root.join("local/ds/dst.dat"));
        best = best.min(timed_copy(
            &mut ctl,
            copy_spec(posix("local-ds", "src.dat"), posix("local-ds", "dst.dat")),
            size,
        ));
    }
    assert_eq!(
        fs::read(root.join("local/ds/dst.dat")).unwrap(),
        payload,
        "local copy intact"
    );

    let mut doc = BenchDoc::new("local");
    doc.row(
        SOURCE,
        vec![
            ("scenario", Json::str("local_copy")),
            ("bytes", Json::num(size as f64)),
            ("secs", Json::num(best)),
            (
                "gib_per_s",
                Json::num(size as f64 / best / (1u64 << 30) as f64),
            ),
        ],
    );
    doc.note(format!(
        "same-daemon chunked copy of one {} MiB file, default chunk size, best-of-{reps}",
        size / MIB
    ));
    let mut report = Report::new(
        "bench_local",
        "same-daemon chunked copy (no network)",
        ["bytes_mib", "gib_per_s"],
    );
    report.row([(size / MIB).to_string(), gibps(size as f64 / best)]);
    report.print();
    doc
}

// --- scenario 3: remote push/pull across window sizes ----------------

fn bench_remote(root: &Path) -> BenchDoc {
    let size = if quick_mode() { 64 * MIB } else { 256 * MIB };
    let reps = if quick_mode() { 2 } else { 3 };
    let payload = patterned(size as usize);

    let mut doc = BenchDoc::new("remote");
    let mut report = Report::new(
        "bench_remote",
        "loopback push/pull vs data-plane window size (window 1 = stop-and-wait)",
        ["window", "push_gib_per_s", "pull_gib_per_s"],
    );
    // (window, push GiB/s, pull GiB/s)
    let mut results: Vec<(usize, f64, f64)> = Vec::new();

    for &window in windows() {
        let node_root = root.join(format!("w{window}"));
        let mk = |name: &str| {
            DaemonConfig::in_dir(node_root.join(name).join("sockets"))
                .with_data_addr("127.0.0.1:0")
                .with_remote_window(window)
        };
        let (daemon_a, mut ctl_a) = spawn_node(&node_root, "nodea", mk("nodea"));
        let (daemon_b, mut ctl_b) = spawn_node(&node_root, "nodeb", mk("nodeb"));
        ctl_a
            .register_peer("nodeb", &daemon_b.data_addr().unwrap().to_string())
            .unwrap();
        ctl_b
            .register_peer("nodea", &daemon_a.data_addr().unwrap().to_string())
            .unwrap();
        fs::write(node_root.join("nodea/ds/src.dat"), &payload).unwrap();

        let mut push_secs = f64::MAX;
        for _ in 0..reps {
            let _ = fs::remove_file(node_root.join("nodeb/ds/pushed.dat"));
            push_secs = push_secs.min(timed_copy(
                &mut ctl_a,
                copy_spec(
                    posix("nodea-ds", "src.dat"),
                    remote("nodeb", "nodeb-ds", "pushed.dat"),
                ),
                size,
            ));
        }
        assert_eq!(
            fs::read(node_root.join("nodeb/ds/pushed.dat")).unwrap(),
            payload,
            "pushed bytes intact (window {window})"
        );

        let mut pull_secs = f64::MAX;
        for _ in 0..reps {
            let _ = fs::remove_file(node_root.join("nodea/ds/pulled.dat"));
            pull_secs = pull_secs.min(timed_copy(
                &mut ctl_a,
                copy_spec(
                    remote("nodeb", "nodeb-ds", "pushed.dat"),
                    posix("nodea-ds", "pulled.dat"),
                ),
                size,
            ));
        }
        assert_eq!(
            fs::read(node_root.join("nodea/ds/pulled.dat")).unwrap(),
            payload,
            "pulled bytes intact (window {window})"
        );

        let push_rate = size as f64 / push_secs;
        let pull_rate = size as f64 / pull_secs;
        results.push((window, push_rate, pull_rate));
        report.row([window.to_string(), gibps(push_rate), gibps(pull_rate)]);
        for (dir, secs, rate) in [
            ("push", push_secs, push_rate),
            ("pull", pull_secs, pull_rate),
        ] {
            doc.row(
                SOURCE,
                vec![
                    ("scenario", Json::str(format!("remote_{dir}"))),
                    ("window", Json::num(window as f64)),
                    ("bytes", Json::num(size as f64)),
                    ("secs", Json::num(secs)),
                    ("gib_per_s", Json::num(rate / (1u64 << 30) as f64)),
                ],
            );
        }
        let _ = fs::remove_dir_all(&node_root);
    }

    // Regression gate: the pipelined data plane (any window ≥ 4) must
    // beat the same-run stop-and-wait baseline in both directions.
    let (_, base_push, base_pull) = results[0];
    assert_eq!(results[0].0, 1, "window sweep must start at the baseline");
    let best_push = results
        .iter()
        .filter(|(w, _, _)| *w >= 4)
        .map(|(_, p, _)| *p)
        .fold(0.0f64, f64::max);
    let best_pull = results
        .iter()
        .filter(|(w, _, _)| *w >= 4)
        .map(|(_, _, p)| *p)
        .fold(0.0f64, f64::max);
    assert!(
        best_push > base_push,
        "windowed push ({}) did not beat stop-and-wait ({}) — pipelining regression",
        gibps(best_push),
        gibps(base_push)
    );
    assert!(
        best_pull > base_pull,
        "windowed pull ({}) did not beat stop-and-wait ({}) — pipelining regression",
        gibps(best_pull),
        gibps(base_pull)
    );

    doc.note(format!(
        "one {} MiB file staged over 127.0.0.1 between two live daemons, default chunk size, best-of-{reps}",
        size / MIB
    ));
    doc.note("window=1 is the stop-and-wait baseline; the suite fails unless some window>=4 beats it in both directions".to_string());
    report.note(format!(
        "windowed best: push {} vs baseline {}, pull {} vs baseline {}",
        gibps(best_push),
        gibps(base_push),
        gibps(best_pull),
        gibps(base_pull)
    ));
    report.print();
    doc
}

// --- scenario 4: norns-flow end-to-end makespan ----------------------

fn bench_flow(root: &Path) -> BenchDoc {
    let mesh_bytes = if quick_mode() { 8 * MIB } else { 64 * MIB };
    let reps = if quick_mode() { 1 } else { 2 };
    let mut best = f64::MAX;
    let mut wait_round_trips = 0u64;

    for rep in 0..reps {
        let run_root = root.join(format!("flow{rep}"));
        let mk = |name: &str| {
            DaemonConfig::in_dir(run_root.join(name).join("sockets"))
                .with_chunk_size(MIB)
                .with_data_addr("127.0.0.1:0")
        };
        // nodea owns the PFS-like tier, nodeb the node-local one; the
        // executor cross-registers the peers itself.
        let daemon_a = UrdDaemon::spawn(mk("nodea")).unwrap();
        let daemon_b = UrdDaemon::spawn(mk("nodeb")).unwrap();
        for (daemon, name, nsid, kind) in [
            (&daemon_a, "nodea", "lustre0", BackendKind::Lustre),
            (&daemon_b, "nodeb", "pmdk0", BackendKind::NvmDax),
        ] {
            let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
            ctl.register_dataspace(DataspaceDesc {
                nsid: nsid.into(),
                kind,
                mount: run_root
                    .join(name)
                    .join("ds")
                    .to_string_lossy()
                    .into_owned(),
                quota: 0,
                tracked: false,
            })
            .unwrap();
        }
        let mount_a = run_root.join("nodea/ds");
        let mount_b = run_root.join("nodeb/ds");
        fs::create_dir_all(mount_a.join("case")).unwrap();
        let mesh = patterned(mesh_bytes as usize);
        fs::write(mount_a.join("case/mesh.dat"), &mesh).unwrap();

        let mut exec = WorkflowExecutor::new(FlowConfig::default());
        exec.add_node(NodeSpec {
            name: "nodea".into(),
            control_path: daemon_a.control_path.clone(),
            dataspaces: vec!["lustre0".into()],
        })
        .unwrap();
        exec.add_node(NodeSpec {
            name: "nodeb".into(),
            control_path: daemon_b.control_path.clone(),
            dataspaces: vec!["pmdk0".into()],
        })
        .unwrap();

        let body_mount = mount_b.clone();
        exec.submit(
            "#!/bin/bash\n\
             #SBATCH --job-name=prep\n\
             #SBATCH --nodes=2\n\
             #SBATCH --workflow-start\n\
             #NORNS stage_in lustre0://case/mesh.dat pmdk0://job/mesh.dat node:1\n\
             #NORNS stage_out pmdk0://job/out.dat lustre0://results/prep.dat node:1\n",
            JobBody::Run(Box::new(move || {
                let staged =
                    fs::read(body_mount.join("job/mesh.dat")).map_err(|e| e.to_string())?;
                let mut out = staged;
                out.reverse();
                fs::write(body_mount.join("job/out.dat"), out).map_err(|e| e.to_string())
            })),
        )
        .unwrap();
        let body_mount = mount_a.clone();
        exec.submit(
            "#!/bin/bash\n\
             #SBATCH --job-name=post\n\
             #SBATCH --workflow-end\n\
             #SBATCH --workflow-prior-dependency=prep\n\
             #NORNS stage_in lustre0://results/prep.dat lustre0://post/in.dat\n\
             #NORNS stage_out lustre0://post/final.dat lustre0://results/final.dat\n",
            JobBody::Run(Box::new(move || {
                let data = fs::read(body_mount.join("post/in.dat")).map_err(|e| e.to_string())?;
                let mut fixed = data;
                fixed.reverse();
                fs::write(body_mount.join("post/final.dat"), fixed).map_err(|e| e.to_string())
            })),
        )
        .unwrap();

        let start = Instant::now();
        let outcomes = exec.run().unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert!(
            outcomes
                .iter()
                .all(|(_, state)| *state == FlowJobState::Completed),
            "workflow failed: {outcomes:?}"
        );
        assert_eq!(
            fs::read(mount_a.join("results/final.dat")).unwrap(),
            mesh,
            "end-to-end integrity"
        );
        best = best.min(secs);
        wait_round_trips = exec.wait_round_trips();
        drop(daemon_a);
        drop(daemon_b);
        let _ = fs::remove_dir_all(&run_root);
    }

    let mut doc = BenchDoc::new("flow");
    doc.row(
        SOURCE,
        vec![
            ("scenario", Json::str("flow_makespan")),
            ("jobs", Json::num(2u32)),
            ("mesh_bytes", Json::num(mesh_bytes as f64)),
            ("secs", Json::num(best)),
            ("wait_round_trips", Json::num(wait_round_trips as f64)),
        ],
    );
    doc.note(format!(
        "two-job #NORNS workflow (remote pull, compute, remote push, dependent local staging), {} MiB mesh, best-of-{reps}",
        mesh_bytes / MIB
    ));
    let mut report = Report::new(
        "bench_flow",
        "norns-flow two-job workflow makespan",
        ["mesh_mib", "makespan_s", "wait_round_trips"],
    );
    report.row([
        (mesh_bytes / MIB).to_string(),
        format!("{best:.3}"),
        wait_round_trips.to_string(),
    ]);
    report.print();
    doc
}

// --- scenario 5: replication ACK latency + lag drain -----------------

/// Poll the origin's status until the replication-lag counters reach
/// zero; returns the elapsed seconds.
fn drain_lag(ctl: &mut CtlClient) -> f64 {
    let start = Instant::now();
    loop {
        let status = ctl.status().unwrap();
        if status.pending_replicas == 0 && status.pending_replica_bytes == 0 {
            return start.elapsed().as_secs_f64();
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "replication lag stuck at {} replicas",
            status.pending_replicas
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn bench_replication(root: &Path) -> BenchDoc {
    let size = if quick_mode() { 4 * MIB } else { 32 * MIB };
    let reps = if quick_mode() { 3 } else { 5 };
    // Origin + one replica peer, both backing the cluster-wide `bb`
    // dataspace with their own mounts (the naming convention the
    // replication queue pushes along).
    let spawn = |name: &str| {
        let daemon = UrdDaemon::spawn(
            DaemonConfig::in_dir(root.join("repl").join(name).join("sockets"))
                .with_data_addr("127.0.0.1:0"),
        )
        .unwrap();
        let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
        ctl.register_dataspace(DataspaceDesc {
            nsid: "bb".into(),
            kind: BackendKind::PosixFilesystem,
            mount: root
                .join("repl")
                .join(name)
                .join("ds")
                .to_string_lossy()
                .into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();
        (daemon, ctl)
    };
    let (_origin, mut ctl) = spawn("origin");
    let (peer, _peer_ctl) = spawn("peer");
    ctl.register_peer("peer0", &peer.data_addr().unwrap().to_string())
        .unwrap();
    let payload = patterned(size as usize);
    fs::write(root.join("repl/origin/ds/src.dat"), &payload).unwrap();

    let mut doc = BenchDoc::new("replication");
    let mut report = Report::new(
        "bench_replication",
        "stage-out ACK latency per durability mode + lag-drain time (one replica peer)",
        ["mode", "ack_msec", "drain_msec"],
    );
    // (mode, best ack secs)
    let mut acks: Vec<(&str, f64)> = Vec::new();
    for (mode_name, mode) in [
        ("local_only", Durability::LocalOnly),
        ("local_plus_one", Durability::LocalPlusOne),
        ("synchronous", Durability::Synchronous),
    ] {
        let mut ack = f64::MAX;
        let mut drain = f64::MAX;
        for rep in 0..reps {
            let spec = copy_spec(
                posix("bb", "src.dat"),
                posix("bb", &format!("out/{mode_name}/{rep}.dat")),
            )
            .with_durability(mode);
            let start = Instant::now();
            let id = ctl.submit(1, spec, None).unwrap();
            let stats = ctl.wait(id, 0).unwrap();
            let ack_secs = start.elapsed().as_secs_f64();
            assert_eq!(stats.state, TaskState::Finished, "stage-out failed");
            ack = ack.min(ack_secs);
            // For `local_plus_one` this is the window between the
            // early ACK and the background copy landing; the other
            // modes quiesce (near-)instantly by construction.
            drain = drain.min(drain_lag(&mut ctl));
        }
        acks.push((mode_name, ack));
        report.row([
            mode_name.to_string(),
            format!("{:.2}", ack * 1e3),
            format!("{:.2}", drain * 1e3),
        ]);
        doc.row(
            SOURCE,
            vec![
                ("scenario", Json::str("replication_ack")),
                ("mode", Json::str(mode_name)),
                ("bytes", Json::num(size as f64)),
                ("ack_usec", Json::num(ack * 1e6)),
                ("drain_usec", Json::num(drain * 1e6)),
            ],
        );
    }
    // Every durable mode actually landed its copy on the peer.
    for mode_name in ["local_plus_one", "synchronous"] {
        assert_eq!(
            fs::read(root.join(format!("repl/peer/ds/out/{mode_name}/0.dat"))).unwrap(),
            payload,
            "{mode_name} replica intact"
        );
    }
    assert!(
        !root.join("repl/peer/ds/out/local_only").exists(),
        "local_only must not replicate"
    );
    // Regression gate: the whole point of the early ACK is that
    // `local_plus_one` returns before the remote copy lands, so it
    // must beat `synchronous` measured in the same run.
    let rate_of = |name: &str| acks.iter().find(|(m, _)| *m == name).unwrap().1;
    assert!(
        rate_of("local_plus_one") < rate_of("synchronous"),
        "local_plus_one ACK ({:.2} ms) did not beat synchronous ({:.2} ms) — early-ACK regression",
        rate_of("local_plus_one") * 1e3,
        rate_of("synchronous") * 1e3
    );
    doc.note(format!(
        "one {} MiB stage-out per mode against a live loopback replica peer, best-of-{reps}; \
         drain_usec is the ACK-to-zero-lag window",
        size / MIB
    ));
    doc.note(
        "the suite fails unless local_plus_one ACKs faster than synchronous in the same run"
            .to_string(),
    );
    report.print();
    doc
}

// --- `--check`: validate the emitted files ---------------------------

/// Reload all five documents, validate the schema, and re-assert the
/// remote, control and replication regression gates from the recorded
/// rows.
fn check() -> Result<(), String> {
    for bench in ["control", "local", "remote", "flow", "replication"] {
        let doc = json::load(bench)?;
        let rows = doc.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
        if rows.is_empty() {
            return Err(format!("BENCH_{bench}.json has no rows"));
        }
        println!("BENCH_{bench}.json: ok ({} rows)", rows.len());
    }

    // The remote doc must show the pipelined data plane beating its
    // same-run stop-and-wait baseline in both directions.
    let remote = json::load("remote")?;
    let rows = remote.get("rows").and_then(Json::as_arr).unwrap();
    for dir in ["push", "pull"] {
        let scenario = format!("remote_{dir}");
        let rate = |row: &Json| row.get("gib_per_s").and_then(Json::as_f64);
        let suite_rows: Vec<&Json> = rows
            .iter()
            .filter(|r| {
                r.get("source").and_then(Json::as_str) == Some(SOURCE)
                    && r.get("scenario").and_then(Json::as_str) == Some(scenario.as_str())
            })
            .collect();
        let window_of = |row: &Json| row.get("window").and_then(Json::as_f64);
        let baseline = suite_rows
            .iter()
            .find(|r| window_of(r) == Some(1.0))
            .and_then(|r| rate(r))
            .ok_or(format!("no window=1 {scenario} baseline row"))?;
        let best_windowed = suite_rows
            .iter()
            .filter(|r| window_of(r).map(|w| w >= 4.0).unwrap_or(false))
            .filter_map(|r| rate(r))
            .fold(f64::NEG_INFINITY, f64::max);
        if !best_windowed.is_finite() {
            return Err(format!("no window>=4 {scenario} rows"));
        }
        if best_windowed <= baseline {
            return Err(format!(
                "{scenario}: windowed {best_windowed:.3} GiB/s <= stop-and-wait {baseline:.3} GiB/s"
            ));
        }
        println!(
            "BENCH_remote.json: {scenario} windowed {best_windowed:.3} > baseline {baseline:.3} GiB/s"
        );
    }

    // The control doc must show wire-v7 pipelining beating the
    // one-outstanding baseline under concurrency (64+ clients).
    let control = json::load("control")?;
    let rows = control.get("rows").and_then(Json::as_arr).unwrap();
    let concurrent: Vec<&Json> = rows
        .iter()
        .filter(|r| {
            r.get("source").and_then(Json::as_str) == Some(SOURCE)
                && r.get("scenario").and_then(Json::as_str) == Some("control_concurrent")
        })
        .collect();
    if concurrent.is_empty() {
        return Err("BENCH_control.json has no control_concurrent rows".into());
    }
    let field = |row: &Json, key: &str| row.get(key).and_then(Json::as_f64);
    let mut client_counts: Vec<u64> = concurrent
        .iter()
        .filter_map(|r| field(r, "clients"))
        .map(|c| c as u64)
        .filter(|c| *c >= 64)
        .collect();
    client_counts.sort_unstable();
    client_counts.dedup();
    if client_counts.is_empty() {
        return Err("no control_concurrent rows with clients >= 64".into());
    }
    for clients in client_counts {
        let at = |pred: &dyn Fn(f64) -> bool| {
            concurrent
                .iter()
                .filter(|r| field(r, "clients") == Some(clients as f64))
                .filter(|r| field(r, "depth").map(pred).unwrap_or(false))
                .filter_map(|r| field(r, "ops_per_s"))
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let baseline = at(&|d| d == 1.0);
        let best_deep = at(&|d| d >= 8.0);
        if !baseline.is_finite() {
            return Err(format!("no depth=1 baseline row at {clients} clients"));
        }
        if !best_deep.is_finite() {
            return Err(format!("no depth>=8 rows at {clients} clients"));
        }
        if best_deep <= baseline {
            return Err(format!(
                "control_concurrent at {clients} clients: pipelined {best_deep:.0} ops/s <= depth-1 {baseline:.0} ops/s"
            ));
        }
        println!(
            "BENCH_control.json: {clients} clients pipelined {best_deep:.0} > depth-1 {baseline:.0} ops/s"
        );
    }

    // The replication doc must carry an ACK row per durability mode
    // and show the early ACK beating the synchronous one.
    let replication = json::load("replication")?;
    let rows = replication.get("rows").and_then(Json::as_arr).unwrap();
    let ack_of = |mode: &str| {
        rows.iter()
            .filter(|r| {
                r.get("source").and_then(Json::as_str) == Some(SOURCE)
                    && r.get("scenario").and_then(Json::as_str) == Some("replication_ack")
                    && r.get("mode").and_then(Json::as_str) == Some(mode)
            })
            .filter_map(|r| r.get("ack_usec").and_then(Json::as_f64))
            .fold(f64::INFINITY, f64::min)
    };
    for mode in ["local_only", "local_plus_one", "synchronous"] {
        if !ack_of(mode).is_finite() {
            return Err(format!("no replication_ack row for mode {mode}"));
        }
    }
    let (plus_one, synchronous) = (ack_of("local_plus_one"), ack_of("synchronous"));
    if plus_one >= synchronous {
        return Err(format!(
            "replication_ack: local_plus_one {plus_one:.0} usec >= synchronous {synchronous:.0} usec — early-ACK regression"
        ));
    }
    println!(
        "BENCH_replication.json: local_plus_one ACK {plus_one:.0} < synchronous {synchronous:.0} usec"
    );
    Ok(())
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        if let Err(e) = check() {
            eprintln!("bench check failed: {e}");
            std::process::exit(1);
        }
        println!("bench check passed");
        return;
    }

    let root = std::env::temp_dir().join(format!("norns-bench-suite-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();

    for doc in [
        bench_control(&root),
        bench_local(&root),
        bench_remote(&root),
        bench_flow(&root),
        bench_replication(&root),
    ] {
        // merge_into so rows from other binaries (ablation_remote in
        // BENCH_remote.json) survive a suite refresh.
        let path = doc.merge_into().unwrap();
        println!("  json: {}", path.display());
    }
    println!();

    let _ = fs::remove_dir_all(&root);

    if let Err(e) = check() {
        eprintln!("bench check failed after run: {e}");
        std::process::exit(1);
    }
}
