//! Table V — OpenFOAM workflow using Lustre vs NVMs + data staging.
//!
//! Aircraft-surface transition simulation, ≈43 M mesh points,
//! decomposed for 768 ranks over 16 nodes, 20 solver timesteps,
//! 160 GB of output with a directory per process. Paper:
//!
//! | phase         | Lustre | NVMs  |
//! |---------------|--------|-------|
//! | decomposition | 1191 s | 1105 s|
//! | data-staging  |   –    |  32 s |
//! | solver        |  123 s |  66 s |

use norns::sim::ops;
use norns::{ApiSource, JobId, JobSpec, ResourceRef, TaskSpec};
use norns_bench::Report;
use simcore::{Sim, SimDuration, SimTime};
use simstore::Cred;
use workloads::openfoam::{decompose, solver, OpenFoamConfig};
use workloads::{register_tiers, BenchWorld};

fn world(nodes: usize, seed: u64) -> Sim<BenchWorld> {
    let tb = cluster::nextgenio(nodes);
    let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
    register_tiers(&mut sim);
    cluster::drive_interference(
        &mut sim,
        SimDuration::from_secs(600),
        SimTime::from_secs(36_000),
    );
    ops::register_job(
        &mut sim,
        JobSpec {
            id: JobId(1),
            hosts: (0..nodes).collect(),
            limits: vec![("pmdk0".into(), 0), ("lustre".into(), 0)],
            cred: Cred::new(1000, 1000),
        },
    )
    .unwrap();
    sim
}

fn main() {
    let cfg = OpenFoamConfig::default();
    let solver_nodes: Vec<usize> = (0..cfg.solver_nodes).collect();

    // ---- Lustre end to end ----
    let mut sim = world(cfg.solver_nodes, 41);
    let dec_lustre = decompose(&mut sim, 0, "lustre", "case", &cfg)
        .runtime()
        .as_secs_f64();
    let sol_lustre = solver(&mut sim, &solver_nodes, "lustre", &cfg)
        .runtime()
        .as_secs_f64();

    // ---- NVM + staging ----
    let mut sim = world(cfg.solver_nodes, 42);
    let dec_nvm = decompose(&mut sim, 0, "pmdk0", "case", &cfg)
        .runtime()
        .as_secs_f64();
    // Redistribute the decomposed case from node 0 to the other
    // solver nodes (node-to-node NORNS transfers, the paper's 32 s
    // step). The transfers are pushed by the decompose node's urd,
    // whose worker serializes the mmap'd case directories — matching
    // the paper's single sequential copy stream.
    sim.model.world.urds[0].queue = norns::TaskQueue::fcfs(1);
    let staging_start = sim.now();
    let mut outstanding = 0;
    for r in 0..cfg.ranks {
        let target = r % cfg.solver_nodes;
        if target == 0 {
            continue; // already local to the decompose node
        }
        let spec = TaskSpec::copy(
            ResourceRef::local("pmdk0", format!("case/processor{r}")),
            ResourceRef::remote(target, "pmdk0", format!("case/processor{r}")),
        );
        ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, r as u64).unwrap();
        outstanding += 1;
    }
    let _ = workloads::wait_task_completions(&mut sim, outstanding);
    let staging = (sim.now() - staging_start).as_secs_f64();
    let sol_nvm = solver(&mut sim, &solver_nodes, "pmdk0", &cfg)
        .runtime()
        .as_secs_f64();

    let mut report = Report::new(
        "table5",
        "OpenFOAM workflow: Lustre vs NVMs + data staging",
        [
            "phase",
            "paper_lustre_s",
            "measured_lustre_s",
            "paper_nvm_s",
            "measured_nvm_s",
        ],
    );
    report.row([
        "decomposition".to_string(),
        "1191".to_string(),
        format!("{dec_lustre:.0}"),
        "1105".to_string(),
        format!("{dec_nvm:.0}"),
    ]);
    report.row([
        "data-staging".to_string(),
        "-".to_string(),
        "-".to_string(),
        "32".to_string(),
        format!("{staging:.0}"),
    ]);
    report.row([
        "solver".to_string(),
        "123".to_string(),
        format!("{sol_lustre:.0}"),
        "66".to_string(),
        format!("{sol_nvm:.0}"),
    ]);
    report.note(format!(
        "solver speedup: paper 1.86x, measured {:.2}x; staging cost amortizes over longer runs",
        sol_lustre / sol_nvm
    ));
    report.finish();
}
