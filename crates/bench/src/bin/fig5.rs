//! Fig. 5 — NORNS throughput and latency serving *remote* requests.
//!
//! Up to 32 compute nodes send 50×10³ requests to a single target
//! NORNS instance over `ofi+tcp`, sequentially (1 RPC in flight) and
//! in groups of 16. Paper: throughput scales to ≈45,000 remote
//! requests/s, worst-case latency ≈900 µs.

use norns_bench::{drivers, quick_mode, Report};

fn main() {
    let per_client = if quick_mode() { 2_000 } else { 20_000 };
    let mut report = Report::new(
        "fig5",
        "Remote request throughput/latency against one urd (ofi+tcp)",
        [
            "clients",
            "rpcs_in_flight",
            "throughput_req_s",
            "mean_latency_us",
        ],
    );
    for &clients in &[1usize, 2, 4, 8, 16, 32] {
        for &window in &[1usize, 16] {
            let (rps, lat) = drivers::request_rate(clients, window, per_client, 77);
            report.row([
                clients.to_string(),
                window.to_string(),
                format!("{rps:.0}"),
                format!("{lat:.0}"),
            ]);
        }
    }
    report.note("paper: ≈45k req/s peak; ≈900 µs worst-case latency");
    report.note(format!(
        "requests per client: {per_client} (paper: 50k; rates are steady-state)"
    ));
    report.finish();
}
