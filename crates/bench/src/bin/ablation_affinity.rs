//! Ablation — data-affinity node selection in the extended scheduler.
//!
//! The paper's headline mechanism: "keep persistent data on node-local
//! storage to feed upcoming phases or move data directly between
//! compute nodes". Two short filler jobs steer the producer onto node
//! 2; by the time the consumer is schedulable every node is free, so a
//! plain first-fit scheduler places it on node 0 and must pull the
//! persisted 50 GB across the fabric, while the data-affinity
//! scheduler reuses node 2 and stages nothing.

use norns_bench::Report;
use simcore::{Sim, SimDuration, SimTime};
use simstore::{Cred, Mode};
use slurm_sim::{submit_script, JobBody, SchedConfig};
use workloads::{register_tiers, SlurmWorld};

const GB: u64 = 1_000_000_000;

fn run(affinity: bool) -> (usize, usize, f64, f64) {
    let tb = cluster::nextgenio_quiet(4);
    let config = SchedConfig {
        data_affinity: affinity,
        ..Default::default()
    };
    let mut sim = Sim::new(SlurmWorld::new(tb.world, config), 23);
    register_tiers(&mut sim);
    let cred = Cred::new(1000, 1000);

    // Fillers hold nodes 0 and 1 until t=31 s.
    for i in 0..2 {
        submit_script(
            &mut sim,
            &format!("#SBATCH --job-name=filler{i}\n#SBATCH --nodes=1\n"),
            cred.clone(),
            JobBody::Fixed(SimDuration::from_secs(31)),
        )
        .unwrap();
    }
    // Producer lands on node 2 and finishes after the fillers.
    let producer = submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://wf alice\n",
        cred.clone(),
        JobBody::Fixed(SimDuration::from_secs(40)),
    )
    .unwrap();
    sim.run_until(SimTime::from_secs(1));
    let pnode = sim.model.ctld.job(producer).unwrap().nodes[0];
    {
        let t = sim.model.world.storage.resolve("pmdk0").unwrap();
        sim.model
            .world
            .storage
            .ns_mut(t, Some(pnode))
            .write_file("wf/data.bin", 50 * GB, &cred, Mode(0o644))
            .unwrap();
    }
    let consumer = submit_script(
        &mut sim,
        "#SBATCH --job-name=consumer\n#SBATCH --nodes=1\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=producer\n\
         #NORNS stage_in pmdk0://wf pmdk0://wf all\n",
        cred,
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    sim.run_until(SimTime::from_secs(600));
    let cjob = sim.model.ctld.job(consumer).unwrap();
    let cnode = cjob.nodes.first().copied().unwrap_or(usize::MAX);
    let stage = cjob
        .stage_in_time()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    let turnaround = cjob
        .turnaround()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    (pnode, cnode, stage, turnaround)
}

fn main() {
    let mut report = Report::new(
        "ablation_affinity",
        "Data-affinity node selection: consumer stage-in cost (50 GB persisted)",
        [
            "data_affinity",
            "producer_node",
            "consumer_node",
            "stage_in_s",
            "turnaround_s",
        ],
    );
    for affinity in [true, false] {
        let (pnode, cnode, stage, turn) = run(affinity);
        report.row([
            affinity.to_string(),
            pnode.to_string(),
            cnode.to_string(),
            format!("{stage:.1}"),
            format!("{turn:.1}"),
        ]);
    }
    report.note("with affinity the consumer reuses the producer's node and stages nothing;");
    report.note("without it, 50 GB crosses the fabric at the ofi+tcp session cap (~27 s)");
    report.finish();
}
