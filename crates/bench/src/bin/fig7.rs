//! Fig. 7 — NORNS aggregated bandwidth for remote data *writes*.
//!
//! The push-direction counterpart of Fig. 6. Paper: linear scaling
//! peaking at ≈59.7 GiB/s; per-client saturation ≈1.8 GiB/s.

use norns_bench::{drivers, gibps, quick_mode, Report};

fn main() {
    let tasks = if quick_mode() { 20 } else { 80 };
    let mut report = Report::new(
        "fig7",
        "Aggregated bandwidth, remote writes to one target (ofi+tcp)",
        [
            "clients",
            "rpcs_in_flight",
            "aggregate_GiB_s",
            "per_client_GiB_s",
        ],
    );
    for &clients in &[1usize, 2, 4, 8, 16, 32] {
        for &window in &[1usize, 2, 4, 8, 16] {
            let bw = drivers::transfer_rate(clients, window, tasks, drivers::XferDir::Write, 7);
            report.row([
                clients.to_string(),
                window.to_string(),
                gibps(bw),
                gibps(bw / clients as f64),
            ]);
        }
    }
    report.note("paper: linear scaling to ≈59.7 GiB/s at 32 clients;");
    report.note("per-client ≈1.8 GiB/s, flat in the number of in-flight RPCs");
    report.finish();
}
