//! Fig. 1b — I/O performance variability on MareNostrum IV.
//!
//! IOR, file per core (24 of 48 cores used), file sizes large enough
//! to defeat the page cache, 25 repetitions co-located with the normal
//! production workload. The paper observes read/write bandwidths
//! "often diverging by orders of magnitude".

use norns_bench::{mbps, reps, Report};
use simcore::metrics::Summary;
use simcore::{Sim, SimDuration, SimTime};
use simstore::IoDir;
use workloads::ior::{self, IorConfig};
use workloads::{register_tiers, BenchWorld};

fn one_run(nodes: usize, dir: IoDir, seed: u64) -> f64 {
    let tb = cluster::marenostrum4(nodes);
    let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
    register_tiers(&mut sim);
    cluster::drive_interference(
        &mut sim,
        SimDuration::from_secs(600),
        SimTime::from_secs(36_000),
    );
    let cfg = IorConfig {
        tier: "gpfs".into(),
        procs_per_node: 24,
        // >96 GiB of RAM per node / 24 procs → 4.5 GiB per file.
        bytes_per_proc: (45u64 << 30) / 10,
        dir,
        stripe: None,
    };
    let all: Vec<usize> = (0..nodes).collect();
    ior::run(&mut sim, &all, &cfg).bandwidth()
}

fn main() {
    let mut report = Report::new(
        "fig1b",
        "MareNostrum IV IOR bandwidth under production load (GPFS)",
        [
            "nodes",
            "op",
            "min_MB/s",
            "median_MB/s",
            "max_MB/s",
            "spread",
        ],
    );
    let repetitions = reps(25);
    for &nodes in &[1usize, 2, 4, 8, 16, 32] {
        for (label, dir) in [("read", IoDir::Read), ("write", IoDir::Write)] {
            let mut s = Summary::new();
            for rep in 0..repetitions {
                s.record(one_run(
                    nodes,
                    dir,
                    7000 + rep as u64 * 31 + nodes as u64 * 7,
                ));
            }
            report.row([
                nodes.to_string(),
                label.to_string(),
                mbps(s.min()),
                mbps(s.median()),
                mbps(s.max()),
                format!("{:.0}x", s.max() / s.min()),
            ]);
        }
    }
    report.note("paper: measured bandwidths often diverge by orders of magnitude");
    report.finish();
}
