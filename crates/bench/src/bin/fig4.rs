//! Fig. 4 — NORNS throughput and latency serving *local* requests.
//!
//! This experiment runs against the **real** urd daemon
//! (`norns-ipc`): up to 32 concurrent client threads, each submitting
//! 50×10³ consecutive requests over the local `AF_UNIX` socket. The
//! measured latency covers exactly what the paper measures: "the time
//! taken to process the request, create a task descriptor, add it to
//! the task queue, and respond to the client". Paper: ≈700k req/s
//! aggregate, ≤50 µs latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use norns_bench::{quick_mode, Report};
use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
use norns_proto::{
    BackendKind, DaemonCommand, DataspaceDesc, Durability, ResourceDesc, TaskOp, TaskSpec,
    DEFAULT_PRIORITY,
};

fn main() {
    let per_process: u64 = if quick_mode() { 5_000 } else { 50_000 };
    let root = std::env::temp_dir().join(format!("norns-fig4-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let daemon =
        UrdDaemon::spawn(DaemonConfig::in_dir(root.join("sockets"))).expect("daemon spawn");
    {
        let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
        ctl.register_dataspace(DataspaceDesc {
            nsid: "tmp0".into(),
            kind: BackendKind::Tmpfs,
            mount: root.join("tmp0").to_string_lossy().into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();
    }

    let mut report = Report::new(
        "fig4",
        "Local request throughput/latency against the real urd daemon",
        [
            "processes",
            "throughput_req_s",
            "mean_latency_us",
            "p99_latency_us",
        ],
    );

    for &procs in &[1usize, 2, 4, 8, 16, 32] {
        // Keep the completion table small between sweeps.
        {
            let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
            ctl.send_command(DaemonCommand::ClearCompletions).unwrap();
        }
        let total_latency_ns = Arc::new(AtomicU64::new(0));
        let ctl_path = daemon.control_path.clone();
        let start = Instant::now();
        let handles: Vec<_> = (0..procs)
            .map(|_| {
                let path = ctl_path.clone();
                let total_latency_ns = Arc::clone(&total_latency_ns);
                std::thread::spawn(move || {
                    let mut client = CtlClient::connect(&path).expect("client connect");
                    let mut latencies = Vec::with_capacity(per_process as usize);
                    // Task submissions, as in the paper: each request
                    // creates a descriptor and enqueues it. The task
                    // itself is a cheap removal of a missing path.
                    let spec = TaskSpec {
                        op: TaskOp::Remove,
                        priority: DEFAULT_PRIORITY,
                        input: ResourceDesc::PosixPath {
                            nsid: "tmp0".into(),
                            path: "nonexistent".into(),
                        },
                        output: None,
                        durability: Durability::LocalOnly,
                    };
                    for _ in 0..per_process {
                        let t0 = Instant::now();
                        // The bounded queue may push back under this
                        // hammering load: EAGAIN-style retry.
                        loop {
                            match client.submit(0, spec.clone(), None) {
                                Ok(_) => break,
                                Err(norns_ipc::ClientError::Remote {
                                    code: norns_proto::ErrorCode::Busy,
                                    ..
                                }) => std::thread::yield_now(),
                                Err(e) => panic!("submit: {e}"),
                            }
                        }
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    }
                    let sum: u64 = latencies.iter().sum();
                    total_latency_ns.fetch_add(sum, Ordering::Relaxed);
                    latencies.sort_unstable();
                    latencies[(latencies.len() as f64 * 0.99) as usize]
                })
            })
            .collect();
        let mut p99s = Vec::new();
        for h in handles {
            p99s.push(h.join().expect("client thread"));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let total = per_process * procs as u64;
        let throughput = total as f64 / elapsed;
        let mean_us = total_latency_ns.load(Ordering::Relaxed) as f64 / total as f64 / 1e3;
        let p99_us = *p99s.iter().max().unwrap() as f64 / 1e3;
        report.row([
            procs.to_string(),
            format!("{throughput:.0}"),
            format!("{mean_us:.1}"),
            format!("{p99_us:.1}"),
        ]);
    }
    report.note("paper: ≈700k req/s aggregate, ≤50 µs request latency (C++/epoll on");
    report.note("dual Xeon 8260M); absolute numbers depend on this machine");
    report.note(format!("requests per process: {per_process}"));
    report.finish();
}
