//! Ablation — remote staging: loopback TCP bandwidth vs chunk size,
//! both directions.
//!
//! The paper's remote scenarios (Table II: `local path ⇒ remote
//! path` and the reverse) move bytes between urd daemons across
//! nodes. This binary stands up **two real daemons** on one host,
//! wires their peer registries over 127.0.0.1, and stages one file
//! both ways (push and pull) for several chunk sizes, against a local
//! same-daemon copy as the no-network baseline.
//!
//! Besides bandwidth it asserts the remote data plane's contract:
//! byte-exact content after each transfer and live `query()` progress
//! while the wire is busy.

use std::fs;
use std::time::Instant;

use norns_bench::json::{BenchDoc, Json};
use norns_bench::{gibps, quick_mode, Report};
use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
use norns_proto::{
    BackendKind, DataspaceDesc, Durability, ResourceDesc, TaskOp, TaskSpec, TaskState,
    DEFAULT_PRIORITY,
};

const MIB: u64 = 1 << 20;

fn spawn_node(root: &std::path::Path, name: &str, chunk_size: u64) -> (UrdDaemon, CtlClient) {
    let daemon = UrdDaemon::spawn(
        DaemonConfig::in_dir(root.join(name).join("sockets"))
            .with_chunk_size(chunk_size)
            .with_data_addr("127.0.0.1:0"),
    )
    .unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: format!("{name}-ds"),
        kind: BackendKind::PosixFilesystem,
        mount: root.join(name).join("ds").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    (daemon, ctl)
}

fn copy_spec(input: ResourceDesc, output: ResourceDesc) -> TaskSpec {
    TaskSpec {
        op: TaskOp::Copy,
        priority: DEFAULT_PRIORITY,
        input,
        output: Some(output),
        durability: Durability::LocalOnly,
    }
}

fn posix(nsid: &str, path: &str) -> ResourceDesc {
    ResourceDesc::PosixPath {
        nsid: nsid.into(),
        path: path.into(),
    }
}

fn remote(host: &str, nsid: &str, path: &str) -> ResourceDesc {
    ResourceDesc::RemotePath {
        host: host.into(),
        nsid: nsid.into(),
        path: path.into(),
    }
}

/// Run one staged transfer to completion, polling progress; returns
/// (seconds, saw partial progress).
fn run(ctl: &mut CtlClient, spec: TaskSpec, size: u64) -> (f64, bool) {
    let start = Instant::now();
    let id = ctl.submit(1, spec, None).unwrap();
    let mut partial = false;
    loop {
        let stats = ctl.query(id).unwrap();
        if stats.state.is_terminal() {
            assert_eq!(stats.state, TaskState::Finished, "transfer failed");
            assert_eq!(stats.bytes_moved, size, "byte count");
            break;
        }
        if stats.bytes_moved > 0 && stats.bytes_moved < size {
            partial = true;
        }
        std::thread::yield_now();
    }
    (start.elapsed().as_secs_f64(), partial)
}

fn main() {
    let root = std::env::temp_dir().join(format!("norns-ablation-remote-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();

    let size_mib: u64 = if quick_mode() { 64 } else { 256 };
    let size = size_mib * MIB;
    let reps = if quick_mode() { 2 } else { 3 };
    let payload: Vec<u8> = (0..size as usize).map(|i| (i % 251) as u8).collect();

    let mut report = Report::new(
        "ablation_remote",
        "remote staging: loopback TCP bandwidth vs chunk size, push and pull",
        [
            "direction",
            "chunk_mib",
            "gib_per_s",
            "partial_progress_seen",
        ],
    );
    let mut doc = BenchDoc::new("remote");

    let mut any_partial = false;
    for &chunk_mib in &[1u64, 4, 8] {
        let (daemon_a, mut ctl_a) = spawn_node(&root, "nodea", chunk_mib * MIB);
        let (daemon_b, mut ctl_b) = spawn_node(&root, "nodeb", chunk_mib * MIB);
        ctl_a
            .register_peer("nodeb", &daemon_b.data_addr().unwrap().to_string())
            .unwrap();
        ctl_b
            .register_peer("nodea", &daemon_a.data_addr().unwrap().to_string())
            .unwrap();
        fs::write(root.join("nodea/ds/src.dat"), &payload).unwrap();

        // Local baseline: same file, same daemon, no network.
        let mut local_secs = f64::MAX;
        for _ in 0..reps {
            let _ = fs::remove_file(root.join("nodea/ds/local.dat"));
            let (secs, _) = run(
                &mut ctl_a,
                copy_spec(posix("nodea-ds", "src.dat"), posix("nodea-ds", "local.dat")),
                size,
            );
            local_secs = local_secs.min(secs);
        }

        // Push A → B.
        let mut push_secs = f64::MAX;
        for _ in 0..reps {
            let _ = fs::remove_file(root.join("nodeb/ds/pushed.dat"));
            let (secs, partial) = run(
                &mut ctl_a,
                copy_spec(
                    posix("nodea-ds", "src.dat"),
                    remote("nodeb", "nodeb-ds", "pushed.dat"),
                ),
                size,
            );
            push_secs = push_secs.min(secs);
            any_partial |= partial;
        }
        assert_eq!(
            fs::read(root.join("nodeb/ds/pushed.dat")).unwrap(),
            payload,
            "pushed bytes intact (chunk {chunk_mib} MiB)"
        );

        // Pull B → A (of the file just pushed).
        let mut pull_secs = f64::MAX;
        for _ in 0..reps {
            let _ = fs::remove_file(root.join("nodea/ds/pulled.dat"));
            let (secs, partial) = run(
                &mut ctl_a,
                copy_spec(
                    remote("nodeb", "nodeb-ds", "pushed.dat"),
                    posix("nodea-ds", "pulled.dat"),
                ),
                size,
            );
            pull_secs = pull_secs.min(secs);
            any_partial |= partial;
        }
        assert_eq!(
            fs::read(root.join("nodea/ds/pulled.dat")).unwrap(),
            payload,
            "pulled bytes intact (chunk {chunk_mib} MiB)"
        );

        for (direction, secs) in [
            ("local", local_secs),
            ("push", push_secs),
            ("pull", pull_secs),
        ] {
            report.row([
                direction.into(),
                chunk_mib.to_string(),
                gibps(size as f64 / secs),
                if direction == "local" {
                    "-".into()
                } else {
                    any_partial.to_string()
                },
            ]);
            doc.row(
                "ablation_remote",
                vec![
                    ("scenario", Json::str(format!("chunk_ablation_{direction}"))),
                    ("chunk_mib", Json::num(chunk_mib as f64)),
                    ("bytes", Json::num(size as f64)),
                    ("secs", Json::num(secs)),
                    (
                        "gib_per_s",
                        Json::num(size as f64 / secs / (1u64 << 30) as f64),
                    ),
                ],
            );
        }
    }

    assert!(
        any_partial,
        "query() must observe partial bytes_moved during a remote transfer"
    );
    report.note(format!(
        "one {size_mib} MiB file staged over 127.0.0.1 between two live daemons, best-of-{reps}"
    ));
    report.note("local = same-daemon copy of the same file (no-network baseline)");
    report.print();
    doc.note(
        "chunk ablation: one file staged both ways per chunk size; local = same-daemon baseline"
            .to_string(),
    );
    // Shares BENCH_remote.json with bench_suite; only the
    // "ablation_remote" rows are replaced.
    let path = doc.merge_into().unwrap();
    println!("  json: {}", path.display());
    println!();

    let _ = fs::remove_dir_all(&root);
}
