//! Ablation — data-plane chunking: bandwidth vs chunk size × workers.
//!
//! The paper's Table II compares transfer plugins by how little the
//! CPU touches the data; our data plane adds a second axis — how many
//! workers touch one file. This binary copies a single large file
//! through the real engine for every (chunk size × worker count)
//! combination and compares against the monolithic `std::fs::copy`
//! baseline (one thread, one syscall loop, no progress, which is what
//! the engine did before the chunked data plane).
//!
//! Besides bandwidth, it verifies the two behaviours the chunked
//! design promises:
//!
//! * a single large-file copy *utilizes more than one worker*
//!   (`Engine::peak_chunk_workers` high-water mark), and
//! * `query()` observes partial `bytes_moved` mid-transfer (the
//!   paper's `NORNS_EPENDING` polling semantics).

use std::fs;
use std::sync::Arc;
use std::time::Instant;

use norns_bench::{gibps, quick_mode, Report};
use norns_ipc::{Engine, EngineConfig};
use norns_proto::{BackendKind, DataspaceDesc, ResourceDesc, TaskOp, TaskSpec, TaskState};
use norns_sched::Fcfs;

const MIB: u64 = 1 << 20;

struct RunResult {
    secs: f64,
    peak_workers: u64,
    partial_progress_seen: bool,
}

/// One engine copy of `src` (size `size`) under the given knobs.
fn run_engine_copy(
    root: &std::path::Path,
    size: u64,
    chunk_size: u64,
    workers: usize,
) -> RunResult {
    let engine: Arc<Engine> = Engine::with_config(
        EngineConfig {
            workers,
            chunk_size,
            ..EngineConfig::default()
        },
        Box::new(Fcfs),
    );
    engine
        .register_dataspace(DataspaceDesc {
            nsid: "tmp0".into(),
            kind: BackendKind::PosixFilesystem,
            mount: root.to_string_lossy().into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();
    let _ = fs::remove_file(root.join("dst"));
    let spec = TaskSpec::new(
        TaskOp::Copy,
        ResourceDesc::PosixPath {
            nsid: "tmp0".into(),
            path: "src".into(),
        },
        Some(ResourceDesc::PosixPath {
            nsid: "tmp0".into(),
            path: "dst".into(),
        }),
    );
    let start = Instant::now();
    let id = engine.submit(1, spec, None).unwrap();
    // Poll while the transfer runs: live progress is part of the
    // contract being benchmarked.
    let mut partial_progress_seen = false;
    loop {
        let stats = engine.query(id).unwrap();
        if stats.state.is_terminal() {
            assert_eq!(stats.state, TaskState::Finished, "copy failed");
            assert_eq!(stats.bytes_moved, size, "byte count");
            break;
        }
        if stats.bytes_moved > 0 && stats.bytes_moved < size {
            partial_progress_seen = true;
        }
        std::thread::yield_now();
    }
    let secs = start.elapsed().as_secs_f64();
    let peak_workers = engine.peak_chunk_workers();
    engine.shutdown();
    RunResult {
        secs,
        peak_workers,
        partial_progress_seen,
    }
}

fn main() {
    let root = std::env::temp_dir().join(format!("norns-ablation-chunk-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();

    let size_mib: u64 = if quick_mode() { 256 } else { 1024 };
    let size = size_mib * MIB;
    let reps = if quick_mode() { 2 } else { 3 };
    fs::write(root.join("src"), vec![0xc3u8; size as usize]).unwrap();

    // Baseline: the pre-chunking data plane — one monolithic
    // `fs::copy` on one thread. Best of `reps`.
    let mut baseline_secs = f64::MAX;
    for _ in 0..reps {
        let _ = fs::remove_file(root.join("dst"));
        let start = Instant::now();
        let copied = fs::copy(root.join("src"), root.join("dst")).unwrap();
        assert_eq!(copied, size);
        baseline_secs = baseline_secs.min(start.elapsed().as_secs_f64());
    }
    let baseline_bw = size as f64 / baseline_secs;

    let mut report = Report::new(
        "ablation_chunk",
        "chunked data plane: bandwidth vs chunk size × workers (single large file)",
        [
            "chunk_mib",
            "workers",
            "gib_per_s",
            "speedup_vs_fs_copy",
            "peak_chunk_workers",
            "partial_progress_seen",
        ],
    );
    report.row([
        "monolithic".to_string(),
        "1".to_string(),
        gibps(baseline_bw),
        "1.00".to_string(),
        "0".to_string(),
        "false".to_string(),
    ]);

    let mut best_multiworker_bw = 0.0f64;
    let mut multiworker_peak = 0u64;
    let mut any_partial = false;
    for &workers in &[1usize, 2, 4] {
        for &chunk_mib in &[1u64, 4, 8, 32] {
            let mut secs = f64::MAX;
            let mut peak = 0;
            let mut partial = false;
            for _ in 0..reps {
                let r = run_engine_copy(&root, size, chunk_mib * MIB, workers);
                secs = secs.min(r.secs);
                peak = peak.max(r.peak_workers);
                partial |= r.partial_progress_seen;
            }
            let bw = size as f64 / secs;
            if workers > 1 {
                best_multiworker_bw = best_multiworker_bw.max(bw);
                multiworker_peak = multiworker_peak.max(peak);
            }
            any_partial |= partial;
            report.row([
                chunk_mib.to_string(),
                workers.to_string(),
                gibps(bw),
                format!("{:.2}", bw / baseline_bw),
                peak.to_string(),
                partial.to_string(),
            ]);
        }
    }

    // The two hard invariants of the chunked design; bandwidth is
    // hardware-dependent and reported rather than asserted.
    assert!(
        multiworker_peak > 1,
        "a single large-file copy must utilize >1 worker (peak {multiworker_peak})"
    );
    assert!(
        any_partial,
        "query() must observe partial bytes_moved mid-transfer"
    );

    report.note(format!(
        "baseline = best-of-{reps} monolithic fs::copy of one {size_mib} MiB file"
    ));
    report.note(format!(
        "best multi-worker chunked bandwidth: {}x the monolithic baseline",
        format_args!("{:.2}", best_multiworker_bw / baseline_bw)
    ));
    report.note("peak_chunk_workers > 1 ⇒ several workers cooperated on one file");
    report.finish();

    let _ = fs::remove_dir_all(&root);
    if best_multiworker_bw < baseline_bw {
        eprintln!(
            "warning: multi-worker chunked bandwidth below the monolithic baseline on this \
             machine ({:.2}x)",
            best_multiworker_bw / baseline_bw
        );
    }
}
