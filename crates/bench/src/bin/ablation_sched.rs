//! Ablation — urd task-queue arbitration policies.
//!
//! The paper ships FCFS and names pluggable arbitration as future
//! work; we implement two of those strategies and compare them on a
//! skewed task mix: many small stage-ins from one job plus a few huge
//! stage-outs from another, all contending for 2 worker slots.

use norns::sim::ops;
use norns::{
    ApiSource, JobFairShare, JobId, JobSpec, ResourceRef, ShortestFirst, TaskQueue, TaskSpec,
};
use norns_bench::Report;
use simcore::metrics::Summary;
use simcore::Sim;
use simstore::{Cred, Mode};
use workloads::{register_tiers, BenchWorld};

const MIB: u64 = 1 << 20;

fn run(policy: &str) -> (f64, f64) {
    let tb = cluster::nextgenio_quiet(2);
    let mut sim = Sim::new(BenchWorld::new(tb.world), 17);
    register_tiers(&mut sim);
    // Queue with 2 workers and the chosen policy.
    sim.model.world.urds[0].queue = match policy {
        "fcfs" => TaskQueue::fcfs(2),
        "sjf" => TaskQueue::new(2, Box::new(ShortestFirst)),
        "job-fair" => TaskQueue::new(2, Box::new(JobFairShare::default())),
        _ => unreachable!(),
    };
    for job in [1u64, 2] {
        ops::register_job(
            &mut sim,
            JobSpec {
                id: JobId(job),
                hosts: vec![0, 1],
                limits: vec![("pmdk0".into(), 0), ("lustre".into(), 0)],
                cred: Cred::new(1000, 1000),
            },
        )
        .unwrap();
    }
    // Job 1: 4 large stage-outs (8 GiB each). Job 2: 24 small ones
    // (64 MiB each), submitted slightly later.
    {
        let world = &mut sim.model.world;
        let t = world.storage.resolve("pmdk0").unwrap();
        let cred = Cred::new(1000, 1000);
        for i in 0..4 {
            world
                .storage
                .ns_mut(t, Some(0))
                .write_file(&format!("big{i}"), 8192 * MIB, &cred, Mode(0o644))
                .unwrap();
        }
        for i in 0..24 {
            world
                .storage
                .ns_mut(t, Some(0))
                .write_file(&format!("small{i}"), 64 * MIB, &cred, Mode(0o644))
                .unwrap();
        }
    }
    for i in 0..4 {
        let spec = TaskSpec::copy(
            ResourceRef::local("pmdk0", format!("big{i}")),
            ResourceRef::local("lustre", format!("big{i}")),
        );
        ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 1).unwrap();
    }
    for i in 0..24 {
        let spec = TaskSpec::copy(
            ResourceRef::local("pmdk0", format!("small{i}")),
            ResourceRef::local("lustre", format!("small{i}")),
        );
        ops::submit_task(&mut sim, 0, JobId(2), ApiSource::Control, spec, 2).unwrap();
    }
    sim.run();
    let mut sojourns = Summary::new();
    let mut job2 = Summary::new();
    for c in &sim.model.completions {
        let s = (c.stats.finished.unwrap() - c.stats.submitted).as_secs_f64();
        sojourns.record(s);
        if c.job == JobId(2) {
            job2.record(s);
        }
    }
    (sojourns.mean(), job2.mean())
}

fn main() {
    let mut report = Report::new(
        "ablation_sched",
        "urd arbitration policies on a skewed task mix (2 workers)",
        ["policy", "mean_sojourn_s", "small_job_mean_sojourn_s"],
    );
    for policy in ["fcfs", "sjf", "job-fair"] {
        let (all, small) = run(policy);
        report.row([
            policy.to_string(),
            format!("{all:.1}"),
            format!("{small:.1}"),
        ]);
    }
    report.note("fcfs = paper default; sjf cuts mean sojourn; job-fair protects the small job");
    report.finish();
}
