//! Table IV — Synthetic workflow benchmark with data staging.
//!
//! The workflow runs on NVM (producer 64 s / consumer 30 s as in
//! Table III) while NORNS stages data between Lustre and the node's
//! NVM. HPCG runs on the nodes where staging happens, measuring the
//! impact of administrative I/O on a co-located application. Paper:
//!
//! | component       | runtime |
//! |-----------------|---------|
//! | Producer        | 64 s    |
//! | Consumer        | 30 s    |
//! | HPCG stage out  | 137 s   |
//! | HPCG stage in   | 142 s   |
//! | HPCG no activity| 122 s   |

use norns::sim::ops;
use norns::{ApiSource, JobId, JobSpec, ResourceRef, TaskSpec};
use norns_bench::Report;
use simcore::Sim;
use simstore::Cred;
use workloads::hpcg::{self, HpcgConfig};
use workloads::prodcons::{materialize_output, run_phase, ProdConsConfig};
use workloads::{register_tiers, wait_task_completions, BenchWorld};

fn fresh_world() -> Sim<BenchWorld> {
    let tb = cluster::nextgenio_quiet(2);
    let mut sim = Sim::new(BenchWorld::new(tb.world), 99);
    register_tiers(&mut sim);
    ops::register_job(
        &mut sim,
        JobSpec {
            id: JobId(1),
            hosts: vec![0, 1],
            limits: vec![("pmdk0".into(), 0), ("lustre".into(), 0)],
            cred: Cred::new(1000, 1000),
        },
    )
    .unwrap();
    sim
}

/// HPCG on `node` while a NORNS staging task runs on the same node.
/// The staging benchmark moves the 200 GB the workflow reads+writes
/// between components (§V-D: "a job that reads and writes 200GB of
/// data between workflow components").
fn hpcg_with_staging(spec: Option<TaskSpec>, node: usize) -> f64 {
    let mut sim = fresh_world();
    let cfg = ProdConsConfig {
        data_bytes: 200 * simcore::units::GB,
        ..ProdConsConfig::default()
    };
    // Data to stage must exist first.
    materialize_output(&mut sim, "pmdk0", Some(0), "out", &cfg);
    {
        // Stage-in source on Lustre for the pre-consumer experiment.
        let t = sim.model.world.storage.resolve("lustre").unwrap();
        let cred = Cred::new(1000, 1000);
        let per = cfg.data_bytes / cfg.files;
        for i in 0..cfg.files {
            sim.model
                .world
                .storage
                .ns_mut(t, None)
                .write_file(
                    &format!("staged/part{i:04}"),
                    per,
                    &cred,
                    simstore::Mode(0o644),
                )
                .unwrap();
        }
    }
    let hcfg = HpcgConfig::paper_test_case();
    let started = sim.now();
    let tokens = hpcg::start(&mut sim, &[node], &hcfg);
    if let Some(spec) = spec {
        ops::submit_task(&mut sim, node, JobId(1), ApiSource::Control, spec, 0).unwrap();
        // Let the staging task finish too (HPCG usually outlasts it).
        let _ = wait_task_completions(&mut sim, 1);
    }
    let res = hpcg::finish(&mut sim, started, &tokens);
    res.runtime().as_secs_f64()
}

fn main() {
    let mut report = Report::new(
        "table4",
        "Synthetic workflow with data staging + HPCG impact",
        ["component", "paper_s", "measured_s"],
    );

    // Producer / consumer on NVM (same as Table III's NVM rows).
    let cfg = ProdConsConfig::default();
    let mut sim = fresh_world();
    let p = run_phase(&mut sim, 0, "pmdk0", &cfg.producer()).as_secs_f64();
    let c = run_phase(&mut sim, 0, "pmdk0", &cfg.consumer()).as_secs_f64();
    report.row(["Producer".into(), "64".to_string(), format!("{p:.1}")]);
    report.row(["Consumer".into(), "30".to_string(), format!("{c:.1}")]);

    // HPCG while the producer's output is staged out to Lustre.
    let stage_out = TaskSpec::mv(
        ResourceRef::local("pmdk0", "out"),
        ResourceRef::local("lustre", "archive/out"),
    );
    let hpcg_out = hpcg_with_staging(Some(stage_out), 0);
    report.row([
        "HPCG stage out".into(),
        "137".to_string(),
        format!("{hpcg_out:.1}"),
    ]);

    // HPCG while the consumer's input is staged in from Lustre.
    let stage_in = TaskSpec::copy(
        ResourceRef::local("lustre", "staged"),
        ResourceRef::local("pmdk0", "in"),
    );
    let hpcg_in = hpcg_with_staging(Some(stage_in), 0);
    report.row([
        "HPCG stage in".into(),
        "142".to_string(),
        format!("{hpcg_in:.1}"),
    ]);

    // HPCG baseline.
    let hpcg_idle = hpcg_with_staging(None, 0);
    report.row([
        "HPCG no activity".into(),
        "122".to_string(),
        format!("{hpcg_idle:.1}"),
    ]);

    report.note(format!(
        "measured staging impact: stage-out +{:.0}%, stage-in +{:.0}% (paper ~12-16%)",
        (hpcg_out / hpcg_idle - 1.0) * 100.0,
        (hpcg_in / hpcg_idle - 1.0) * 100.0
    ));
    report.note("producer/consumer are unaffected by staging mode (paper: 'commensurate')");
    report.finish();
}
