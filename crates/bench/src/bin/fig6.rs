//! Fig. 6 — NORNS aggregated bandwidth for remote data *reads*.
//!
//! Up to 32 clients pull 16 MiB buffers in parallel from a single
//! NORNS target with 1–16 RPCs in flight (`ofi+tcp`). Paper:
//! aggregated bandwidth scales linearly, peaking at ≈55.6 GiB/s, with
//! per-client saturation at ≈1.7 GiB/s regardless of in-flight RPCs.

use norns_bench::{drivers, gibps, quick_mode, Report};

fn main() {
    let tasks = if quick_mode() { 20 } else { 80 };
    let mut report = Report::new(
        "fig6",
        "Aggregated bandwidth, remote reads from one target (ofi+tcp)",
        [
            "clients",
            "rpcs_in_flight",
            "aggregate_GiB_s",
            "per_client_GiB_s",
        ],
    );
    for &clients in &[1usize, 2, 4, 8, 16, 32] {
        for &window in &[1usize, 2, 4, 8, 16] {
            let bw = drivers::transfer_rate(clients, window, tasks, drivers::XferDir::Read, 6);
            report.row([
                clients.to_string(),
                window.to_string(),
                gibps(bw),
                gibps(bw / clients as f64),
            ]);
        }
    }
    report.note("paper: linear scaling to ≈55.6 GiB/s at 32 clients;");
    report.note("per-client ≈1.7 GiB/s, flat in the number of in-flight RPCs");
    report.finish();
}
