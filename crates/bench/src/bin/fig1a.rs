//! Fig. 1a — Impact of cross-application interference on ARCHER.
//!
//! Collective MPI-IO writes (100 MB/writer, 24 writers/node) to a
//! single shared Lustre file, repeated across days (here: seeds), with
//! the default 4-OST stripe vs full striping. The paper observes ≈4×
//! spread between the fastest and slowest run at a fixed node count
//! and ≈16 GB/s peak only under full striping.

use norns_bench::{mbps, reps, Report};
use simcore::metrics::Summary;
use simcore::{Sim, SimDuration, SimTime};
use workloads::mpiio::{self, MpiIoConfig};
use workloads::{register_tiers, BenchWorld};

fn one_run(nodes: usize, stripe: Option<usize>, seed: u64) -> f64 {
    let tb = cluster::archer(nodes);
    let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
    register_tiers(&mut sim);
    cluster::drive_interference(
        &mut sim,
        SimDuration::from_secs(600),
        SimTime::from_secs(36_000),
    );
    let cfg = MpiIoConfig::archer(stripe);
    let all: Vec<usize> = (0..nodes).collect();
    mpiio::run(&mut sim, &all, &cfg).bandwidth()
}

fn main() {
    let mut report = Report::new(
        "fig1a",
        "ARCHER collective MPI-IO write bandwidth under interference",
        [
            "nodes",
            "stripe",
            "min_MB/s",
            "median_MB/s",
            "max_MB/s",
            "spread",
        ],
    );
    let repetitions = reps(15);
    for &nodes in &[1usize, 2, 4, 8, 16, 32] {
        for (label, stripe) in [("default(4)", Some(4)), ("full(48)", None)] {
            let mut s = Summary::new();
            for rep in 0..repetitions {
                s.record(one_run(
                    nodes,
                    stripe,
                    1000 + rep as u64 * 13 + nodes as u64,
                ));
            }
            report.row([
                nodes.to_string(),
                label.to_string(),
                mbps(s.min()),
                mbps(s.median()),
                mbps(s.max()),
                format!("{:.1}x", s.max() / s.min()),
            ]);
        }
    }
    report.note("paper: ~4x spread between fastest and slowest run at a given writer count");
    report.note("paper: ~16 GB/s peak reachable only with full striping (all 48 OSTs)");
    report.finish();
}
