//! Table III — Synthetic workflow benchmark using Lustre and/or NVMs.
//!
//! Producer writes 100 GB, consumer reads it back. Lustre runs place
//! producer and consumer on different nodes (to defeat the page
//! cache); NVM runs keep both phases on one node. Paper (mean of 5):
//!
//! | component | target | runtime |
//! |-----------|--------|---------|
//! | producer  | Lustre | 96 s    |
//! | consumer  | Lustre | 74 s    |
//! | producer  | NVM    | 64 s    |
//! | consumer  | NVM    | 30 s    |

use norns_bench::{reps, Report};
use simcore::metrics::Summary;
use simcore::{Sim, SimDuration, SimTime};
use workloads::prodcons::{run_phase, ProdConsConfig};
use workloads::{register_tiers, BenchWorld};

fn run_pair(tier: &str, seed: u64) -> (f64, f64) {
    let tb = cluster::nextgenio(2);
    let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
    register_tiers(&mut sim);
    cluster::drive_interference(
        &mut sim,
        SimDuration::from_secs(600),
        SimTime::from_secs(36_000),
    );
    let cfg = ProdConsConfig::default();
    // Lustre: producer node 0, consumer node 1 (separate nodes);
    // NVM: same node, data stays put.
    let (pnode, cnode) = if tier == "lustre" { (0, 1) } else { (0, 0) };
    let p = run_phase(&mut sim, pnode, tier, &cfg.producer()).as_secs_f64();
    let c = run_phase(&mut sim, cnode, tier, &cfg.consumer()).as_secs_f64();
    (p, c)
}

fn main() {
    let mut report = Report::new(
        "table3",
        "Synthetic producer/consumer workflow, 100 GB (Lustre vs node-local NVM)",
        ["component", "target", "paper_s", "measured_s", "stddev_s"],
    );
    let repetitions = reps(5);
    for (tier, label, paper_p, paper_c) in [
        ("lustre", "Lustre", 96.0, 74.0),
        ("pmdk0", "NVM", 64.0, 30.0),
    ] {
        let mut prod = Summary::new();
        let mut cons = Summary::new();
        for rep in 0..repetitions {
            let (p, c) = run_pair(tier, 500 + rep as u64 * 7);
            prod.record(p);
            cons.record(c);
        }
        report.row([
            "Producer".to_string(),
            label.to_string(),
            format!("{paper_p:.0}"),
            format!("{:.1}", prod.mean()),
            format!("{:.1}", prod.std_dev()),
        ]);
        report.row([
            "Consumer".to_string(),
            label.to_string(),
            format!("{paper_c:.0}"),
            format!("{:.1}", cons.mean()),
            format!("{:.1}", cons.std_dev()),
        ]);
    }
    report.note("paper: NVM workflow ≈46% faster overall (96+74=170 s vs 64+30=94 s)");
    report.finish();
}
