//! Ablation — arbitration policies on the **real-I/O** path.
//!
//! The sim-side `ablation_sched` compares policies inside the
//! simulator; this binary runs the same skewed task mix through the
//! real `norns-ipc` engine (actual files, actual worker threads, the
//! shared `norns-sched` scheduler behind a mutex+condvar), so the
//! sim-vs-real arbitration comparison is a reportable scenario.
//!
//! Mix: job 1 submits a few huge stage-outs, job 2 floods small
//! transfers slightly later, and one *high-priority* small stage-in
//! arrives last — the case the weighted-priority policy exists for.
//! Two workers; per-task sojourn = queue wait + execution, measured by
//! the engine itself (`TaskStats::{wait_usec, elapsed_usec}`).

use std::fs;
use std::str::FromStr;
use std::sync::Arc;

use norns_bench::{quick_mode, Report};
use norns_ipc::{Engine, PolicyKind};
use norns_proto::{BackendKind, DataspaceDesc, ResourceDesc, TaskOp, TaskSpec, TaskState};
use simcore::metrics::Summary;

const MIB: usize = 1 << 20;

struct RunResult {
    all_sojourn: Summary,
    small_sojourn: Summary,
    high_wait_ms: f64,
    busy_rejections: u64,
}

fn run(policy: PolicyKind) -> RunResult {
    let root = std::env::temp_dir().join(format!(
        "norns-ablation-ipc-{}-{}",
        policy.name(),
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();

    let (big_mb, big_n, small_mb, small_n) = if quick_mode() {
        (32, 3, 2, 12)
    } else {
        (96, 4, 4, 24)
    };

    // Capacity below the task count so the bounded queue genuinely
    // pushes back and the Busy/retry column carries signal.
    let engine: Arc<Engine> = Engine::with_policy(2, 8, policy.to_policy());
    engine
        .register_dataspace(DataspaceDesc {
            nsid: "tmp0".into(),
            kind: BackendKind::PosixFilesystem,
            mount: root.join("tmp0").to_string_lossy().into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();

    // Source files: the engine estimates task size from metadata at
    // submission, which is what SJF arbitrates on.
    let src_dir = root.join("tmp0");
    for i in 0..big_n {
        fs::write(src_dir.join(format!("big{i}")), vec![0xb1u8; big_mb * MIB]).unwrap();
    }
    for i in 0..small_n {
        fs::write(
            src_dir.join(format!("small{i}")),
            vec![0x51u8; small_mb * MIB],
        )
        .unwrap();
    }
    fs::write(src_dir.join("urgent"), vec![0x11u8; small_mb * MIB]).unwrap();

    let copy = |name: &str, prio: u8| {
        TaskSpec::new(
            TaskOp::Copy,
            ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: name.into(),
            },
            Some(ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: format!("out/{name}"),
            }),
        )
        .with_priority(prio)
    };

    // Job 1: huge stage-outs first; job 2: the small flood; then the
    // single high-priority latecomer. All submitted as fast as the
    // admission path allows, so the backlog forms behind 2 workers.
    let mut ids = Vec::new();
    let mut busy_rejections = 0u64;
    let mut submit = |job: u64, spec: TaskSpec, ids: &mut Vec<(u64, bool)>, small: bool| loop {
        match engine.submit(job, spec.clone(), None) {
            Ok(id) => {
                ids.push((id, small));
                break;
            }
            Err((norns_proto::ErrorCode::Busy, _)) => {
                busy_rejections += 1;
                std::thread::yield_now();
            }
            Err((code, msg)) => panic!("submit failed: {code:?} {msg}"),
        }
    };
    for i in 0..big_n {
        submit(1, copy(&format!("big{i}"), 100), &mut ids, false);
    }
    for i in 0..small_n {
        submit(2, copy(&format!("small{i}"), 100), &mut ids, true);
    }
    let high_spec = copy("urgent", 250);
    let mut high_id = Vec::new();
    submit(2, high_spec, &mut high_id, false);
    let high_id = high_id[0].0;

    let mut all_sojourn = Summary::new();
    let mut small_sojourn = Summary::new();
    for (id, small) in &ids {
        let stats = engine.wait(*id, 0).expect("task exists");
        assert_eq!(stats.state, TaskState::Finished, "task {id}");
        let sojourn_ms = (stats.wait_usec + stats.elapsed_usec) as f64 / 1e3;
        all_sojourn.record(sojourn_ms);
        if *small {
            small_sojourn.record(sojourn_ms);
        }
    }
    let high = engine.wait(high_id, 0).expect("urgent task exists");
    assert_eq!(high.state, TaskState::Finished);
    let high_wait_ms = high.wait_usec as f64 / 1e3;
    all_sojourn.record((high.wait_usec + high.elapsed_usec) as f64 / 1e3);

    engine.shutdown();
    let _ = fs::remove_dir_all(&root);
    RunResult {
        all_sojourn,
        small_sojourn,
        high_wait_ms,
        busy_rejections,
    }
}

fn main() {
    // Optional single-policy run: `ablation_policy_ipc sjf`.
    let only: Option<PolicyKind> = std::env::args().nth(1).map(|s| {
        PolicyKind::from_str(&s).unwrap_or_else(|e| {
            eprintln!("{e}; expected one of: fcfs sjf job-fair weighted-priority");
            std::process::exit(2);
        })
    });
    let policies = match only {
        Some(p) => vec![p],
        None => vec![
            PolicyKind::Fcfs,
            PolicyKind::ShortestFirst,
            PolicyKind::JobFairShare,
            PolicyKind::WeightedPriority,
        ],
    };
    let mut report = Report::new(
        "ablation_policy_ipc",
        "arbitration policies on the real-I/O engine (2 workers, skewed mix)",
        [
            "policy",
            "mean_sojourn_ms",
            "p95_sojourn_ms",
            "small_mean_ms",
            "small_p95_ms",
            "high_prio_wait_ms",
            "busy_rejections",
        ],
    );
    for policy in policies {
        let r = run(policy);
        report.row([
            policy.name().to_string(),
            format!("{:.1}", r.all_sojourn.mean()),
            format!("{:.1}", r.all_sojourn.quantile(0.95)),
            format!("{:.1}", r.small_sojourn.mean()),
            format!("{:.1}", r.small_sojourn.quantile(0.95)),
            format!("{:.1}", r.high_wait_ms),
            r.busy_rejections.to_string(),
        ]);
    }
    report.note("same policies as the simulated ablation_sched, now on real files");
    report.note("sjf shrinks the small-task mean; weighted-priority shrinks the urgent wait");
    report.finish();
}
