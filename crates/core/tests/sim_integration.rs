//! End-to-end tests of the simulated NORNS deployment: a 4-node
//! cluster with node-local DCPMM and a Lustre-like PFS, exercising
//! every transfer plugin, validation failures, quotas, tracked
//! dataspaces and the RPC control plane.

use norns::sim::ops;
use norns::sim::{handle_flow_complete, HasNorns, NornsWorld, RpcReply, RpcRequest, WorldConfig};
use norns::{
    ApiSource, JobId, JobSpec, NornsError, ResourceRef, TaskCompletion, TaskSpec, TaskState,
};
use simcore::{CompletedFlow, FluidModel, FluidSystem, Sim, SimTime};
use simnet::FabricParams;
use simstore::{Cred, IoDir, LocalParams, Mode, PfsParams, TierKind};

const GIB: u64 = 1 << 30;

struct TestModel {
    world: NornsWorld,
    completions: Vec<TaskCompletion>,
    app_done: Vec<(u64, SimTime)>,
    replies: Vec<(RpcReply, SimTime)>,
}

impl FluidModel for TestModel {
    fn fluid_mut(&mut self) -> &mut FluidSystem {
        &mut self.world.fluid
    }
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
        handle_flow_complete(sim, done);
    }
}

impl HasNorns for TestModel {
    fn norns_mut(&mut self) -> &mut NornsWorld {
        &mut self.world
    }
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
        sim.model.completions.push(completion);
    }
    fn on_app_io_complete(sim: &mut Sim<Self>, token: u64) {
        let now = sim.now();
        sim.model.app_done.push((token, now));
    }
    fn on_rpc_reply(sim: &mut Sim<Self>, reply: RpcReply) {
        let now = sim.now();
        sim.model.replies.push((reply, now));
    }
}

/// Build a 4-node testbed: per-node DCPMM (`pmdk0`) + shared Lustre
/// (`lustre`, interference off for determinism).
fn testbed() -> Sim<TestModel> {
    let nodes = 4;
    let mut world = NornsWorld::new(
        nodes,
        FabricParams::omni_path_tcp(nodes),
        WorldConfig::default(),
    );
    let mut pfs_params = PfsParams::nextgenio_lustre();
    pfs_params.interference = simstore::Interference::Off;
    world.storage.add_pfs(
        &mut world.fluid.net,
        "lustre",
        nodes,
        pfs_params,
        500 * simcore::units::TB,
    );
    world.storage.add_local_class(
        &mut world.fluid.net,
        "pmdk0",
        nodes,
        LocalParams::dcpmm(),
        TierKind::NodeLocalNvm,
    );
    let model = TestModel {
        world,
        completions: Vec::new(),
        app_done: Vec::new(),
        replies: Vec::new(),
    };
    let mut sim = Sim::new(model, 42);
    // Register dataspaces on every node and one job spanning them.
    for n in 0..nodes {
        ops::register_dataspace(&mut sim, n, "pmdk0", "pmdk0", false).unwrap();
        ops::register_dataspace(&mut sim, n, "lustre", "lustre", false).unwrap();
    }
    ops::register_job(
        &mut sim,
        JobSpec {
            id: JobId(1),
            hosts: (0..nodes).collect(),
            limits: vec![("pmdk0".into(), 0), ("lustre".into(), 0)],
            cred: Cred::new(1000, 1000),
        },
    )
    .unwrap();
    sim
}

fn cred() -> Cred {
    Cred::new(1000, 1000)
}

/// Create a file on a tier namespace directly (test fixture).
fn put_file(sim: &mut Sim<TestModel>, tier: &str, node: Option<usize>, path: &str, bytes: u64) {
    let t = ops::tier(sim, tier).unwrap();
    sim.model
        .world
        .storage
        .ns_mut(t, node)
        .write_file(path, bytes, &cred(), Mode(0o644))
        .unwrap();
}

fn file_exists(sim: &mut Sim<TestModel>, tier: &str, node: Option<usize>, path: &str) -> bool {
    let t = ops::tier(sim, tier).unwrap();
    sim.model.world.storage.ns(t, node).exists(path)
}

#[test]
fn memory_to_local_completes_and_creates_file() {
    let mut sim = testbed();
    let spec = TaskSpec::copy(
        ResourceRef::memory(GIB),
        ResourceRef::local("pmdk0", "ckpt/buf0"),
    );
    let id = ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 7).unwrap();
    sim.run();
    assert_eq!(sim.model.completions.len(), 1);
    let c = sim.model.completions[0].clone();
    assert_eq!(c.task, id);
    assert_eq!(c.tag, 7);
    assert_eq!(c.state, TaskState::Finished);
    assert_eq!(c.stats.bytes_moved, GIB);
    assert!(file_exists(&mut sim, "pmdk0", Some(0), "ckpt/buf0"));
    // 1 GiB over min(ram 12, nvm write 5 GiB/s) ≈ 0.2 s.
    let elapsed = c.stats.elapsed().unwrap().as_secs_f64();
    assert!((elapsed - 0.2).abs() < 0.05, "elapsed {elapsed}");
}

#[test]
fn stage_in_from_lustre_to_nvm_is_client_limited() {
    let mut sim = testbed();
    put_file(&mut sim, "lustre", None, "input/mesh.dat", 2 * GIB);
    let spec = TaskSpec::copy(
        ResourceRef::local("lustre", "input/mesh.dat"),
        ResourceRef::local("pmdk0", "input/mesh.dat"),
    );
    ops::submit_task(&mut sim, 2, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    let c = sim.model.completions[0].clone();
    assert_eq!(c.state, TaskState::Finished);
    assert!(file_exists(&mut sim, "pmdk0", Some(2), "input/mesh.dat"));
    // Bottleneck: PFS client lane 2.4 GiB/s → 2 GiB ≈ 0.833 s.
    let elapsed = c.stats.elapsed().unwrap().as_secs_f64();
    assert!((elapsed - 0.833).abs() < 0.1, "elapsed {elapsed}");
}

#[test]
fn local_to_remote_is_session_capped() {
    let mut sim = testbed();
    put_file(&mut sim, "pmdk0", Some(0), "out/result.dat", 2 * GIB);
    let spec = TaskSpec::copy(
        ResourceRef::local("pmdk0", "out/result.dat"),
        ResourceRef::remote(3, "pmdk0", "in/result.dat"),
    );
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    let c = sim.model.completions[0].clone();
    assert_eq!(c.state, TaskState::Finished, "err: {:?}", c.error);
    assert!(file_exists(&mut sim, "pmdk0", Some(3), "in/result.dat"));
    // ofi+tcp push session cap 1.8 GiB/s → 2 GiB ≈ 1.11 s.
    let elapsed = c.stats.elapsed().unwrap().as_secs_f64();
    assert!((elapsed - 1.111).abs() < 0.1, "elapsed {elapsed}");
}

#[test]
fn remote_to_local_pull_works() {
    let mut sim = testbed();
    put_file(&mut sim, "pmdk0", Some(1), "data/a.bin", GIB);
    let spec = TaskSpec::copy(
        ResourceRef::remote(1, "pmdk0", "data/a.bin"),
        ResourceRef::local("pmdk0", "data/a.bin"),
    );
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    let c = sim.model.completions[0].clone();
    assert_eq!(c.state, TaskState::Finished, "err: {:?}", c.error);
    assert!(file_exists(&mut sim, "pmdk0", Some(0), "data/a.bin"));
    // Pull session cap 1.7 GiB/s → 1 GiB ≈ 0.588 s.
    let elapsed = c.stats.elapsed().unwrap().as_secs_f64();
    assert!((elapsed - 0.588).abs() < 0.1, "elapsed {elapsed}");
}

#[test]
fn memory_to_remote_stages_through_tmp() {
    let mut sim = testbed();
    let spec = TaskSpec::copy(
        ResourceRef::memory(GIB),
        ResourceRef::remote(2, "pmdk0", "ckpt/remote0"),
    );
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    let c = sim.model.completions[0].clone();
    assert_eq!(c.state, TaskState::Finished, "err: {:?}", c.error);
    assert!(file_exists(&mut sim, "pmdk0", Some(2), "ckpt/remote0"));
    // Two legs: local memcpy (12 GiB/s ÷ 2 for src+tmp on same ram
    // lane ⇒ 6 GiB/s ≈ 0.167 s) then push at 1.8 GiB/s ≈ 0.556 s.
    // Total bytes counted = 2 GiB (both legs move the buffer).
    assert_eq!(c.stats.bytes_moved, 2 * GIB);
    let elapsed = c.stats.elapsed().unwrap().as_secs_f64();
    assert!((0.6..0.85).contains(&elapsed), "elapsed {elapsed}");
}

#[test]
fn remote_to_memory_pull() {
    let mut sim = testbed();
    put_file(&mut sim, "pmdk0", Some(3), "shared/table.bin", GIB / 2);
    let spec = TaskSpec::copy(
        ResourceRef::remote(3, "pmdk0", "shared/table.bin"),
        ResourceRef::memory(GIB / 2),
    );
    ops::submit_task(&mut sim, 1, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    let c = sim.model.completions[0].clone();
    assert_eq!(c.state, TaskState::Finished, "err: {:?}", c.error);
    assert_eq!(c.stats.bytes_moved, GIB / 2);
}

#[test]
fn move_deletes_the_source() {
    let mut sim = testbed();
    put_file(&mut sim, "pmdk0", Some(0), "out/final.h5", GIB);
    let spec = TaskSpec::mv(
        ResourceRef::local("pmdk0", "out/final.h5"),
        ResourceRef::local("lustre", "results/final.h5"),
    );
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    assert_eq!(sim.model.completions[0].state, TaskState::Finished);
    assert!(file_exists(&mut sim, "lustre", None, "results/final.h5"));
    assert!(!file_exists(&mut sim, "pmdk0", Some(0), "out/final.h5"));
}

#[test]
fn remove_task_deletes_tree() {
    let mut sim = testbed();
    put_file(&mut sim, "pmdk0", Some(0), "scratch/a", 100);
    put_file(&mut sim, "pmdk0", Some(0), "scratch/b", 200);
    let spec = TaskSpec::remove(ResourceRef::local("pmdk0", "scratch"));
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    assert_eq!(sim.model.completions[0].state, TaskState::Finished);
    assert!(!file_exists(&mut sim, "pmdk0", Some(0), "scratch"));
}

#[test]
fn directory_copy_mirrors_tree() {
    let mut sim = testbed();
    put_file(&mut sim, "pmdk0", Some(0), "case/processor0/U", GIB / 4);
    put_file(&mut sim, "pmdk0", Some(0), "case/processor1/U", GIB / 4);
    let spec = TaskSpec::copy(
        ResourceRef::local("pmdk0", "case"),
        ResourceRef::local("lustre", "archive/case"),
    );
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).unwrap();
    sim.run();
    assert_eq!(sim.model.completions[0].state, TaskState::Finished);
    assert!(file_exists(
        &mut sim,
        "lustre",
        None,
        "archive/case/processor0/U"
    ));
    assert!(file_exists(
        &mut sim,
        "lustre",
        None,
        "archive/case/processor1/U"
    ));
}

#[test]
fn missing_source_fails_task_not_submission() {
    let mut sim = testbed();
    let spec = TaskSpec::copy(
        ResourceRef::local("pmdk0", "ghost.dat"),
        ResourceRef::local("lustre", "x"),
    );
    let id = ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0);
    assert!(
        id.is_ok(),
        "submission succeeds; failure surfaces at execution"
    );
    sim.run();
    let c = sim.model.completions[0].clone();
    assert_eq!(c.state, TaskState::FinishedWithError);
    assert!(matches!(c.error, Some(NornsError::NotFound(_))));
}

#[test]
fn unregistered_job_is_rejected_at_submission() {
    let mut sim = testbed();
    let spec = TaskSpec::copy(ResourceRef::memory(10), ResourceRef::local("pmdk0", "x"));
    let err = ops::submit_task(&mut sim, 0, JobId(99), ApiSource::Control, spec, 0);
    assert!(matches!(err, Err(NornsError::NoSuchJob(99))));
}

#[test]
fn user_api_requires_registered_process() {
    let mut sim = testbed();
    let spec = TaskSpec::copy(ResourceRef::memory(10), ResourceRef::local("pmdk0", "x"));
    let err = ops::submit_task(
        &mut sim,
        0,
        JobId(1),
        ApiSource::User { pid: 1234 },
        spec.clone(),
        0,
    );
    assert!(matches!(err, Err(NornsError::NoSuchProcess { .. })));
    ops::add_process(&mut sim, 0, JobId(1), 1234, cred()).unwrap();
    assert!(ops::submit_task(
        &mut sim,
        0,
        JobId(1),
        ApiSource::User { pid: 1234 },
        spec,
        0
    )
    .is_ok());
}

#[test]
fn quota_enforced_at_plan_time() {
    let mut sim = testbed();
    // Re-register the job with a 1 GiB pmdk0 quota.
    let nodes: Vec<usize> = (0..4).collect();
    ops::update_job(
        &mut sim,
        JobSpec {
            id: JobId(1),
            hosts: nodes,
            limits: vec![("pmdk0".into(), GIB), ("lustre".into(), 0)],
            cred: cred(),
        },
    )
    .unwrap();
    let ok = TaskSpec::copy(
        ResourceRef::memory(GIB / 2),
        ResourceRef::local("pmdk0", "a"),
    );
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, ok, 0).unwrap();
    sim.run();
    assert_eq!(sim.model.completions[0].state, TaskState::Finished);
    // Second transfer exceeds the quota.
    let too_big = TaskSpec::copy(ResourceRef::memory(GIB), ResourceRef::local("pmdk0", "b"));
    ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, too_big, 0).unwrap();
    sim.run();
    let c = sim.model.completions[1].clone();
    assert_eq!(c.state, TaskState::FinishedWithError);
    assert!(matches!(c.error, Some(NornsError::QuotaExceeded { .. })));
    assert!(!file_exists(&mut sim, "pmdk0", Some(0), "b"));
}

#[test]
fn tracked_dataspace_reports_leftover_data() {
    let mut sim = testbed();
    ops::unregister_dataspace(&mut sim, 0, "pmdk0").unwrap();
    ops::register_dataspace(&mut sim, 0, "pmdk0", "pmdk0", true).unwrap();
    put_file(&mut sim, "pmdk0", Some(0), "leftover.dat", 123);
    let leftovers = ops::unregister_job(&mut sim, JobId(1), &[0, 1]).unwrap();
    assert_eq!(leftovers.len(), 1);
    assert_eq!(leftovers[0].0, 0);
    assert_eq!(leftovers[0].1, vec!["pmdk0".to_string()]);
}

#[test]
fn fcfs_serializes_beyond_worker_count() {
    let mut sim = testbed();
    // Default 4 workers; submit 6 equal tasks on one node and check
    // the last two queue behind the first four.
    for i in 0..6 {
        let spec = TaskSpec::copy(
            ResourceRef::memory(GIB),
            ResourceRef::local("pmdk0", format!("f{i}")),
        );
        ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, i).unwrap();
    }
    sim.run();
    assert_eq!(sim.model.completions.len(), 6);
    let mut waits: Vec<f64> = sim
        .model
        .completions
        .iter()
        .map(|c| c.stats.queue_wait().unwrap().as_secs_f64())
        .collect();
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(waits[3] < 0.001, "first four start immediately");
    assert!(waits[4] > 0.1, "fifth waits for a worker");
}

#[test]
fn daemon_pause_rejects_submissions() {
    let mut sim = testbed();
    ops::set_accepting(&mut sim, 0, false);
    let spec = TaskSpec::copy(ResourceRef::memory(10), ResourceRef::local("pmdk0", "x"));
    assert!(matches!(
        ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec.clone(), 0),
        Err(NornsError::NotAccepting)
    ));
    ops::set_accepting(&mut sim, 0, true);
    assert!(ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).is_ok());
}

#[test]
fn rpc_ping_round_trips_with_latency() {
    let mut sim = testbed();
    ops::rpc_call(&mut sim, 0, 3, RpcRequest::Ping, 77);
    sim.run();
    assert_eq!(sim.model.replies.len(), 1);
    let (reply, at) = &sim.model.replies[0];
    assert_eq!(reply.token, 77);
    assert_eq!(reply.from, 3);
    assert!(matches!(reply.outcome, norns::RpcOutcome::Pong));
    // Two one-way ofi+tcp hops (~40 µs each) plus service time.
    let us = at.as_micros_f64();
    assert!((60.0..400.0).contains(&us), "rpc rtt {us} µs");
}

#[test]
fn rpc_submit_runs_task_on_remote_node() {
    let mut sim = testbed();
    put_file(&mut sim, "pmdk0", Some(2), "data.bin", GIB / 4);
    let spec = TaskSpec::copy(
        ResourceRef::local("pmdk0", "data.bin"),
        ResourceRef::local("lustre", "data.bin"),
    );
    ops::rpc_call(
        &mut sim,
        0,
        2,
        RpcRequest::Submit {
            job: JobId(1),
            spec,
            tag: 5,
        },
        1,
    );
    sim.run();
    assert!(matches!(
        sim.model.replies[0].0.outcome,
        norns::RpcOutcome::Submitted(_)
    ));
    assert_eq!(sim.model.completions.len(), 1);
    assert_eq!(sim.model.completions[0].node, 2);
    assert_eq!(sim.model.completions[0].tag, 5);
    assert!(file_exists(&mut sim, "lustre", None, "data.bin"));
}

#[test]
fn app_io_reports_completion_token() {
    let mut sim = testbed();
    let token = ops::app_io(&mut sim, 1, "pmdk0", IoDir::Write, GIB, 48, None).unwrap();
    sim.run();
    assert_eq!(sim.model.app_done.len(), 1);
    assert_eq!(sim.model.app_done[0].0, token);
    // 1 GiB at 5 GiB/s NVM write ≈ 0.2 s.
    let t = sim.model.app_done[0].1.as_secs_f64();
    assert!((t - 0.2).abs() < 0.05, "app io took {t}");
}

#[test]
fn eta_tracking_learns_rates() {
    let mut sim = testbed();
    for i in 0..3 {
        let spec = TaskSpec::copy(
            ResourceRef::memory(GIB),
            ResourceRef::local("pmdk0", format!("w{i}")),
        );
        ops::submit_task(&mut sim, 0, JobId(1), ApiSource::Control, spec, 0).unwrap();
        sim.run();
    }
    // The estimator has now seen MemoryToLocal at ≈ 4.4-5 GiB/s (ram
    // and nvm write share). Predictions should be near observed rates.
    let urd = sim.model.world.urd(0);
    let rate = urd.eta.rate(norns::PluginKind::MemoryToLocal);
    let gib = simcore::units::GIB as f64;
    assert!(
        rate > 3.0 * gib && rate < 7.0 * gib,
        "learned rate {}",
        rate / gib
    );
    // drain_eta with nothing running is "now".
    let now = sim.now();
    assert_eq!(urd.drain_eta(now), now);
}

#[test]
fn concurrent_stage_ins_contend_on_the_pfs() {
    let mut sim = testbed();
    for node in 0..4 {
        put_file(&mut sim, "lustre", None, &format!("in/f{node}"), GIB);
    }
    for node in 0..4 {
        let spec = TaskSpec::copy(
            ResourceRef::local("lustre", format!("in/f{node}")),
            ResourceRef::local("pmdk0", "staged.dat"),
        );
        ops::submit_task(
            &mut sim,
            node,
            JobId(1),
            ApiSource::Control,
            spec,
            node as u64,
        )
        .unwrap();
    }
    sim.run();
    assert_eq!(sim.model.completions.len(), 4);
    // Aggregate demand 4×2.4 GiB/s client lanes = 9.6 exceeds the OST
    // read aggregate min(6×1.1, ingress 7) = 6.6 GiB/s → each client
    // gets ≈1.65 GiB/s, so 1 GiB takes ≈0.6 s (vs 0.42 s alone).
    for c in &sim.model.completions {
        let e = c.stats.elapsed().unwrap().as_secs_f64();
        assert!((0.5..0.8).contains(&e), "contended stage-in took {e}");
    }
}
