//! # norns — asynchronous data staging for HPC clusters
//!
//! A from-scratch Rust reproduction of **NORNS** (Miranda, Jackson,
//! Tocci, Panourgias, Nou — *NORNS: Extending Slurm to Support
//! Data-Driven Workflows through Asynchronous Data Staging*, IEEE
//! CLUSTER 2019).
//!
//! NORNS is an infrastructure service that coordinates with the job
//! scheduler to orchestrate asynchronous data transfers between the
//! storage layers of an HPC cluster (node-local NVM, burst buffers,
//! the parallel file system). Its per-node daemon — `urd` — validates,
//! queues, executes and monitors I/O tasks submitted by the scheduler
//! (control API) and by applications (user API).
//!
//! ## Crate layout
//!
//! * [`resource`] / [`task`] — data resources and I/O task model
//!   (`NORNS_MEMORY_REGION`, `NORNS_POSIX_PATH`, copy/move/remove).
//! * [`queue`] — the pending-task queue with pluggable arbitration
//!   (FCFS default, plus SJF and per-job fair share).
//! * [`controller`] — the job & dataspace controller: registrations,
//!   grants, quotas, process credentials.
//! * [`plugins`] — the six Table II transfer plugins and their
//!   resolution from (source kind, sink kind).
//! * [`eta`] — E.T.A. estimation from observed transfer rates.
//! * [`sim`] — the simulation driver: [`sim::NornsWorld`] holds one
//!   simulated urd per node on top of `simcore`/`simnet`/`simstore`;
//!   every operation of the paper's two APIs is available as a generic
//!   function in [`sim::ops`].
//!
//! The real-daemon counterpart (actual `AF_UNIX` sockets, worker
//! threads and filesystem I/O) lives in the `norns-ipc` crate.
//!
//! ## Quick example (simulated)
//!
//! See `examples/quickstart.rs` at the workspace root for the full
//! Listing-2-style flow: build a world, register a dataspace and a
//! job, submit a memory-to-local-path task, and observe its stats.

pub mod controller;
pub mod error;
pub mod eta;
pub mod plugins;
pub mod queue;
pub mod resource;
pub mod sim;
pub mod task;

pub use controller::{ApiSource, Controller, DataspaceSpec, JobSpec};
pub use error::{NornsError, Result};
pub use eta::EtaEstimator;
pub use plugins::PluginKind;
pub use queue::{
    ArbitrationPolicy, Fcfs, JobFairShare, PendingTask, ShortestFirst, TaskQueue, WeightedPriority,
};
pub use resource::ResourceRef;
pub use sim::urd::{SimUrd, UrdStatus};
pub use sim::{
    handle_flow_complete, HasNorns, NornsWorld, RpcOutcome, RpcReply, RpcRequest, TaskCompletion,
    WorldConfig,
};
pub use task::{JobId, TaskId, TaskOp, TaskSpec, TaskState, TaskStats};
