//! Transfer plugin selection (paper Table II).
//!
//! "NORNS supports defining specific plugins to transfer data between a
//! pair of resource types, which allows developers to write high
//! performance data transfers based on the internals of each data
//! resource." The registry resolves a (source kind, sink kind) pair to
//! one of the six built-in plugins; each plugin describes the *shape*
//! of the transfer — the sequence of legs the simulation (or the real
//! daemon) must execute.

use crate::error::{NornsError, Result};
use crate::resource::ResourceRef;
use crate::task::{TaskOp, TaskSpec};

/// The six transfer plugins from Table II, plus local removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PluginKind {
    /// `process memory ⇒ local path`: `fallocate`+`mmap`, then
    /// `process_vm_readv` into the mapping.
    MemoryToLocal,
    /// `memory buffer ⇒ remote path`: stage to a local tmp mapping,
    /// send descriptor, target performs `RDMA_PULL`.
    MemoryToRemote,
    /// `memory buffer ⇐ remote path`: query target, `RDMA_PULL` into a
    /// local mapping, `process_vm_writev` into the caller.
    RemoteToMemory,
    /// `local path ⇒ local path`: `sendfile` between descriptors.
    LocalToLocal,
    /// `local path ⇒ remote path`: `mmap` source, send descriptor,
    /// target performs `RDMA_PULL`.
    LocalToRemote,
    /// `local path ⇐ remote path`: query target, `fallocate`+`mmap`,
    /// `RDMA_PULL` into the destination file.
    RemoteToLocal,
    /// `remove` of a local or remote path (not in Table II; task type).
    Removal,
}

impl PluginKind {
    /// Human-readable name matching the paper's table rows.
    pub fn name(self) -> &'static str {
        match self {
            PluginKind::MemoryToLocal => "process memory => local path",
            PluginKind::MemoryToRemote => "memory buffer => remote path",
            PluginKind::RemoteToMemory => "memory buffer <= remote path",
            PluginKind::LocalToLocal => "local path => local path",
            PluginKind::LocalToRemote => "local path => remote path",
            PluginKind::RemoteToLocal => "local path <= remote path",
            PluginKind::Removal => "removal",
        }
    }

    /// Does this plugin move data across the fabric?
    pub fn crosses_network(self) -> bool {
        matches!(
            self,
            PluginKind::MemoryToRemote
                | PluginKind::RemoteToMemory
                | PluginKind::LocalToRemote
                | PluginKind::RemoteToLocal
        )
    }

    /// Number of data-movement legs (the memory⇒remote plugin stages
    /// through a temporary local mapping first — two legs).
    pub fn legs(self) -> usize {
        match self {
            PluginKind::MemoryToRemote => 2,
            PluginKind::Removal => 0,
            _ => 1,
        }
    }
}

/// Resolve the plugin for a validated task spec.
///
/// Resolution errors mean the combination is unsupported (e.g.
/// remote⇒remote third-party transfers, which the paper's NORNS does
/// not implement either — the initiator must hold one side).
pub fn resolve(spec: &TaskSpec) -> Result<PluginKind> {
    if spec.op == TaskOp::Remove {
        return Ok(PluginKind::Removal);
    }
    let out = spec
        .output
        .as_ref()
        .ok_or_else(|| NornsError::BadArgs("transfer without output".into()))?;
    use ResourceRef::*;
    let kind = match (&spec.input, out) {
        (Memory { .. }, Local { .. }) => PluginKind::MemoryToLocal,
        (Memory { .. }, Remote { .. }) => PluginKind::MemoryToRemote,
        (Remote { .. }, Memory { .. }) => PluginKind::RemoteToMemory,
        (Local { .. }, Local { .. }) => PluginKind::LocalToLocal,
        (Local { .. }, Remote { .. }) => PluginKind::LocalToRemote,
        (Remote { .. }, Local { .. }) => PluginKind::RemoteToLocal,
        (Local { .. }, Memory { .. }) => {
            // Not a Table II plugin: applications read local files into
            // memory with plain mmap/read, no staging task needed.
            return Err(NornsError::BadArgs(
                "local-path-to-memory transfers are served by mmap, not NORNS".into(),
            ));
        }
        (Memory { .. }, Memory { .. }) => {
            return Err(NornsError::BadArgs("memory-to-memory unsupported".into()))
        }
        (Remote { .. }, Remote { .. }) => {
            return Err(NornsError::BadArgs(
                "third-party remote-to-remote transfers unsupported".into(),
            ))
        }
    };
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> ResourceRef {
        ResourceRef::memory(1 << 20)
    }

    fn local() -> ResourceRef {
        ResourceRef::local("pmdk0", "f")
    }

    fn remote() -> ResourceRef {
        ResourceRef::remote(3, "pmdk0", "f")
    }

    #[test]
    fn all_six_table_ii_rows_resolve() {
        let cases = [
            (mem(), local(), PluginKind::MemoryToLocal),
            (mem(), remote(), PluginKind::MemoryToRemote),
            (remote(), mem(), PluginKind::RemoteToMemory),
            (local(), local(), PluginKind::LocalToLocal),
            (local(), remote(), PluginKind::LocalToRemote),
            (remote(), local(), PluginKind::RemoteToLocal),
        ];
        for (input, output, expected) in cases {
            let spec = TaskSpec::copy(input, output);
            assert_eq!(resolve(&spec).unwrap(), expected);
        }
    }

    #[test]
    fn unsupported_combinations_rejected() {
        assert!(resolve(&TaskSpec::copy(mem(), mem())).is_err());
        assert!(resolve(&TaskSpec::copy(remote(), remote())).is_err());
    }

    #[test]
    fn remove_resolves_to_removal() {
        assert_eq!(
            resolve(&TaskSpec::remove(local())).unwrap(),
            PluginKind::Removal
        );
        assert_eq!(
            resolve(&TaskSpec::remove(remote())).unwrap(),
            PluginKind::Removal
        );
    }

    #[test]
    fn network_crossing_classification() {
        assert!(!PluginKind::MemoryToLocal.crosses_network());
        assert!(!PluginKind::LocalToLocal.crosses_network());
        assert!(PluginKind::MemoryToRemote.crosses_network());
        assert!(PluginKind::RemoteToMemory.crosses_network());
        assert!(PluginKind::LocalToRemote.crosses_network());
        assert!(PluginKind::RemoteToLocal.crosses_network());
    }

    #[test]
    fn leg_counts() {
        assert_eq!(
            PluginKind::MemoryToRemote.legs(),
            2,
            "staged through tmp mapping"
        );
        assert_eq!(PluginKind::LocalToRemote.legs(), 1);
        assert_eq!(PluginKind::Removal.legs(), 0);
    }

    #[test]
    fn names_are_table_rows() {
        assert_eq!(PluginKind::LocalToLocal.name(), "local path => local path");
        assert_eq!(
            PluginKind::RemoteToLocal.name(),
            "local path <= remote path"
        );
    }
}
