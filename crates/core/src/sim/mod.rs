//! Simulation driver for the NORNS service.
//!
//! [`NornsWorld`] is the complete simulated cluster state from NORNS'
//! point of view: the shared fluid-bandwidth network, the interconnect
//! fabric, every storage tier, and one [`SimUrd`] per compute node.
//! Top-level models (a plain benchmark world, or the Slurm simulator)
//! embed a `NornsWorld` and implement [`HasNorns`]; all operations are
//! generic free functions in [`ops`] so the same daemon logic serves
//! both.
//!
//! Flow completions are routed by tag: task flows encode
//! `(node, task)`; application flows (raw I/O issued by workload
//! models, outside NORNS) carry an app token.

pub mod ops;
pub mod plan;
pub mod urd;

use std::collections::HashMap;

use simcore::{CompletedFlow, FluidModel, FluidSystem, ResourceId, Sim, SimDuration};
use simnet::{Fabric, FabricParams, NodeId, RpcTiming};
use simstore::StorageSystem;

use crate::error::NornsError;
use crate::task::{JobId, TaskId, TaskSpec, TaskState, TaskStats};
use urd::{SimUrd, UrdStatus};

/// Tag bit marking application (non-NORNS) flows.
const APP_FLAG: u64 = 1 << 63;

pub(crate) fn task_tag(node: NodeId, task: TaskId) -> u64 {
    debug_assert!(node < (1 << 15), "node id too large for tag encoding");
    debug_assert!(task.0 < (1 << 48), "task id too large for tag encoding");
    ((node as u64) << 48) | task.0
}

pub(crate) fn app_tag(token: u64) -> u64 {
    debug_assert!(token < APP_FLAG);
    APP_FLAG | token
}

fn decode_tag(tag: u64) -> FlowOwner {
    if tag & APP_FLAG != 0 {
        FlowOwner::App {
            token: tag & !APP_FLAG,
        }
    } else {
        FlowOwner::Task {
            node: (tag >> 48) as NodeId,
            task: TaskId(tag & ((1 << 48) - 1)),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowOwner {
    Task { node: NodeId, task: TaskId },
    App { token: u64 },
}

/// Tunables of the simulated deployment.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// urd worker threads per node (concurrent transfers).
    pub workers_per_node: usize,
    /// Local AF_UNIX request round trip (client → accept thread →
    /// response), excluding queueing.
    pub ipc_latency: SimDuration,
    /// Per-node memory bandwidth available to staging memcpys.
    pub ram_bps: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            workers_per_node: 4,
            ipc_latency: SimDuration::from_micros(8),
            ram_bps: simcore::units::gib_per_s(12.0),
        }
    }
}

/// In-flight application I/O operation (raw tier access issued by a
/// workload model without going through NORNS).
#[derive(Debug)]
struct AppOp {
    outstanding: usize,
}

/// In-flight RPC bookkeeping at the target urd.
#[derive(Debug)]
pub(crate) struct RpcWork {
    pub token: u64,
    pub request: RpcRequest,
}

/// Control-plane requests a urd accepts from remote peers.
#[derive(Debug, Clone)]
pub enum RpcRequest {
    /// Submit a task on behalf of `job` (control-API trust level).
    Submit {
        job: JobId,
        spec: TaskSpec,
        tag: u64,
    },
    QueryTask {
        task: TaskId,
    },
    Status,
    /// Pure no-op request used by the request-rate benchmarks (the
    /// paper's Fig. 5 measures exactly this path: process, create
    /// descriptor, enqueue, respond).
    Ping,
}

/// Outcome delivered back to the RPC initiator.
#[derive(Debug, Clone)]
pub enum RpcOutcome {
    Submitted(TaskId),
    TaskStatus(TaskStats),
    Status(UrdStatus),
    Pong,
    Err(NornsError),
}

/// A completed RPC exchange.
#[derive(Debug, Clone)]
pub struct RpcReply {
    /// Caller-chosen correlation token.
    pub token: u64,
    /// The node that served the request.
    pub from: NodeId,
    pub outcome: RpcOutcome,
}

/// Notification that a task reached a terminal state.
#[derive(Debug, Clone)]
pub struct TaskCompletion {
    pub node: NodeId,
    pub task: TaskId,
    pub job: JobId,
    pub tag: u64,
    pub state: TaskState,
    pub stats: TaskStats,
    pub error: Option<NornsError>,
}

/// The complete simulated NORNS deployment.
pub struct NornsWorld {
    pub fluid: FluidSystem,
    pub fabric: Fabric,
    pub storage: StorageSystem,
    pub urds: Vec<SimUrd>,
    pub config: WorldConfig,
    pub rpc_timing: RpcTiming,
    /// Per-node RAM bandwidth resource for memory-plugin legs.
    ram: Vec<ResourceId>,
    app_ops: HashMap<u64, AppOp>,
    next_app_token: u64,
    rpc_inflight: HashMap<(NodeId, u64), RpcWork>,
    next_rpc_seq: u64,
}

impl NornsWorld {
    pub fn new(nodes: usize, fabric_params: FabricParams, config: WorldConfig) -> Self {
        let mut fluid = FluidSystem::new();
        let protocol = fabric_params.protocol;
        let fabric = Fabric::build(&mut fluid.net, nodes, fabric_params);
        let ram = (0..nodes)
            .map(|n| {
                fluid
                    .net
                    .add_resource(config.ram_bps, format!("node{n}.ram"))
            })
            .collect();
        let urds = (0..nodes)
            .map(|n| SimUrd::new(n, config.workers_per_node))
            .collect();
        NornsWorld {
            fluid,
            fabric,
            storage: StorageSystem::new(),
            urds,
            rpc_timing: RpcTiming::new(protocol),
            config,
            ram,
            app_ops: HashMap::new(),
            next_app_token: 1,
            rpc_inflight: HashMap::new(),
            next_rpc_seq: 1,
        }
    }

    pub fn nodes(&self) -> usize {
        self.urds.len()
    }

    pub fn urd(&self, node: NodeId) -> &SimUrd {
        &self.urds[node]
    }

    pub fn urd_mut(&mut self, node: NodeId) -> &mut SimUrd {
        &mut self.urds[node]
    }

    pub(crate) fn ram_resource(&self, node: NodeId) -> ResourceId {
        self.ram[node]
    }

    pub(crate) fn alloc_app_token(&mut self) -> u64 {
        let t = self.next_app_token;
        self.next_app_token += 1;
        t
    }

    pub(crate) fn alloc_rpc_seq(&mut self) -> u64 {
        let s = self.next_rpc_seq;
        self.next_rpc_seq += 1;
        s
    }
}

/// Implemented by every top-level simulation model embedding NORNS.
pub trait HasNorns: FluidModel {
    fn norns_mut(&mut self) -> &mut NornsWorld;

    /// A NORNS task reached a terminal state.
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion);

    /// A raw application I/O op (issued via [`ops::app_io`]) finished.
    fn on_app_io_complete(_sim: &mut Sim<Self>, _token: u64) {}

    /// A remote RPC issued via [`ops::rpc_call`] completed.
    fn on_rpc_reply(_sim: &mut Sim<Self>, _reply: RpcReply) {}
}

/// Entry point the top-level model's `FluidModel::on_flow_complete`
/// must delegate to.
pub fn handle_flow_complete<M: HasNorns>(sim: &mut Sim<M>, done: CompletedFlow) {
    match decode_tag(done.tag) {
        FlowOwner::Task { node, task } => ops::task_flow_finished(sim, node, task, &done),
        FlowOwner::App { token } => {
            let world = sim.model.norns_mut();
            let finished = match world.app_ops.get_mut(&token) {
                Some(op) => {
                    op.outstanding -= 1;
                    op.outstanding == 0
                }
                None => false,
            };
            if finished {
                world.app_ops.remove(&token);
                M::on_app_io_complete(sim, token);
            }
        }
    }
}

#[cfg(test)]
mod tag_tests {
    use super::*;

    #[test]
    fn task_tags_roundtrip() {
        let tag = task_tag(33, TaskId(123_456));
        assert_eq!(
            decode_tag(tag),
            FlowOwner::Task {
                node: 33,
                task: TaskId(123_456)
            }
        );
    }

    #[test]
    fn app_tags_roundtrip() {
        let tag = app_tag(987);
        assert_eq!(decode_tag(tag), FlowOwner::App { token: 987 });
    }

    #[test]
    fn tags_do_not_collide() {
        assert_ne!(task_tag(0, TaskId(1)), app_tag(1));
    }
}
