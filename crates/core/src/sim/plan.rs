//! Builds executable transfer plans from validated task specs.
//!
//! A plan is a sequence of [`PlannedLeg`]s; each leg carries a fixed
//! latency (RPC round trips, `fallocate`/`mmap` setup, MDS metadata
//! costs) followed by a set of fluid flows whose resource paths splice
//! together the source tier lanes, the fabric (with the protocol's
//! per-session cap) and the destination tier lanes — exactly the
//! resources the corresponding Table II plugin would exercise.

use std::collections::VecDeque;

use simcore::{ResourceId, Sim, SimDuration};
use simnet::{Direction, NodeId};
use simstore::{Cred, IoDir, IoShard, TierRef};

use crate::error::{NornsError, Result};
use crate::plugins::PluginKind;
use crate::resource::ResourceRef;
use crate::sim::urd::PlannedLeg;
use crate::sim::{HasNorns, NornsWorld};
use crate::task::{JobId, TaskId, TaskOp};

/// A resolved path-based task side.
#[derive(Debug, Clone)]
pub(crate) struct Side {
    pub tier: TierRef,
    pub node: NodeId,
    pub nsid: String,
    pub path: String,
}

/// Resolve a path resource to its tier + data node, validating that
/// the dataspace is registered on the node that holds the data.
pub(crate) fn resolve_side(
    world: &NornsWorld,
    handling_node: NodeId,
    r: &ResourceRef,
) -> Result<Side> {
    match r {
        ResourceRef::Memory { .. } => Err(NornsError::BadArgs("memory has no tier".into())),
        ResourceRef::Local { nsid, path } => {
            let ds = world.urds[handling_node].controller.dataspace(nsid)?;
            Ok(Side {
                tier: ds.tier,
                node: handling_node,
                nsid: nsid.clone(),
                path: path.clone(),
            })
        }
        ResourceRef::Remote { node, nsid, path } => {
            if *node >= world.nodes() {
                return Err(NornsError::BadArgs(format!("no such node: {node}")));
            }
            let ds = world.urds[*node].controller.dataspace(nsid)?;
            Ok(Side {
                tier: ds.tier,
                node: *node,
                nsid: nsid.clone(),
                path: path.clone(),
            })
        }
    }
}

/// The namespace node argument for a tier (`Some(node)` iff the tier
/// is node-local).
pub(crate) fn ns_node(world: &NornsWorld, tier: TierRef, node: NodeId) -> Option<usize> {
    if world.storage.kind(tier).is_node_local() {
        Some(node)
    } else {
        None
    }
}

/// Total bytes + file count under a path side.
pub(crate) fn side_bytes(world: &NornsWorld, side: &Side, cred: &Cred) -> Result<(u64, u64)> {
    let ns = world
        .storage
        .ns(side.tier, ns_node(world, side.tier, side.node));
    let files = ns.walk_files(&side.path, cred)?;
    let bytes = files.iter().map(|(_, s)| *s).sum();
    Ok((bytes, files.len() as u64))
}

/// Output of plan building.
pub(crate) struct BuiltPlan {
    pub legs: VecDeque<PlannedLeg>,
    pub total_bytes: u64,
    /// Quota charged at plan time: (node, nsid, bytes) — released if
    /// the task later fails.
    pub charged: Option<(NodeId, String, u64)>,
}

fn memory_shard(world: &NornsWorld, node: NodeId, bytes: u64) -> IoShard {
    IoShard {
        path: vec![world.ram_resource(node)],
        bytes,
    }
}

/// Append the node's memory-controller resource to tier-side shards:
/// staging traffic crosses DRAM once per node (page cache / memcpy),
/// which is what makes co-located applications feel staging (the
/// paper's Table IV HPCG experiment).
fn with_ram(world: &NornsWorld, node: NodeId, mut shards: Vec<IoShard>) -> Vec<IoShard> {
    let ram = world.ram_resource(node);
    for s in &mut shards {
        s.path.push(ram);
    }
    shards
}

/// Splice source shards, fabric path and destination shards into
/// concrete flows. The side with more shards drives the byte split.
fn compose(src: &[IoShard], fabric: &[ResourceId], dst: &[IoShard]) -> Vec<(Vec<ResourceId>, u64)> {
    assert!(!src.is_empty() && !dst.is_empty());
    let splice = |s: &IoShard, d: &IoShard, bytes: u64| {
        let mut path = Vec::with_capacity(s.path.len() + fabric.len() + d.path.len());
        path.extend_from_slice(&s.path);
        path.extend_from_slice(fabric);
        path.extend_from_slice(&d.path);
        (path, bytes)
    };
    if src.len() >= dst.len() {
        src.iter()
            .enumerate()
            .map(|(i, s)| splice(s, &dst[i % dst.len()], s.bytes))
            .collect()
    } else {
        dst.iter()
            .enumerate()
            .map(|(i, d)| splice(&src[i % src.len()], d, d.bytes))
            .collect()
    }
}

/// Build the plan for a dispatched task. Must run *before* any state
/// transition so failures can mark the task as errored cleanly.
pub(crate) fn build<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    task: TaskId,
) -> Result<BuiltPlan> {
    // Snapshot what we need from the record first.
    let (spec, cred, plugin, job) = {
        let rec = sim.model.norns_mut().urds[node]
            .task(task)
            .expect("planning unknown task");
        (rec.spec.clone(), rec.cred.clone(), rec.plugin, rec.job)
    };

    // Sample RPC latency up-front (needs &mut rng, disjoint from world).
    let timing = sim.model.norns_mut().rpc_timing;
    let rpc_rt = timing.round_trip(160, 64, sim.rng());

    let world = sim.model.norns_mut();
    match plugin {
        PluginKind::Removal => {
            let side = resolve_side(world, node, &spec.input)?;
            let (_, files) = side_bytes(world, &side, &cred)?;
            let latency = world.storage.setup_cost(side.tier, files.max(1));
            let latency = if spec.input.is_remote() {
                latency + rpc_rt
            } else {
                latency
            };
            Ok(BuiltPlan {
                legs: VecDeque::from([PlannedLeg {
                    label: "remove",
                    latency,
                    shards: vec![],
                }]),
                total_bytes: 0,
                charged: None,
            })
        }
        PluginKind::MemoryToLocal => {
            let bytes = match spec.input {
                ResourceRef::Memory { size } => size,
                _ => unreachable!("plugin resolution guarantees memory input"),
            };
            let out = spec.output.as_ref().expect("validated");
            let dst = resolve_side(world, node, out)?;
            let charged = charge_dst(world, job, &dst, bytes)?;
            let setup = world.storage.setup_cost(dst.tier, 1);
            let dst_shards = world
                .storage
                .plan_io(dst.tier, node, IoDir::Write, bytes, None);
            let src = [memory_shard(world, node, bytes)];
            Ok(BuiltPlan {
                legs: VecDeque::from([PlannedLeg {
                    label: "memcpy-to-local",
                    latency: setup,
                    shards: compose(&src, &[], &dst_shards),
                }]),
                total_bytes: bytes,
                charged,
            })
        }
        PluginKind::LocalToLocal => {
            let src = resolve_side(world, node, &spec.input)?;
            let dst = resolve_side(world, node, spec.output.as_ref().expect("validated"))?;
            let (bytes, files) = side_bytes(world, &src, &cred)?;
            check_dst_access(world, &dst, &cred)?;
            let charged = charge_dst(world, job, &dst, bytes)?;
            let latency = world.storage.setup_cost(src.tier, files)
                + world.storage.setup_cost(dst.tier, files);
            let src_shards = world
                .storage
                .plan_io(src.tier, node, IoDir::Read, bytes, None);
            let src_shards = with_ram(world, node, src_shards);
            let dst_shards = world
                .storage
                .plan_io(dst.tier, node, IoDir::Write, bytes, None);
            Ok(BuiltPlan {
                legs: VecDeque::from([PlannedLeg {
                    label: "sendfile",
                    latency,
                    shards: compose(&src_shards, &[], &dst_shards),
                }]),
                total_bytes: bytes,
                charged,
            })
        }
        PluginKind::LocalToRemote => {
            let src = resolve_side(world, node, &spec.input)?;
            let dst = resolve_side(world, node, spec.output.as_ref().expect("validated"))?;
            let (bytes, files) = side_bytes(world, &src, &cred)?;
            check_dst_access(world, &dst, &cred)?;
            let charged = charge_dst(world, job, &dst, bytes)?;
            let latency = rpc_rt
                + world.storage.setup_cost(src.tier, files)
                + world.storage.setup_cost(dst.tier, files);
            let src_shards = world
                .storage
                .plan_io(src.tier, src.node, IoDir::Read, bytes, None);
            let src_shards = with_ram(world, src.node, src_shards);
            let dst_shards = world
                .storage
                .plan_io(dst.tier, dst.node, IoDir::Write, bytes, None);
            let dst_shards = with_ram(world, dst.node, dst_shards);
            let fabric = {
                let NornsWorld { fabric, fluid, .. } = world;
                fabric.transfer_path(&mut fluid.net, src.node, dst.node, node, Direction::Push)
            };
            Ok(BuiltPlan {
                legs: VecDeque::from([PlannedLeg {
                    label: "mmap+rdma-pull-by-target",
                    latency,
                    shards: compose(&src_shards, &fabric, &dst_shards),
                }]),
                total_bytes: bytes,
                charged,
            })
        }
        PluginKind::RemoteToLocal => {
            let src = resolve_side(world, node, &spec.input)?;
            let dst = resolve_side(world, node, spec.output.as_ref().expect("validated"))?;
            let (bytes, files) = side_bytes(world, &src, &cred)?;
            check_dst_access(world, &dst, &cred)?;
            let charged = charge_dst(world, job, &dst, bytes)?;
            let latency = rpc_rt
                + world.storage.setup_cost(src.tier, files)
                + world.storage.setup_cost(dst.tier, files);
            let src_shards = world
                .storage
                .plan_io(src.tier, src.node, IoDir::Read, bytes, None);
            let src_shards = with_ram(world, src.node, src_shards);
            let dst_shards = world
                .storage
                .plan_io(dst.tier, dst.node, IoDir::Write, bytes, None);
            let dst_shards = with_ram(world, dst.node, dst_shards);
            let fabric = {
                let NornsWorld { fabric, fluid, .. } = world;
                fabric.transfer_path(&mut fluid.net, src.node, dst.node, node, Direction::Pull)
            };
            Ok(BuiltPlan {
                legs: VecDeque::from([PlannedLeg {
                    label: "query+rdma-pull",
                    latency,
                    shards: compose(&src_shards, &fabric, &dst_shards),
                }]),
                total_bytes: bytes,
                charged,
            })
        }
        PluginKind::MemoryToRemote => {
            let bytes = match spec.input {
                ResourceRef::Memory { size } => size,
                _ => unreachable!("plugin resolution guarantees memory input"),
            };
            let dst = resolve_side(world, node, spec.output.as_ref().expect("validated"))?;
            check_dst_access(world, &dst, &cred)?;
            let charged = charge_dst(world, job, &dst, bytes)?;
            let dst_setup = world.storage.setup_cost(dst.tier, 1);
            let dst_shards = world
                .storage
                .plan_io(dst.tier, dst.node, IoDir::Write, bytes, None);
            let dst_shards = with_ram(world, dst.node, dst_shards);
            let fabric = {
                let NornsWorld { fabric, fluid, .. } = world;
                fabric.transfer_path(&mut fluid.net, node, dst.node, node, Direction::Push)
            };
            let src = [memory_shard(world, node, bytes)];
            let tmp = [memory_shard(world, node, bytes)];
            Ok(BuiltPlan {
                legs: VecDeque::from([
                    PlannedLeg {
                        label: "stage-to-tmp",
                        latency: SimDuration::from_micros(5),
                        shards: compose(&src, &[], &tmp),
                    },
                    PlannedLeg {
                        label: "rdma-pull-by-target",
                        latency: rpc_rt + dst_setup,
                        shards: compose(&tmp, &fabric, &dst_shards),
                    },
                ]),
                total_bytes: bytes,
                charged,
            })
        }
        PluginKind::RemoteToMemory => {
            let src = resolve_side(world, node, &spec.input)?;
            let (bytes, files) = side_bytes(world, &src, &cred)?;
            let latency = rpc_rt + world.storage.setup_cost(src.tier, files);
            let src_shards = world
                .storage
                .plan_io(src.tier, src.node, IoDir::Read, bytes, None);
            let src_shards = with_ram(world, src.node, src_shards);
            let fabric = {
                let NornsWorld { fabric, fluid, .. } = world;
                fabric.transfer_path(&mut fluid.net, src.node, node, node, Direction::Pull)
            };
            let dst = [memory_shard(world, node, bytes)];
            Ok(BuiltPlan {
                legs: VecDeque::from([PlannedLeg {
                    label: "rdma-pull-to-memory",
                    latency,
                    shards: compose(&src_shards, &fabric, &dst),
                }]),
                total_bytes: bytes,
                charged: None,
            })
        }
    }
}

/// Verify the destination tier has room and that the namespace will
/// accept the write (capacity check; permissions are enforced again at
/// effect time).
fn check_dst_access(world: &NornsWorld, dst: &Side, _cred: &Cred) -> Result<()> {
    let ns = world
        .storage
        .ns(dst.tier, ns_node(world, dst.tier, dst.node));
    // A later overwrite may need less space; this is the conservative
    // check urd performs before launching the transfer.
    let _ = ns;
    Ok(())
}

/// Charge the destination quota for the job at plan time.
fn charge_dst(
    world: &mut NornsWorld,
    job: JobId,
    dst: &Side,
    bytes: u64,
) -> Result<Option<(NodeId, String, u64)>> {
    // Capacity check on the destination namespace.
    let ns = world
        .storage
        .ns(dst.tier, ns_node(world, dst.tier, dst.node));
    if bytes > ns.available() {
        return Err(NornsError::NoSpace {
            requested: bytes,
            available: ns.available(),
        });
    }
    world.urds[dst.node]
        .controller
        .charge(job, &dst.nsid, bytes)?;
    Ok(Some((dst.node, dst.nsid.clone(), bytes)))
}

/// Apply the namespace effects of a successfully transferred task.
pub(crate) fn apply_effects(
    world: &mut NornsWorld,
    node: NodeId,
    job: JobId,
    spec: &crate::task::TaskSpec,
    cred: &Cred,
) -> Result<()> {
    match spec.op {
        TaskOp::Copy | TaskOp::Move => {
            let out = spec.output.as_ref().expect("validated");
            if !out.is_memory() {
                let dst = resolve_side(world, node, out)?;
                // Collect the source layout.
                let listing: Vec<(String, u64)> = match &spec.input {
                    ResourceRef::Memory { size } => vec![(String::new(), *size)],
                    input => {
                        let src = resolve_side(world, node, input)?;
                        let ns = world
                            .storage
                            .ns(src.tier, ns_node(world, src.tier, src.node));
                        ns.walk_files(&src.path, cred)?
                    }
                };
                let dst_node = ns_node(world, dst.tier, dst.node);
                let ns = world.storage.ns_mut(dst.tier, dst_node);
                for (rel, size) in &listing {
                    let target = if rel.is_empty() {
                        dst.path.clone()
                    } else {
                        format!("{}/{}", dst.path.trim_end_matches('/'), rel)
                    };
                    ns.write_file(&target, *size, cred, simstore::Mode(0o644))?;
                }
            }
            if spec.op == TaskOp::Move {
                let src = resolve_side(world, node, &spec.input)?;
                let src_node = ns_node(world, src.tier, src.node);
                let freed = world
                    .storage
                    .ns_mut(src.tier, src_node)
                    .remove(&src.path, cred, true)?;
                world.urds[src.node]
                    .controller
                    .release(job, &src.nsid, freed);
            }
            Ok(())
        }
        TaskOp::Remove => {
            let side = resolve_side(world, node, &spec.input)?;
            let side_node = ns_node(world, side.tier, side.node);
            let freed = world
                .storage
                .ns_mut(side.tier, side_node)
                .remove(&side.path, cred, true)?;
            world.urds[side.node]
                .controller
                .release(job, &side.nsid, freed);
            Ok(())
        }
    }
}
