//! The NORNS operations, generic over any model embedding a
//! [`NornsWorld`].
//!
//! Functions here mirror the two API surfaces of Table I:
//!
//! | paper (C)                           | here                         |
//! |-------------------------------------|------------------------------|
//! | `nornsctl_register_dataspace`       | [`register_dataspace`]       |
//! | `nornsctl_unregister_dataspace`     | [`unregister_dataspace`]     |
//! | `nornsctl_register_job`             | [`register_job`]             |
//! | `nornsctl_update_job`               | [`update_job`]               |
//! | `nornsctl_unregister_job`           | [`unregister_job`]           |
//! | `nornsctl_add_process`              | [`add_process`]              |
//! | `nornsctl_remove_process`           | [`remove_process`]           |
//! | `nornsctl_submit` / `norns_submit`  | [`submit_task`]              |
//! | `nornsctl_status`                   | [`daemon_status`]            |
//! | `norns_get_dataspace_info`          | [`dataspace_info`]           |
//! | `norns_error` / `norns_wait` result | [`task_stats`], completions  |
//! | E.T.A. tracking (§IV-A)             | [`task_eta`], [`drain_eta`]  |
//!
//! Waiting is event-driven in the simulator: callers receive
//! [`super::TaskCompletion`] through [`HasNorns::on_task_complete`]
//! instead of blocking.

use simcore::{CompletedFlow, FlowSpec, Sim, SimDuration, SimTime};
use simnet::NodeId;
use simstore::{Cred, IoDir, TierRef};

use crate::controller::{ApiSource, DataspaceSpec, JobSpec};
use crate::error::{NornsError, Result};
use crate::plugins;
use crate::sim::urd::{PlannedLeg, UrdStatus};
use crate::sim::{app_tag, task_tag, HasNorns, RpcOutcome, RpcReply, RpcRequest, TaskCompletion};
use crate::task::{JobId, TaskId, TaskSpec, TaskState, TaskStats};

// ---------------------------------------------------------------- //
// Registration (control API)
// ---------------------------------------------------------------- //

/// Register a dataspace on `node`, backed by the storage tier named
/// `tier_name` (`backend_init` + `register_dataspace` in Table I).
pub fn register_dataspace<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    nsid: &str,
    tier_name: &str,
    tracked: bool,
) -> Result<()> {
    let world = sim.model.norns_mut();
    let tier = world
        .storage
        .resolve(tier_name)
        .ok_or_else(|| NornsError::NoSuchDataspace(tier_name.to_string()))?;
    world.urds[node]
        .controller
        .register_dataspace(DataspaceSpec {
            nsid: nsid.to_string(),
            tier,
            tracked,
        })
}

pub fn unregister_dataspace<M: HasNorns>(sim: &mut Sim<M>, node: NodeId, nsid: &str) -> Result<()> {
    sim.model.norns_mut().urds[node]
        .controller
        .unregister_dataspace(nsid)
        .map(|_| ())
}

/// Register a job on every one of its hosts.
pub fn register_job<M: HasNorns>(sim: &mut Sim<M>, spec: JobSpec) -> Result<()> {
    let world = sim.model.norns_mut();
    for host in spec.hosts.clone() {
        world.urds[host].controller.register_job(spec.clone())?;
    }
    Ok(())
}

pub fn update_job<M: HasNorns>(sim: &mut Sim<M>, spec: JobSpec) -> Result<()> {
    let world = sim.model.norns_mut();
    for host in spec.hosts.clone() {
        world.urds[host].controller.update_job(spec.clone())?;
    }
    Ok(())
}

/// Unregister a job from all of `hosts`. Returns, per host, the
/// tracked dataspaces that still hold data (the paper's "non-empty
/// dataspace" report at node release).
pub fn unregister_job<M: HasNorns>(
    sim: &mut Sim<M>,
    job: JobId,
    hosts: &[NodeId],
) -> Result<Vec<(NodeId, Vec<String>)>> {
    let world = sim.model.norns_mut();
    let mut leftovers = Vec::new();
    for &host in hosts {
        let non_empty = non_empty_tracked(world, host);
        if !non_empty.is_empty() {
            leftovers.push((host, non_empty));
        }
        world.urds[host].controller.unregister_job(job)?;
    }
    Ok(leftovers)
}

fn non_empty_tracked(world: &super::NornsWorld, node: NodeId) -> Vec<String> {
    let mut out = Vec::new();
    for ds in world.urds[node].controller.tracked_dataspaces() {
        let ns_node = super::plan::ns_node(world, ds.tier, node);
        let ns = world.storage.ns(ds.tier, ns_node);
        if ns.used() > 0 {
            out.push(ds.nsid.clone());
        }
    }
    out
}

pub fn add_process<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    job: JobId,
    pid: u64,
    cred: Cred,
) -> Result<()> {
    sim.model.norns_mut().urds[node]
        .controller
        .add_process(job, pid, cred)
}

pub fn remove_process<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    job: JobId,
    pid: u64,
) -> Result<()> {
    sim.model.norns_mut().urds[node]
        .controller
        .remove_process(job, pid)
}

// ---------------------------------------------------------------- //
// Task submission and monitoring
// ---------------------------------------------------------------- //

/// Submit an I/O task to the urd on `node`. Validation (job, process,
/// dataspace grants, request shape) happens synchronously, as in the
/// real daemon; the transfer itself runs asynchronously. Returns the
/// task id to monitor.
pub fn submit_task<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    job: JobId,
    source: ApiSource,
    spec: TaskSpec,
    tag: u64,
) -> Result<TaskId> {
    let now = sim.now();
    let world = sim.model.norns_mut();
    let urd = &mut world.urds[node];
    if !urd.accepting() {
        return Err(NornsError::NotAccepting);
    }
    let cred = urd.controller.validate(job, source, &spec)?;
    let plugin = plugins::resolve(&spec)?;
    let id = urd.alloc_task_id();
    // Size estimate for size-aware arbitration policies: memory sizes
    // are declared; path sizes come from a best-effort stat (the real
    // daemon stats sources at submission too).
    let est = match &spec.input {
        crate::resource::ResourceRef::Memory { size } => *size,
        input => super::plan::resolve_side(world, node, input)
            .ok()
            .and_then(|side| super::plan::side_bytes(world, &side, &cred).ok())
            .map(|(bytes, _)| bytes)
            .unwrap_or(0),
    };
    let urd = &mut world.urds[node];
    urd.tasks.insert(
        id,
        super::urd::TaskRecord {
            id,
            job,
            spec,
            cred,
            tag,
            state: TaskState::Pending,
            plugin,
            total_bytes: est,
            moved_bytes: 0,
            submitted: now,
            started: None,
            finished: None,
            error: None,
            charged: None,
            exec: Default::default(),
        },
    );
    let priority = urd
        .task(id)
        .map(|r| r.spec.priority)
        .expect("just inserted");
    urd.queue.enqueue_prio(id, job, est, priority, now);
    maybe_dispatch(sim, node);
    Ok(id)
}

/// Latest stats snapshot for a task.
pub fn task_stats<M: HasNorns>(sim: &mut Sim<M>, node: NodeId, task: TaskId) -> Result<TaskStats> {
    sim.model.norns_mut().urds[node]
        .task(task)
        .map(|r| r.stats())
        .ok_or(NornsError::NoSuchTask(task.0))
}

/// Current E.T.A. for a task (§IV-A).
pub fn task_eta<M: HasNorns>(sim: &mut Sim<M>, node: NodeId, task: TaskId) -> Result<SimTime> {
    let now = sim.now();
    sim.model.norns_mut().urds[node]
        .task_eta(task, now)
        .ok_or(NornsError::NoSuchTask(task.0))
}

/// When will all staging on `node` drain (used by the scheduler to
/// plan node reuse).
pub fn drain_eta<M: HasNorns>(sim: &mut Sim<M>, node: NodeId) -> SimTime {
    let now = sim.now();
    sim.model.norns_mut().urds[node].drain_eta(now)
}

/// `nornsctl_status`.
pub fn daemon_status<M: HasNorns>(sim: &mut Sim<M>, node: NodeId) -> UrdStatus {
    sim.model.norns_mut().urds[node].status()
}

/// `norns_get_dataspace_info`: dataspace ids visible on a node.
pub fn dataspace_info<M: HasNorns>(sim: &mut Sim<M>, node: NodeId) -> Vec<String> {
    let mut v: Vec<String> = sim.model.norns_mut().urds[node]
        .controller
        .dataspaces()
        .map(|d| d.nsid.clone())
        .collect();
    v.sort();
    v
}

/// Pause/resume request acceptance (`nornsctl_send_command`).
pub fn set_accepting<M: HasNorns>(sim: &mut Sim<M>, node: NodeId, on: bool) {
    sim.model.norns_mut().urds[node].set_accepting(on);
}

// ---------------------------------------------------------------- //
// Execution machinery
// ---------------------------------------------------------------- //

pub(crate) fn maybe_dispatch<M: HasNorns>(sim: &mut Sim<M>, node: NodeId) {
    loop {
        let picked = sim.model.norns_mut().urds[node].queue.dispatch();
        let Some(pending) = picked else { return };
        let task = pending.task;
        match super::plan::build(sim, node, task) {
            Ok(built) => {
                let now = sim.now();
                let rec = sim.model.norns_mut().urds[node]
                    .task_mut(task)
                    .expect("dispatched task exists");
                rec.state = TaskState::InProgress;
                rec.started = Some(now);
                rec.total_bytes = built.total_bytes;
                rec.exec.legs = built.legs;
                if let Some((cnode, nsid, bytes)) = built.charged {
                    rec.charged = Some((cnode, nsid, bytes));
                }
                start_next_leg(sim, node, task);
            }
            Err(e) => {
                let now = sim.now();
                let rec = sim.model.norns_mut().urds[node]
                    .task_mut(task)
                    .expect("dispatched task exists");
                rec.state = TaskState::InProgress;
                rec.started = Some(now);
                complete_task(sim, node, task, Some(e));
            }
        }
    }
}

fn start_next_leg<M: HasNorns>(sim: &mut Sim<M>, node: NodeId, task: TaskId) {
    let leg = {
        let rec = sim.model.norns_mut().urds[node]
            .task_mut(task)
            .expect("running task");
        rec.exec.legs.pop_front()
    };
    match leg {
        None => complete_task(sim, node, task, None),
        Some(PlannedLeg {
            latency, shards, ..
        }) => {
            if latency > SimDuration::ZERO {
                sim.schedule_in(latency, move |sim| launch_shards(sim, node, task, shards));
            } else {
                launch_shards(sim, node, task, shards);
            }
        }
    }
}

fn launch_shards<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    task: TaskId,
    shards: Vec<(Vec<simcore::ResourceId>, u64)>,
) {
    if shards.is_empty() {
        // Metadata-only leg (removal).
        start_next_leg(sim, node, task);
        return;
    }
    {
        let rec = sim.model.norns_mut().urds[node]
            .task_mut(task)
            .expect("running task");
        rec.exec.outstanding = shards.len();
    }
    let tag = task_tag(node, task);
    for (path, bytes) in shards {
        simcore::start_flow(sim, FlowSpec::new(bytes as f64, path).with_tag(tag));
    }
}

/// Called from [`super::handle_flow_complete`] for task-owned flows.
pub(crate) fn task_flow_finished<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    task: TaskId,
    done: &CompletedFlow,
) {
    let leg_done = {
        let Some(rec) = sim.model.norns_mut().urds[node].task_mut(task) else {
            return; // task vanished (should not happen)
        };
        rec.moved_bytes += done.bytes as u64;
        rec.exec.outstanding -= 1;
        rec.exec.outstanding == 0
    };
    if leg_done {
        start_next_leg(sim, node, task);
    }
}

fn complete_task<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    task: TaskId,
    error: Option<NornsError>,
) {
    let now = sim.now();
    // Apply namespace effects on success.
    let (spec, cred, job, plugin, charged) = {
        let rec = sim.model.norns_mut().urds[node]
            .task(task)
            .expect("completing task");
        (
            rec.spec.clone(),
            rec.cred.clone(),
            rec.job,
            rec.plugin,
            rec.charged.clone(),
        )
    };
    let error = match error {
        Some(e) => Some(e),
        None => {
            let world = sim.model.norns_mut();
            super::plan::apply_effects(world, node, job, &spec, &cred).err()
        }
    };
    // On failure, release any quota charged at plan time.
    if error.is_some() {
        if let Some((cnode, nsid, bytes)) = &charged {
            let world = sim.model.norns_mut();
            world.urds[*cnode].controller.release(job, nsid, *bytes);
        }
    }

    let completion = {
        let urd = &mut sim.model.norns_mut().urds[node];
        let elapsed = {
            let rec = urd.task_mut(task).expect("completing task");
            rec.finished = Some(now);
            rec.state = if error.is_some() {
                TaskState::FinishedWithError
            } else {
                TaskState::Finished
            };
            rec.error = error.clone();
            rec.started.map(|s| now - s)
        };
        if error.is_none() {
            if let Some(elapsed) = elapsed {
                let bytes = urd.task(task).map(|r| r.moved_bytes).unwrap_or(0);
                urd.eta.observe(plugin, bytes, elapsed);
            }
        }
        urd.queue.finish();
        urd.record_completion();
        let rec = urd.task(task).expect("completing task");
        TaskCompletion {
            node,
            task,
            job,
            tag: rec.tag,
            state: rec.state,
            stats: rec.stats(),
            error,
        }
    };
    M::on_task_complete(sim, completion);
    // Flatten recursion: dispatch follow-up work on a fresh event.
    sim.schedule_now(move |sim| maybe_dispatch(sim, node));
}

// ---------------------------------------------------------------- //
// Raw application I/O (outside NORNS)
// ---------------------------------------------------------------- //

/// Issue raw application I/O from `node` against a tier, bypassing
/// NORNS — this is how workload models generate ordinary POSIX traffic
/// (the paper's baseline runs). Completion is reported through
/// [`HasNorns::on_app_io_complete`] with the returned token.
pub fn app_io<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    tier_name: &str,
    dir: IoDir,
    bytes: u64,
    files: u64,
    stripe: Option<usize>,
) -> Result<u64> {
    let world = sim.model.norns_mut();
    let tier = world
        .storage
        .resolve(tier_name)
        .ok_or_else(|| NornsError::NoSuchDataspace(tier_name.to_string()))?;
    let token = world.alloc_app_token();
    let shards = world.storage.plan_io(tier, node, dir, bytes, stripe);
    let setup = world.storage.setup_cost(tier, files.max(1));
    world.app_ops.insert(
        token,
        super::AppOp {
            outstanding: shards.len(),
        },
    );
    let tag = app_tag(token);
    sim.schedule_in(setup, move |sim| {
        for shard in shards {
            simcore::start_flow(
                sim,
                FlowSpec::new(shard.bytes as f64, shard.path).with_tag(tag),
            );
        }
    });
    Ok(token)
}

/// Collective I/O against one shared striped file: the OST set is
/// allocated once and every node's stream hits exactly those OSTs
/// (unlike [`app_io`], where each call gets its own allocation). This
/// is the semantics of a single-shared-file MPI-IO benchmark. Returns
/// one token per node.
pub fn app_shared_io<M: HasNorns>(
    sim: &mut Sim<M>,
    nodes: &[NodeId],
    tier_name: &str,
    dir: IoDir,
    bytes_per_node: u64,
    stripe: Option<usize>,
) -> Result<Vec<u64>> {
    let world = sim.model.norns_mut();
    let tier = world
        .storage
        .resolve(tier_name)
        .ok_or_else(|| NornsError::NoSuchDataspace(tier_name.to_string()))?;
    let osts = world.storage.allocate_osts(tier, stripe);
    let mut tokens = Vec::with_capacity(nodes.len());
    for &node in nodes {
        let world = sim.model.norns_mut();
        let token = world.alloc_app_token();
        let shards = if osts.is_empty() {
            world
                .storage
                .plan_io(tier, node, dir, bytes_per_node, stripe)
        } else {
            world
                .storage
                .plan_io_fixed(tier, node, dir, bytes_per_node, &osts)
        };
        world.app_ops.insert(
            token,
            super::AppOp {
                outstanding: shards.len(),
            },
        );
        let tag = app_tag(token);
        let setup = world.storage.setup_cost(tier, 1);
        sim.schedule_in(setup, move |sim| {
            for shard in shards {
                simcore::start_flow(
                    sim,
                    FlowSpec::new(shard.bytes as f64, shard.path).with_tag(tag),
                );
            }
        });
        tokens.push(token);
    }
    Ok(tokens)
}

/// A sustained memory-bandwidth consumer on `node` (outside NORNS):
/// workload models use this for memory-bound compute kernels (HPCG).
/// The kernel processes `bytes` of memory traffic at up to
/// `demand_bps`; co-located staging shares the same memory controller,
/// so the kernel stretches exactly when transfers are active — the
/// paper's Table IV mechanism.
pub fn app_mem_io<M: HasNorns>(
    sim: &mut Sim<M>,
    node: NodeId,
    bytes: u64,
    demand_bps: f64,
) -> Result<u64> {
    let world = sim.model.norns_mut();
    let token = world.alloc_app_token();
    let path = vec![world.ram_resource(node)];
    world.app_ops.insert(token, super::AppOp { outstanding: 1 });
    let tag = app_tag(token);
    simcore::start_flow(
        sim,
        FlowSpec::new(bytes as f64, path)
            .with_cap(demand_bps)
            .with_tag(tag),
    );
    Ok(token)
}

/// Raw node-to-node transfer outside NORNS (e.g. MPI traffic models).
pub fn app_net_io<M: HasNorns>(
    sim: &mut Sim<M>,
    from: NodeId,
    to: NodeId,
    bytes: u64,
) -> Result<u64> {
    let world = sim.model.norns_mut();
    let token = world.alloc_app_token();
    let path = world.fabric.raw_path(from, to);
    if path.is_empty() {
        return Err(NornsError::BadArgs(
            "app_net_io requires distinct nodes".into(),
        ));
    }
    world.app_ops.insert(token, super::AppOp { outstanding: 1 });
    let tag = app_tag(token);
    simcore::start_flow(sim, FlowSpec::new(bytes as f64, path).with_tag(tag));
    Ok(token)
}

// ---------------------------------------------------------------- //
// Remote RPC (urd ↔ urd control plane)
// ---------------------------------------------------------------- //

/// Issue a control RPC from `from` to the urd on `to`. The reply is
/// delivered through [`HasNorns::on_rpc_reply`] with `token`.
pub fn rpc_call<M: HasNorns>(
    sim: &mut Sim<M>,
    from: NodeId,
    to: NodeId,
    request: RpcRequest,
    token: u64,
) {
    let timing = sim.model.norns_mut().rpc_timing;
    let latency = timing.one_way(160, sim.rng());
    sim.schedule_in(latency, move |sim| {
        rpc_arrive(sim, from, to, request, token)
    });
}

fn rpc_arrive<M: HasNorns>(
    sim: &mut Sim<M>,
    _from: NodeId,
    to: NodeId,
    request: RpcRequest,
    token: u64,
) {
    let now = sim.now();
    let mean = sim.model.norns_mut().urds[to].request_service_mean;
    let svc = SimDuration::from_secs_f64(sim.rng().exponential(mean.as_secs_f64().max(1e-9)));
    let world = sim.model.norns_mut();
    let seq = world.alloc_rpc_seq();
    world
        .rpc_inflight
        .insert((to, seq), super::RpcWork { token, request });
    let urd = &mut world.urds[to];
    urd.rpc_server
        .submit(now, seq, svc, &mut urd.rpc_pending_svc);
    rearm_rpc(sim, to);
}

fn rearm_rpc<M: HasNorns>(sim: &mut Sim<M>, node: NodeId) {
    let (old, next) = {
        let urd = &mut sim.model.norns_mut().urds[node];
        (urd.rpc_tick, urd.rpc_server.next_completion())
    };
    sim.cancel(old);
    let id = match next {
        Some(t) => sim.schedule_at(t, move |sim| rpc_tick(sim, node)),
        None => simcore::EventId::NONE,
    };
    sim.model.norns_mut().urds[node].rpc_tick = id;
}

fn rpc_tick<M: HasNorns>(sim: &mut Sim<M>, node: NodeId) {
    let now = sim.now();
    let served = {
        let urd = &mut sim.model.norns_mut().urds[node];
        urd.rpc_tick = simcore::EventId::NONE;
        let served = urd.rpc_server.complete_due(now);
        urd.rpc_server.try_start(now, &mut urd.rpc_pending_svc);
        served
    };
    rearm_rpc(sim, node);
    let timing = sim.model.norns_mut().rpc_timing;
    for s in served {
        let work = sim.model.norns_mut().rpc_inflight.remove(&(node, s.tag));
        let Some(work) = work else { continue };
        let outcome = process_request(sim, node, work.request);
        let latency = timing.one_way(64, sim.rng());
        let reply = RpcReply {
            token: work.token,
            from: node,
            outcome,
        };
        sim.schedule_in(latency, move |sim| M::on_rpc_reply(sim, reply));
    }
}

fn process_request<M: HasNorns>(sim: &mut Sim<M>, node: NodeId, req: RpcRequest) -> RpcOutcome {
    match req {
        RpcRequest::Ping => RpcOutcome::Pong,
        RpcRequest::Status => RpcOutcome::Status(sim.model.norns_mut().urds[node].status()),
        RpcRequest::QueryTask { task } => match sim.model.norns_mut().urds[node].task(task) {
            Some(rec) => RpcOutcome::TaskStatus(rec.stats()),
            None => RpcOutcome::Err(NornsError::NoSuchTask(task.0)),
        },
        RpcRequest::Submit { job, spec, tag } => {
            match submit_task(sim, node, job, ApiSource::Control, spec, tag) {
                Ok(id) => RpcOutcome::Submitted(id),
                Err(e) => RpcOutcome::Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Helpers used by testbeds
// ---------------------------------------------------------------- //

/// Look up a tier by name, for direct namespace manipulation in
/// workload setup code.
pub fn tier<M: HasNorns>(sim: &mut Sim<M>, name: &str) -> Result<TierRef> {
    sim.model
        .norns_mut()
        .storage
        .resolve(name)
        .ok_or_else(|| NornsError::NoSuchDataspace(name.to_string()))
}
