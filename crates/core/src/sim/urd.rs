//! The simulated `urd` daemon instance living on each compute node.
//!
//! Holds the components of Fig. 3: the job & dataspace controller, the
//! task queue with its arbitration policy, the completion records, the
//! E.T.A. estimator and a FIFO "accept thread" server that models
//! request-processing latency for RPC experiments.

use std::collections::HashMap;

use simcore::{EventId, FifoServer, SimDuration, SimTime};
use simnet::NodeId;
use simstore::Cred;

use crate::controller::Controller;
use crate::error::NornsError;
use crate::eta::EtaEstimator;
use crate::plugins::PluginKind;
use crate::queue::TaskQueue;
use crate::task::{JobId, TaskId, TaskSpec, TaskState, TaskStats};

/// One leg of a planned transfer (built by `sim::plan`).
#[derive(Debug, Clone)]
pub struct PlannedLeg {
    pub label: &'static str,
    /// Fixed pre-leg latency (RPC round trips, fallocate/mmap setup,
    /// MDS operations).
    pub latency: SimDuration,
    /// Flows to launch for this leg: (resource path, bytes).
    pub shards: Vec<(Vec<simcore::ResourceId>, u64)>,
}

/// Execution progress of a running task.
#[derive(Debug, Default)]
pub(crate) struct ExecState {
    /// Legs not yet started.
    pub legs: std::collections::VecDeque<PlannedLeg>,
    /// Outstanding flows in the currently running leg.
    pub outstanding: usize,
}

/// Everything urd knows about one task.
#[derive(Debug)]
pub struct TaskRecord {
    pub id: TaskId,
    pub job: JobId,
    pub spec: TaskSpec,
    pub cred: Cred,
    /// Caller correlation tag (the scheduler uses it to map staging
    /// operations back to workflow steps).
    pub tag: u64,
    pub state: TaskState,
    pub plugin: PluginKind,
    pub total_bytes: u64,
    pub moved_bytes: u64,
    pub submitted: SimTime,
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
    pub error: Option<NornsError>,
    /// Quota charged at plan time: (node, nsid, bytes); released on
    /// task failure.
    pub(crate) charged: Option<(NodeId, String, u64)>,
    pub(crate) exec: ExecState,
}

impl TaskRecord {
    pub fn stats(&self) -> TaskStats {
        TaskStats {
            state: self.state,
            bytes_total: self.total_bytes,
            bytes_moved: self.moved_bytes,
            submitted: self.submitted,
            started: self.started,
            finished: self.finished,
        }
    }
}

/// Daemon status snapshot (mirrors `nornsctl_status`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrdStatus {
    pub accepting: bool,
    pub pending_tasks: usize,
    pub running_tasks: usize,
    pub completed_tasks: u64,
    pub registered_jobs: usize,
    pub registered_dataspaces: usize,
}

/// The per-node daemon state.
pub struct SimUrd {
    pub node: NodeId,
    pub controller: Controller,
    pub queue: TaskQueue,
    pub eta: EtaEstimator,
    pub(crate) tasks: HashMap<TaskId, TaskRecord>,
    next_task: u64,
    accepting: bool,
    completed: u64,
    /// Models the single epoll accept thread from Fig. 3 for the
    /// request-rate experiments.
    pub(crate) rpc_server: FifoServer,
    pub(crate) rpc_pending_svc: Vec<(u64, SimDuration)>,
    pub(crate) rpc_tick: EventId,
    /// Mean request-processing time of the accept thread (deserialize,
    /// validate, create descriptor, enqueue, respond).
    pub request_service_mean: SimDuration,
}

impl SimUrd {
    pub fn new(node: NodeId, workers: usize) -> Self {
        SimUrd {
            node,
            controller: Controller::new(),
            queue: TaskQueue::fcfs(workers),
            eta: EtaEstimator::default(),
            tasks: HashMap::new(),
            next_task: 1,
            accepting: true,
            completed: 0,
            rpc_server: FifoServer::new(1),
            rpc_pending_svc: Vec::new(),
            rpc_tick: EventId::NONE,
            request_service_mean: SimDuration::from_micros(22),
        }
    }

    pub fn accepting(&self) -> bool {
        self.accepting
    }

    pub fn set_accepting(&mut self, on: bool) {
        self.accepting = on;
    }

    pub(crate) fn alloc_task_id(&mut self) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        id
    }

    pub fn task(&self, id: TaskId) -> Option<&TaskRecord> {
        self.tasks.get(&id)
    }

    pub(crate) fn task_mut(&mut self, id: TaskId) -> Option<&mut TaskRecord> {
        self.tasks.get_mut(&id)
    }

    pub(crate) fn record_completion(&mut self) {
        self.completed += 1;
    }

    pub fn status(&self) -> UrdStatus {
        UrdStatus {
            accepting: self.accepting,
            pending_tasks: self.queue.pending_len(),
            running_tasks: self.queue.running(),
            completed_tasks: self.completed,
            registered_jobs: self.controller.job_count(),
            registered_dataspaces: self.controller.dataspace_count(),
        }
    }

    /// Current E.T.A. for a task, per §IV-A: finished tasks report
    /// their completion time; running tasks extrapolate from their own
    /// progress; queued tasks use the route estimate.
    pub fn task_eta(&self, id: TaskId, now: SimTime) -> Option<SimTime> {
        let rec = self.tasks.get(&id)?;
        match rec.state {
            TaskState::Finished | TaskState::FinishedWithError => rec.finished,
            _ => Some(self.eta.eta(
                rec.plugin,
                rec.total_bytes,
                rec.moved_bytes,
                rec.started.unwrap_or(now),
                now,
            )),
        }
    }

    /// The instant at which all current staging work on this node is
    /// expected to drain — what slurmctld uses to plan node reuse.
    pub fn drain_eta(&self, now: SimTime) -> SimTime {
        let mut latest = now;
        for rec in self.tasks.values() {
            if !rec.state.is_terminal() {
                if let Some(eta) = self.task_eta(rec.id, now) {
                    latest = latest.max(eta);
                }
            }
        }
        latest
    }

    /// Names of tracked dataspaces (paper §IV-A) — the caller checks
    /// their namespaces for residual data at node release.
    pub fn tracked_nsids(&self) -> Vec<String> {
        self.controller
            .tracked_dataspaces()
            .iter()
            .map(|d| d.nsid.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_are_unique_and_monotonic() {
        let mut urd = SimUrd::new(0, 4);
        let a = urd.alloc_task_id();
        let b = urd.alloc_task_id();
        assert!(b > a);
    }

    #[test]
    fn status_snapshot() {
        let urd = SimUrd::new(3, 2);
        let st = urd.status();
        assert!(st.accepting);
        assert_eq!(st.pending_tasks, 0);
        assert_eq!(st.running_tasks, 0);
        assert_eq!(st.completed_tasks, 0);
    }

    #[test]
    fn accepting_toggle() {
        let mut urd = SimUrd::new(0, 1);
        urd.set_accepting(false);
        assert!(!urd.accepting());
        urd.set_accepting(true);
        assert!(urd.accepting());
    }

    #[test]
    fn drain_eta_with_no_tasks_is_now() {
        let urd = SimUrd::new(0, 1);
        let now = SimTime::from_secs(9);
        assert_eq!(urd.drain_eta(now), now);
    }
}
