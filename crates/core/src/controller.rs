//! The job & dataspace controller.
//!
//! Per the paper (§IV-B), worker threads "rely on the information
//! registered in the job & dataspace controller to validate the
//! request, which implies checking that the calling process has access
//! to the requested dataspaces and also that it has the appropriate
//! file system permissions to access the requested resources". The
//! controller is the authoritative registry the control API populates,
//! and the enforcement point that lets urd:
//!
//! 1. account the usage registered processes make of their dataspaces,
//! 2. reject task submissions from unregistered processes,
//! 3. reject submissions naming dataspaces a job may not touch.

use std::collections::HashMap;

use simstore::{Cred, TierRef};

use crate::error::{NornsError, Result};
use crate::resource::ResourceRef;
use crate::task::{JobId, TaskSpec};

/// A dataspace registered on this node (`register_dataspace`).
#[derive(Debug, Clone)]
pub struct DataspaceSpec {
    pub nsid: String,
    pub tier: TierRef,
    /// Slurm asked urd to track emptiness for node release (§IV-A).
    pub tracked: bool,
}

/// A job registered on this node (`register_job`).
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub id: JobId,
    /// Nodes reserved for the job (fabric node ids).
    pub hosts: Vec<simnet::NodeId>,
    /// Dataspaces the job may use, with optional byte quotas (0 = no
    /// limit).
    pub limits: Vec<(String, u64)>,
    /// Credentials job processes run with.
    pub cred: Cred,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    processes: HashMap<u64, Cred>,
    usage: HashMap<String, u64>,
}

/// Who is submitting a request, which determines the checks applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiSource {
    /// The scheduler, through the control socket — trusted.
    Control,
    /// An application process, through the user socket.
    User { pid: u64 },
}

/// Controller state for one urd instance.
#[derive(Debug, Default)]
pub struct Controller {
    dataspaces: HashMap<String, DataspaceSpec>,
    jobs: HashMap<u64, JobEntry>,
}

impl Controller {
    pub fn new() -> Self {
        Self::default()
    }

    // ---- dataspace management (nornsctl_register_dataspace etc.) ----

    pub fn register_dataspace(&mut self, spec: DataspaceSpec) -> Result<()> {
        if self.dataspaces.contains_key(&spec.nsid) {
            return Err(NornsError::AlreadyRegistered(spec.nsid));
        }
        self.dataspaces.insert(spec.nsid.clone(), spec);
        Ok(())
    }

    pub fn update_dataspace(&mut self, spec: DataspaceSpec) -> Result<()> {
        match self.dataspaces.get_mut(&spec.nsid) {
            Some(e) => {
                *e = spec;
                Ok(())
            }
            None => Err(NornsError::NoSuchDataspace(spec.nsid)),
        }
    }

    pub fn unregister_dataspace(&mut self, nsid: &str) -> Result<DataspaceSpec> {
        self.dataspaces
            .remove(nsid)
            .ok_or_else(|| NornsError::NoSuchDataspace(nsid.to_string()))
    }

    pub fn dataspace(&self, nsid: &str) -> Result<&DataspaceSpec> {
        self.dataspaces
            .get(nsid)
            .ok_or_else(|| NornsError::NoSuchDataspace(nsid.to_string()))
    }

    pub fn dataspaces(&self) -> impl Iterator<Item = &DataspaceSpec> {
        self.dataspaces.values()
    }

    pub fn dataspace_count(&self) -> usize {
        self.dataspaces.len()
    }

    /// Dataspaces flagged for emptiness tracking.
    pub fn tracked_dataspaces(&self) -> Vec<&DataspaceSpec> {
        let mut v: Vec<_> = self.dataspaces.values().filter(|d| d.tracked).collect();
        v.sort_by(|a, b| a.nsid.cmp(&b.nsid));
        v
    }

    // ---- job management (nornsctl_register_job etc.) ----

    pub fn register_job(&mut self, spec: JobSpec) -> Result<()> {
        if self.jobs.contains_key(&spec.id.0) {
            return Err(NornsError::AlreadyRegistered(format!("job {}", spec.id.0)));
        }
        for (nsid, _) in &spec.limits {
            if !self.dataspaces.contains_key(nsid) {
                return Err(NornsError::NoSuchDataspace(nsid.clone()));
            }
        }
        self.jobs.insert(
            spec.id.0,
            JobEntry {
                spec,
                processes: HashMap::new(),
                usage: HashMap::new(),
            },
        );
        Ok(())
    }

    pub fn update_job(&mut self, spec: JobSpec) -> Result<()> {
        for (nsid, _) in &spec.limits {
            if !self.dataspaces.contains_key(nsid) {
                return Err(NornsError::NoSuchDataspace(nsid.clone()));
            }
        }
        match self.jobs.get_mut(&spec.id.0) {
            Some(e) => {
                e.spec = spec;
                Ok(())
            }
            None => Err(NornsError::NoSuchJob(spec.id.0)),
        }
    }

    pub fn unregister_job(&mut self, job: JobId) -> Result<JobSpec> {
        self.jobs
            .remove(&job.0)
            .map(|e| e.spec)
            .ok_or(NornsError::NoSuchJob(job.0))
    }

    pub fn job(&self, job: JobId) -> Result<&JobSpec> {
        self.jobs
            .get(&job.0)
            .map(|e| &e.spec)
            .ok_or(NornsError::NoSuchJob(job.0))
    }

    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    // ---- process management ----

    pub fn add_process(&mut self, job: JobId, pid: u64, cred: Cred) -> Result<()> {
        let entry = self
            .jobs
            .get_mut(&job.0)
            .ok_or(NornsError::NoSuchJob(job.0))?;
        entry.processes.insert(pid, cred);
        Ok(())
    }

    pub fn remove_process(&mut self, job: JobId, pid: u64) -> Result<()> {
        let entry = self
            .jobs
            .get_mut(&job.0)
            .ok_or(NornsError::NoSuchJob(job.0))?;
        entry
            .processes
            .remove(&pid)
            .map(|_| ())
            .ok_or(NornsError::NoSuchProcess { job: job.0, pid })
    }

    // ---- validation (the worker-thread checks from §IV-B) ----

    /// Validate a submission and return the credentials the task will
    /// run with.
    pub fn validate(&self, job: JobId, source: ApiSource, spec: &TaskSpec) -> Result<Cred> {
        let entry = self.jobs.get(&job.0).ok_or(NornsError::NoSuchJob(job.0))?;
        let cred = match source {
            ApiSource::Control => entry.spec.cred.clone(),
            ApiSource::User { pid } => entry
                .processes
                .get(&pid)
                .cloned()
                .ok_or(NornsError::NoSuchProcess { job: job.0, pid })?,
        };
        let check_res = |r: &ResourceRef| -> Result<()> {
            if let Some(nsid) = r.nsid() {
                // Local resources must name a dataspace registered on
                // this node; all resources must be in the job's grant.
                if !r.is_remote() && !self.dataspaces.contains_key(nsid) {
                    return Err(NornsError::NoSuchDataspace(nsid.to_string()));
                }
                if !entry.spec.limits.iter().any(|(n, _)| n == nsid) {
                    return Err(NornsError::DataspaceNotAllowed {
                        job: job.0,
                        nsid: nsid.to_string(),
                    });
                }
            }
            Ok(())
        };
        check_res(&spec.input)?;
        if let Some(out) = &spec.output {
            check_res(out)?;
        }
        match spec.op {
            crate::task::TaskOp::Remove => {
                if spec.output.is_some() {
                    return Err(NornsError::BadArgs("remove takes no output".into()));
                }
                if spec.input.is_memory() {
                    return Err(NornsError::BadArgs("cannot remove a memory region".into()));
                }
            }
            _ => {
                if spec.output.is_none() {
                    return Err(NornsError::BadArgs("copy/move require an output".into()));
                }
                if spec.output.as_ref().is_some_and(|o| o.is_memory()) && spec.input.is_memory() {
                    return Err(NornsError::BadArgs(
                        "memory-to-memory transfers are not supported".into(),
                    ));
                }
            }
        }
        Ok(cred)
    }

    /// Charge `bytes` of dataspace usage to a job, enforcing its quota.
    pub fn charge(&mut self, job: JobId, nsid: &str, bytes: u64) -> Result<()> {
        let entry = self
            .jobs
            .get_mut(&job.0)
            .ok_or(NornsError::NoSuchJob(job.0))?;
        let quota = entry
            .spec
            .limits
            .iter()
            .find(|(n, _)| n == nsid)
            .map(|(_, q)| *q)
            .ok_or_else(|| NornsError::DataspaceNotAllowed {
                job: job.0,
                nsid: nsid.into(),
            })?;
        let used = entry.usage.entry(nsid.to_string()).or_insert(0);
        if quota > 0 && *used + bytes > quota {
            return Err(NornsError::QuotaExceeded {
                job: job.0,
                nsid: nsid.into(),
                requested: bytes,
                quota,
            });
        }
        *used += bytes;
        Ok(())
    }

    /// Release previously charged usage (file removed / staged out).
    pub fn release(&mut self, job: JobId, nsid: &str, bytes: u64) {
        if let Some(entry) = self.jobs.get_mut(&job.0) {
            if let Some(used) = entry.usage.get_mut(nsid) {
                *used = used.saturating_sub(bytes);
            }
        }
    }

    pub fn usage(&self, job: JobId, nsid: &str) -> u64 {
        self.jobs
            .get(&job.0)
            .and_then(|e| e.usage.get(nsid))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskOp;

    fn tier() -> TierRef {
        TierRef::Local(0)
    }

    fn controller_with_job() -> Controller {
        let mut c = Controller::new();
        c.register_dataspace(DataspaceSpec {
            nsid: "pmdk0".into(),
            tier: tier(),
            tracked: false,
        })
        .unwrap();
        c.register_dataspace(DataspaceSpec {
            nsid: "lustre".into(),
            tier: TierRef::Pfs(0),
            tracked: false,
        })
        .unwrap();
        c.register_job(JobSpec {
            id: JobId(1),
            hosts: vec![0, 1],
            limits: vec![("pmdk0".into(), 1000), ("lustre".into(), 0)],
            cred: Cred::new(1000, 1000),
        })
        .unwrap();
        c
    }

    fn copy_spec() -> TaskSpec {
        TaskSpec::copy(
            ResourceRef::local("lustre", "in.dat"),
            ResourceRef::local("pmdk0", "in.dat"),
        )
    }

    #[test]
    fn duplicate_registrations_rejected() {
        let mut c = controller_with_job();
        assert!(matches!(
            c.register_dataspace(DataspaceSpec {
                nsid: "pmdk0".into(),
                tier: tier(),
                tracked: false
            }),
            Err(NornsError::AlreadyRegistered(_))
        ));
        assert!(matches!(
            c.register_job(JobSpec {
                id: JobId(1),
                hosts: vec![],
                limits: vec![],
                cred: Cred::new(1, 1)
            }),
            Err(NornsError::AlreadyRegistered(_))
        ));
    }

    #[test]
    fn job_with_unknown_dataspace_rejected() {
        let mut c = controller_with_job();
        assert!(matches!(
            c.register_job(JobSpec {
                id: JobId(2),
                hosts: vec![],
                limits: vec![("ghost".into(), 0)],
                cred: Cred::new(1, 1)
            }),
            Err(NornsError::NoSuchDataspace(_))
        ));
    }

    #[test]
    fn control_submissions_validate() {
        let c = controller_with_job();
        let cred = c
            .validate(JobId(1), ApiSource::Control, &copy_spec())
            .unwrap();
        assert_eq!(cred.uid, 1000);
    }

    #[test]
    fn unknown_job_rejected() {
        let c = controller_with_job();
        assert!(matches!(
            c.validate(JobId(99), ApiSource::Control, &copy_spec()),
            Err(NornsError::NoSuchJob(99))
        ));
    }

    #[test]
    fn user_submissions_require_registered_process() {
        let mut c = controller_with_job();
        let err = c.validate(JobId(1), ApiSource::User { pid: 42 }, &copy_spec());
        assert!(matches!(
            err,
            Err(NornsError::NoSuchProcess { job: 1, pid: 42 })
        ));
        c.add_process(JobId(1), 42, Cred::new(1000, 1000)).unwrap();
        assert!(c
            .validate(JobId(1), ApiSource::User { pid: 42 }, &copy_spec())
            .is_ok());
        c.remove_process(JobId(1), 42).unwrap();
        assert!(c
            .validate(JobId(1), ApiSource::User { pid: 42 }, &copy_spec())
            .is_err());
    }

    #[test]
    fn ungrated_dataspace_rejected() {
        let mut c = controller_with_job();
        c.register_dataspace(DataspaceSpec {
            nsid: "nvme1".into(),
            tier: tier(),
            tracked: false,
        })
        .unwrap();
        // nvme1 registered on the node but NOT granted to job 1.
        let spec = TaskSpec::copy(
            ResourceRef::local("nvme1", "x"),
            ResourceRef::local("pmdk0", "x"),
        );
        assert!(matches!(
            c.validate(JobId(1), ApiSource::Control, &spec),
            Err(NornsError::DataspaceNotAllowed { job: 1, .. })
        ));
    }

    #[test]
    fn unregistered_local_dataspace_rejected() {
        let c = controller_with_job();
        let spec = TaskSpec::copy(
            ResourceRef::local("ghost", "x"),
            ResourceRef::local("pmdk0", "x"),
        );
        assert!(matches!(
            c.validate(JobId(1), ApiSource::Control, &spec),
            Err(NornsError::NoSuchDataspace(_))
        ));
    }

    #[test]
    fn shape_validation() {
        let c = controller_with_job();
        // Copy without output.
        let bad = TaskSpec {
            op: TaskOp::Copy,
            priority: norns_sched::DEFAULT_PRIORITY,
            input: ResourceRef::local("pmdk0", "x"),
            output: None,
        };
        assert!(matches!(
            c.validate(JobId(1), ApiSource::Control, &bad),
            Err(NornsError::BadArgs(_))
        ));
        // Remove with output.
        let bad = TaskSpec {
            op: TaskOp::Remove,
            priority: norns_sched::DEFAULT_PRIORITY,
            input: ResourceRef::local("pmdk0", "x"),
            output: Some(ResourceRef::local("pmdk0", "y")),
        };
        assert!(matches!(
            c.validate(JobId(1), ApiSource::Control, &bad),
            Err(NornsError::BadArgs(_))
        ));
        // Remove of memory.
        let bad = TaskSpec {
            op: TaskOp::Remove,
            priority: norns_sched::DEFAULT_PRIORITY,
            input: ResourceRef::memory(10),
            output: None,
        };
        assert!(matches!(
            c.validate(JobId(1), ApiSource::Control, &bad),
            Err(NornsError::BadArgs(_))
        ));
    }

    #[test]
    fn quota_accounting() {
        let mut c = controller_with_job();
        c.charge(JobId(1), "pmdk0", 600).unwrap();
        assert_eq!(c.usage(JobId(1), "pmdk0"), 600);
        // Next 600 exceeds the 1000 quota.
        assert!(matches!(
            c.charge(JobId(1), "pmdk0", 600),
            Err(NornsError::QuotaExceeded { .. })
        ));
        c.release(JobId(1), "pmdk0", 300);
        c.charge(JobId(1), "pmdk0", 600).unwrap();
        assert_eq!(c.usage(JobId(1), "pmdk0"), 900);
        // Zero quota means unlimited.
        c.charge(JobId(1), "lustre", u64::MAX / 2).unwrap();
    }

    #[test]
    fn tracked_dataspaces_listed() {
        let mut c = Controller::new();
        c.register_dataspace(DataspaceSpec {
            nsid: "b".into(),
            tier: tier(),
            tracked: true,
        })
        .unwrap();
        c.register_dataspace(DataspaceSpec {
            nsid: "a".into(),
            tier: tier(),
            tracked: true,
        })
        .unwrap();
        c.register_dataspace(DataspaceSpec {
            nsid: "c".into(),
            tier: tier(),
            tracked: false,
        })
        .unwrap();
        let tracked: Vec<_> = c
            .tracked_dataspaces()
            .iter()
            .map(|d| d.nsid.clone())
            .collect();
        assert_eq!(tracked, vec!["a", "b"]);
    }

    #[test]
    fn unregister_flows() {
        let mut c = controller_with_job();
        assert!(c.unregister_dataspace("nope").is_err());
        c.unregister_dataspace("lustre").unwrap();
        assert!(c.dataspace("lustre").is_err());
        assert_eq!(c.dataspace_count(), 1);
        c.unregister_job(JobId(1)).unwrap();
        assert!(c.job(JobId(1)).is_err());
        assert_eq!(c.job_count(), 0);
    }
}
