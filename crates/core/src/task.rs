//! I/O tasks: the unit of work a urd daemon executes.

use simcore::{SimDuration, SimTime};

use crate::resource::ResourceRef;

/// Task identifier, unique per urd instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Batch job identifier (assigned by the scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Operations supported by `iotask_init` (paper Table I / Listing 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskOp {
    /// Copy input to output, leaving input in place.
    Copy,
    /// Copy then delete the input (stage-out semantics).
    Move,
    /// Delete the input resource.
    Remove,
}

/// Lifecycle of a task inside urd: pending queue → worker → completion
/// list (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    Pending,
    InProgress,
    Finished,
    FinishedWithError,
}

impl TaskState {
    pub fn is_terminal(self) -> bool {
        matches!(self, TaskState::Finished | TaskState::FinishedWithError)
    }
}

/// What a task should do, as validated at submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    pub op: TaskOp,
    /// Submitter-assigned urgency for priority-aware arbitration
    /// (mirrors the real daemon's `TaskSpec.priority`).
    pub priority: u8,
    pub input: ResourceRef,
    pub output: Option<ResourceRef>,
}

impl TaskSpec {
    pub fn copy(input: ResourceRef, output: ResourceRef) -> Self {
        TaskSpec {
            op: TaskOp::Copy,
            priority: norns_sched::DEFAULT_PRIORITY,
            input,
            output: Some(output),
        }
    }

    pub fn mv(input: ResourceRef, output: ResourceRef) -> Self {
        TaskSpec {
            op: TaskOp::Move,
            priority: norns_sched::DEFAULT_PRIORITY,
            input,
            output: Some(output),
        }
    }

    pub fn remove(input: ResourceRef) -> Self {
        TaskSpec {
            op: TaskOp::Remove,
            priority: norns_sched::DEFAULT_PRIORITY,
            input,
            output: None,
        }
    }

    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// Completion statistics (`norns_error(&tsk, &stats)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskStats {
    pub state: TaskState,
    pub bytes_total: u64,
    pub bytes_moved: u64,
    pub submitted: SimTime,
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
}

impl TaskStats {
    pub fn elapsed(&self) -> Option<SimDuration> {
        Some(self.finished? - self.started?)
    }

    pub fn queue_wait(&self) -> Option<SimDuration> {
        Some(self.started? - self.submitted)
    }

    /// Mean transfer rate in bytes/s once finished.
    pub fn mean_rate(&self) -> Option<f64> {
        let secs = self.elapsed()?.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(self.bytes_moved as f64 / secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceRef;

    #[test]
    fn spec_constructors() {
        let a = ResourceRef::local("pmdk0", "in");
        let b = ResourceRef::local("lustre", "out");
        let c = TaskSpec::copy(a.clone(), b.clone());
        assert_eq!(c.op, TaskOp::Copy);
        assert!(c.output.is_some());
        let m = TaskSpec::mv(a.clone(), b);
        assert_eq!(m.op, TaskOp::Move);
        let r = TaskSpec::remove(a);
        assert_eq!(r.op, TaskOp::Remove);
        assert!(r.output.is_none());
    }

    #[test]
    fn terminal_states() {
        assert!(!TaskState::Pending.is_terminal());
        assert!(!TaskState::InProgress.is_terminal());
        assert!(TaskState::Finished.is_terminal());
        assert!(TaskState::FinishedWithError.is_terminal());
    }

    #[test]
    fn stats_math() {
        let stats = TaskStats {
            state: TaskState::Finished,
            bytes_total: 1000,
            bytes_moved: 1000,
            submitted: SimTime::from_secs(1),
            started: Some(SimTime::from_secs(3)),
            finished: Some(SimTime::from_secs(8)),
        };
        assert_eq!(stats.queue_wait(), Some(SimDuration::from_secs(2)));
        assert_eq!(stats.elapsed(), Some(SimDuration::from_secs(5)));
        assert!((stats.mean_rate().unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn unfinished_stats_are_none() {
        let stats = TaskStats {
            state: TaskState::Pending,
            bytes_total: 10,
            bytes_moved: 0,
            submitted: SimTime::ZERO,
            started: None,
            finished: None,
        };
        assert_eq!(stats.elapsed(), None);
        assert_eq!(stats.mean_rate(), None);
    }
}
