//! The urd task queue, backed by the shared `norns-sched` arbitration
//! layer.
//!
//! The paper: "task order in the queue is controlled by a *task
//! scheduler* component, which arbitrates the order of the execution of
//! I/O tasks depending on several metrics. FCFS is the default
//! arbitration policy, but the component will be extended in the future
//! to support other strategies." The policies themselves (FCFS,
//! shortest-first, per-job fair share, weighted priority) live in the
//! `norns-sched` crate so the real-I/O daemon (`norns-ipc`) arbitrates
//! through the exact same implementations; this module instantiates
//! them over simulated time.

use simcore::SimTime;

use crate::task::{JobId, TaskId};

pub use norns_sched::{
    ArbitrationPolicy, Fcfs, JobFairShare, PendingTask as GenericPendingTask, ShortestFirst,
    WeightedPriority, DEFAULT_PRIORITY,
};

/// A task waiting in the simulated urd's queue.
pub type PendingTask = norns_sched::PendingTask<JobId, TaskId, SimTime>;

/// Policy trait object over the simulated key types.
pub type SimPolicy = Box<dyn ArbitrationPolicy<JobId, TaskId, SimTime>>;

/// The pending queue plus worker-slot accounting for one simulated
/// urd. Thin wrapper over [`norns_sched::Scheduler`] keeping the
/// sim-facing API (enqueue with a [`SimTime`], default priority).
#[derive(Debug)]
pub struct TaskQueue {
    inner: norns_sched::Scheduler<JobId, TaskId, SimTime>,
}

impl TaskQueue {
    pub fn new(workers: usize, policy: SimPolicy) -> Self {
        TaskQueue {
            inner: norns_sched::Scheduler::new(workers, policy),
        }
    }

    pub fn fcfs(workers: usize) -> Self {
        Self::new(workers, Box::new(Fcfs))
    }

    pub fn policy_name(&self) -> &'static str {
        self.inner.policy_name()
    }

    pub fn workers(&self) -> usize {
        self.inner.workers()
    }

    pub fn pending_len(&self) -> usize {
        self.inner.pending_len()
    }

    pub fn running(&self) -> usize {
        self.inner.running()
    }

    pub fn enqueued_total(&self) -> u64 {
        self.inner.enqueued_total()
    }

    pub fn enqueue(&mut self, task: TaskId, job: JobId, bytes: u64, now: SimTime) {
        self.enqueue_prio(task, job, bytes, DEFAULT_PRIORITY, now);
    }

    pub fn enqueue_prio(
        &mut self,
        task: TaskId,
        job: JobId,
        bytes: u64,
        priority: u8,
        now: SimTime,
    ) {
        self.inner.enqueue(task, job, bytes, priority, now);
    }

    /// Dispatch the next task if a worker is free. The caller must
    /// later call [`TaskQueue::finish`] exactly once per dispatch.
    pub fn dispatch(&mut self) -> Option<PendingTask> {
        self.inner.dispatch()
    }

    /// Mark a previously dispatched task as finished, freeing a worker.
    pub fn finish(&mut self) {
        self.inner.finish();
    }

    /// Drop a pending task (e.g. job cancelled before it started).
    pub fn cancel_pending(&mut self, task: TaskId) -> bool {
        self.inner.cancel_pending(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_picks_in_submission_order() {
        let mut q = TaskQueue::fcfs(1);
        q.enqueue(TaskId(1), JobId(1), 100, SimTime::ZERO);
        q.enqueue(TaskId(2), JobId(1), 10, SimTime::ZERO);
        let first = q.dispatch().unwrap();
        assert_eq!(first.task, TaskId(1));
        // Worker busy: no more dispatches.
        assert!(q.dispatch().is_none());
        q.finish();
        assert_eq!(q.dispatch().unwrap().task, TaskId(2));
    }

    #[test]
    fn sim_policies_come_from_norns_sched() {
        let mut q = TaskQueue::new(4, Box::new(JobFairShare::default()));
        // Job 1 floods, job 2 submits one task late.
        q.enqueue(TaskId(1), JobId(1), 1, SimTime::ZERO);
        q.enqueue(TaskId(2), JobId(1), 1, SimTime::ZERO);
        q.enqueue(TaskId(3), JobId(1), 1, SimTime::ZERO);
        q.enqueue(TaskId(4), JobId(2), 1, SimTime::ZERO);
        assert_eq!(q.dispatch().unwrap().task, TaskId(1));
        // Next pick must prefer job 2 even though job 1 queued earlier.
        assert_eq!(q.dispatch().unwrap().task, TaskId(4));
        assert_eq!(q.dispatch().unwrap().task, TaskId(2));
        assert_eq!(q.dispatch().unwrap().task, TaskId(3));
    }

    #[test]
    fn sjf_over_sim_types() {
        let mut q = TaskQueue::new(1, Box::new(ShortestFirst));
        q.enqueue(TaskId(1), JobId(1), 500, SimTime::ZERO);
        q.enqueue(TaskId(2), JobId(1), 50, SimTime::ZERO);
        q.enqueue(TaskId(3), JobId(1), 5000, SimTime::ZERO);
        assert_eq!(q.dispatch().unwrap().task, TaskId(2));
    }

    #[test]
    fn priority_respected_by_weighted_policy() {
        let mut q = TaskQueue::new(1, Box::new(WeightedPriority::default()));
        q.enqueue_prio(TaskId(1), JobId(1), 1, 10, SimTime::ZERO);
        q.enqueue_prio(TaskId(2), JobId(1), 1, 200, SimTime::ZERO);
        assert_eq!(q.dispatch().unwrap().task, TaskId(2));
    }

    #[test]
    fn worker_limit_respected() {
        let mut q = TaskQueue::fcfs(2);
        for i in 0..5 {
            q.enqueue(TaskId(i), JobId(0), 1, SimTime::ZERO);
        }
        assert!(q.dispatch().is_some());
        assert!(q.dispatch().is_some());
        assert!(q.dispatch().is_none(), "2 workers max");
        assert_eq!(q.running(), 2);
        assert_eq!(q.pending_len(), 3);
        q.finish();
        assert!(q.dispatch().is_some());
    }

    #[test]
    fn cancel_pending_removes() {
        let mut q = TaskQueue::fcfs(1);
        q.enqueue(TaskId(1), JobId(0), 1, SimTime::ZERO);
        q.enqueue(TaskId(2), JobId(0), 1, SimTime::ZERO);
        assert!(q.cancel_pending(TaskId(2)));
        assert!(!q.cancel_pending(TaskId(2)));
        assert_eq!(q.dispatch().unwrap().task, TaskId(1));
        assert!(q.dispatch().is_none());
    }

    #[test]
    #[should_panic(expected = "finish() without")]
    fn finish_without_dispatch_panics() {
        let mut q = TaskQueue::fcfs(1);
        q.finish();
    }

    #[test]
    fn counters() {
        let mut q = TaskQueue::fcfs(8);
        for i in 0..3 {
            q.enqueue(TaskId(i), JobId(0), 1, SimTime::ZERO);
        }
        assert_eq!(q.enqueued_total(), 3);
        assert_eq!(q.policy_name(), "fcfs");
        assert_eq!(q.workers(), 8);
    }
}
