//! The urd task queue and its arbitration policies.
//!
//! The paper: "task order in the queue is controlled by a *task
//! scheduler* component, which arbitrates the order of the execution of
//! I/O tasks depending on several metrics. FCFS is the default
//! arbitration policy, but the component will be extended in the future
//! to support other strategies." We implement FCFS plus two of those
//! future strategies (shortest-task-first and per-job fair share) so
//! the ablation benches can compare them.

use std::collections::VecDeque;

use simcore::SimTime;

use crate::task::{JobId, TaskId};

/// A task waiting in the queue, as seen by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTask {
    pub task: TaskId,
    pub job: JobId,
    pub bytes: u64,
    pub submitted: SimTime,
    /// Monotonic submission sequence (FCFS order).
    pub seq: u64,
}

/// Arbitration policy: choose which pending task runs next.
pub trait ArbitrationPolicy: std::fmt::Debug + Send {
    fn name(&self) -> &'static str;
    /// Index into `pending` of the task to dispatch next.
    fn pick(&mut self, pending: &VecDeque<PendingTask>) -> Option<usize>;
}

/// First-come first-served (paper default).
#[derive(Debug, Default, Clone)]
pub struct Fcfs;

impl ArbitrationPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn pick(&mut self, pending: &VecDeque<PendingTask>) -> Option<usize> {
        if pending.is_empty() {
            None
        } else {
            Some(0)
        }
    }
}

/// Shortest task first (by bytes) — reduces mean completion time at
/// the risk of starving large stage-outs.
#[derive(Debug, Default, Clone)]
pub struct ShortestFirst;

impl ArbitrationPolicy for ShortestFirst {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn pick(&mut self, pending: &VecDeque<PendingTask>) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| (t.bytes, t.seq))
            .map(|(i, _)| i)
    }
}

/// Round-robin across jobs so one job's task storm cannot monopolize
/// the staging workers.
#[derive(Debug, Default, Clone)]
pub struct JobFairShare {
    last_job: Option<JobId>,
}

impl ArbitrationPolicy for JobFairShare {
    fn name(&self) -> &'static str {
        "job-fair"
    }

    fn pick(&mut self, pending: &VecDeque<PendingTask>) -> Option<usize> {
        if pending.is_empty() {
            return None;
        }
        // Prefer the earliest task from a job different from the last
        // one served; fall back to plain FCFS.
        let idx = match self.last_job {
            Some(last) => pending
                .iter()
                .enumerate()
                .find(|(_, t)| t.job != last)
                .map(|(i, _)| i)
                .unwrap_or(0),
            None => 0,
        };
        self.last_job = Some(pending[idx].job);
        Some(idx)
    }
}

/// The pending queue plus worker-slot accounting.
#[derive(Debug)]
pub struct TaskQueue {
    pending: VecDeque<PendingTask>,
    policy: Box<dyn ArbitrationPolicy>,
    workers: usize,
    running: usize,
    next_seq: u64,
    /// Total tasks ever enqueued (for status reporting).
    enqueued_total: u64,
}

impl TaskQueue {
    pub fn new(workers: usize, policy: Box<dyn ArbitrationPolicy>) -> Self {
        assert!(workers > 0);
        TaskQueue {
            pending: VecDeque::new(),
            policy,
            workers,
            running: 0,
            next_seq: 0,
            enqueued_total: 0,
        }
    }

    pub fn fcfs(workers: usize) -> Self {
        Self::new(workers, Box::new(Fcfs))
    }

    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    pub fn running(&self) -> usize {
        self.running
    }

    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }

    pub fn enqueue(&mut self, task: TaskId, job: JobId, bytes: u64, now: SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.enqueued_total += 1;
        self.pending.push_back(PendingTask { task, job, bytes, submitted: now, seq });
    }

    /// Dispatch the next task if a worker is free. The caller must
    /// later call [`TaskQueue::finish`] exactly once per dispatch.
    pub fn dispatch(&mut self) -> Option<PendingTask> {
        if self.running >= self.workers || self.pending.is_empty() {
            return None;
        }
        let idx = self.policy.pick(&self.pending)?;
        let task = self.pending.remove(idx).expect("policy returned valid index");
        self.running += 1;
        Some(task)
    }

    /// Mark a previously dispatched task as finished, freeing a worker.
    pub fn finish(&mut self) {
        assert!(self.running > 0, "finish() without a running task");
        self.running -= 1;
    }

    /// Drop a pending task (e.g. job cancelled before it started).
    pub fn cancel_pending(&mut self, task: TaskId) -> bool {
        if let Some(idx) = self.pending.iter().position(|t| t.task == task) {
            self.pending.remove(idx);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(task: u64, job: u64, bytes: u64, seq: u64) -> PendingTask {
        PendingTask {
            task: TaskId(task),
            job: JobId(job),
            bytes,
            submitted: SimTime::ZERO,
            seq,
        }
    }

    #[test]
    fn fcfs_picks_in_submission_order() {
        let mut q = TaskQueue::fcfs(1);
        q.enqueue(TaskId(1), JobId(1), 100, SimTime::ZERO);
        q.enqueue(TaskId(2), JobId(1), 10, SimTime::ZERO);
        let first = q.dispatch().unwrap();
        assert_eq!(first.task, TaskId(1));
        // Worker busy: no more dispatches.
        assert!(q.dispatch().is_none());
        q.finish();
        assert_eq!(q.dispatch().unwrap().task, TaskId(2));
    }

    #[test]
    fn sjf_picks_smallest() {
        let mut policy = ShortestFirst;
        let pending: VecDeque<_> =
            vec![pt(1, 1, 500, 0), pt(2, 1, 50, 1), pt(3, 1, 5000, 2)].into();
        assert_eq!(policy.pick(&pending), Some(1));
    }

    #[test]
    fn sjf_breaks_ties_by_seq() {
        let mut policy = ShortestFirst;
        let pending: VecDeque<_> = vec![pt(9, 1, 100, 5), pt(4, 1, 100, 2)].into();
        assert_eq!(policy.pick(&pending), Some(1), "equal bytes → earliest seq");
    }

    #[test]
    fn fair_share_alternates_jobs() {
        let mut q = TaskQueue::new(4, Box::new(JobFairShare::default()));
        // Job 1 floods, job 2 submits one task late.
        q.enqueue(TaskId(1), JobId(1), 1, SimTime::ZERO);
        q.enqueue(TaskId(2), JobId(1), 1, SimTime::ZERO);
        q.enqueue(TaskId(3), JobId(1), 1, SimTime::ZERO);
        q.enqueue(TaskId(4), JobId(2), 1, SimTime::ZERO);
        assert_eq!(q.dispatch().unwrap().task, TaskId(1));
        // Next pick must prefer job 2 even though job 1 queued earlier.
        assert_eq!(q.dispatch().unwrap().task, TaskId(4));
        assert_eq!(q.dispatch().unwrap().task, TaskId(2));
        assert_eq!(q.dispatch().unwrap().task, TaskId(3));
    }

    #[test]
    fn worker_limit_respected() {
        let mut q = TaskQueue::fcfs(2);
        for i in 0..5 {
            q.enqueue(TaskId(i), JobId(0), 1, SimTime::ZERO);
        }
        assert!(q.dispatch().is_some());
        assert!(q.dispatch().is_some());
        assert!(q.dispatch().is_none(), "2 workers max");
        assert_eq!(q.running(), 2);
        assert_eq!(q.pending_len(), 3);
        q.finish();
        assert!(q.dispatch().is_some());
    }

    #[test]
    fn cancel_pending_removes() {
        let mut q = TaskQueue::fcfs(1);
        q.enqueue(TaskId(1), JobId(0), 1, SimTime::ZERO);
        q.enqueue(TaskId(2), JobId(0), 1, SimTime::ZERO);
        assert!(q.cancel_pending(TaskId(2)));
        assert!(!q.cancel_pending(TaskId(2)));
        assert_eq!(q.dispatch().unwrap().task, TaskId(1));
        assert!(q.dispatch().is_none());
    }

    #[test]
    #[should_panic(expected = "finish() without")]
    fn finish_without_dispatch_panics() {
        let mut q = TaskQueue::fcfs(1);
        q.finish();
    }

    #[test]
    fn counters() {
        let mut q = TaskQueue::fcfs(8);
        for i in 0..3 {
            q.enqueue(TaskId(i), JobId(0), 1, SimTime::ZERO);
        }
        assert_eq!(q.enqueued_total(), 3);
        assert_eq!(q.policy_name(), "fcfs");
        assert_eq!(q.workers(), 8);
    }
}
