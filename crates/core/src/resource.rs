//! Data resources: the endpoints of an I/O task.
//!
//! Matches the paper's `NORNS_MEMORY_REGION` / `NORNS_POSIX_PATH`
//! resource constructors plus remote paths reachable through the urd
//! network manager.

use simnet::NodeId;

/// One endpoint of an I/O task, normalized so the handling urd always
/// knows which node the data lives on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceRef {
    /// A region of the submitting process' memory (on the urd's node).
    Memory { size: u64 },
    /// A path inside a dataspace on the urd's own node.
    Local { nsid: String, path: String },
    /// A path inside a dataspace on another node.
    Remote {
        node: NodeId,
        nsid: String,
        path: String,
    },
}

impl ResourceRef {
    pub fn memory(size: u64) -> Self {
        ResourceRef::Memory { size }
    }

    pub fn local(nsid: impl Into<String>, path: impl Into<String>) -> Self {
        ResourceRef::Local {
            nsid: nsid.into(),
            path: path.into(),
        }
    }

    pub fn remote(node: NodeId, nsid: impl Into<String>, path: impl Into<String>) -> Self {
        ResourceRef::Remote {
            node,
            nsid: nsid.into(),
            path: path.into(),
        }
    }

    /// Parse a `"scheme://path"` string the way the batch-script
    /// options name resources (e.g. `lustre://in/mesh.dat`).
    pub fn parse_local(s: &str) -> Option<Self> {
        let (nsid, path) = s.split_once("://")?;
        if nsid.is_empty() {
            return None;
        }
        Some(ResourceRef::local(nsid, path))
    }

    pub fn is_memory(&self) -> bool {
        matches!(self, ResourceRef::Memory { .. })
    }

    pub fn is_remote(&self) -> bool {
        matches!(self, ResourceRef::Remote { .. })
    }

    /// The dataspace id, if the resource is path-based.
    pub fn nsid(&self) -> Option<&str> {
        match self {
            ResourceRef::Memory { .. } => None,
            ResourceRef::Local { nsid, .. } | ResourceRef::Remote { nsid, .. } => Some(nsid),
        }
    }

    pub fn path(&self) -> Option<&str> {
        match self {
            ResourceRef::Memory { .. } => None,
            ResourceRef::Local { path, .. } | ResourceRef::Remote { path, .. } => Some(path),
        }
    }

    /// The node the data lives on, given the handling urd's own node.
    pub fn data_node(&self, local_node: NodeId) -> NodeId {
        match self {
            ResourceRef::Memory { .. } | ResourceRef::Local { .. } => local_node,
            ResourceRef::Remote { node, .. } => *node,
        }
    }

    /// Render like the paper's dataspace ids.
    pub fn display(&self) -> String {
        match self {
            ResourceRef::Memory { size } => format!("mem[{size}B]"),
            ResourceRef::Local { nsid, path } => format!("{nsid}://{path}"),
            ResourceRef::Remote { node, nsid, path } => format!("{nsid}://{path}@node{node}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scheme_paths() {
        let r = ResourceRef::parse_local("lustre://in/mesh.dat").unwrap();
        assert_eq!(r, ResourceRef::local("lustre", "in/mesh.dat"));
        assert_eq!(r.nsid(), Some("lustre"));
        assert_eq!(r.path(), Some("in/mesh.dat"));
        assert!(ResourceRef::parse_local("no-scheme").is_none());
        assert!(ResourceRef::parse_local("://missing").is_none());
        // Empty path (whole dataspace) is legal — persist ops use it.
        assert_eq!(
            ResourceRef::parse_local("pmdk0://").unwrap(),
            ResourceRef::local("pmdk0", "")
        );
    }

    #[test]
    fn data_node_resolution() {
        assert_eq!(ResourceRef::memory(10).data_node(3), 3);
        assert_eq!(ResourceRef::local("a", "b").data_node(3), 3);
        assert_eq!(ResourceRef::remote(7, "a", "b").data_node(3), 7);
    }

    #[test]
    fn classification() {
        assert!(ResourceRef::memory(1).is_memory());
        assert!(!ResourceRef::memory(1).is_remote());
        assert!(ResourceRef::remote(0, "n", "p").is_remote());
        assert_eq!(ResourceRef::memory(1).nsid(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ResourceRef::memory(64).display(), "mem[64B]");
        assert_eq!(ResourceRef::local("nvme0", "x/y").display(), "nvme0://x/y");
        assert_eq!(
            ResourceRef::remote(2, "pmdk0", "d").display(),
            "pmdk0://d@node2"
        );
    }
}
