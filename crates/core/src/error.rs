//! NORNS error codes and results.
//!
//! Mirrors the C API's `NORNS_E*` family (the paper's Listing 2 checks
//! `stats.st_status == NORNS_ETASKERROR`).

use simstore::NsError;

/// Errors surfaced by the NORNS APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NornsError {
    /// `NORNS_ENOSUCHJOB` — job not registered with this urd.
    NoSuchJob(u64),
    /// `NORNS_ENOSUCHPROCESS` — submitting process not registered.
    NoSuchProcess { job: u64, pid: u64 },
    /// `NORNS_ENOSUCHNAMESPACE` — dataspace id not registered.
    NoSuchDataspace(String),
    /// Dataspace exists but the job was not granted access to it.
    DataspaceNotAllowed { job: u64, nsid: String },
    /// `NORNS_EACCES` — filesystem-level permission failure.
    PermissionDenied(String),
    /// `NORNS_ENOENT` — source resource does not exist.
    NotFound(String),
    /// `NORNS_ENOSPC` — destination tier or quota exhausted.
    NoSpace { requested: u64, available: u64 },
    /// Per-job dataspace quota would be exceeded.
    QuotaExceeded {
        job: u64,
        nsid: String,
        requested: u64,
        quota: u64,
    },
    /// `NORNS_EBADARGS` — malformed request (e.g. copy without output).
    BadArgs(String),
    /// `NORNS_ENOSUCHTASK`.
    NoSuchTask(u64),
    /// `NORNS_ETIMEOUT` — wait timed out.
    Timeout,
    /// `NORNS_ETASKERROR` — the task ran and failed.
    TaskError(String),
    /// Daemon is not accepting requests (paused / shutting down).
    NotAccepting,
    /// `NORNS_ECONNFAILED`-ish transport failure (simulated RPC).
    Transport(String),
    /// Namespace already registered / conflicting registration.
    AlreadyRegistered(String),
}

pub type Result<T> = std::result::Result<T, NornsError>;

impl std::fmt::Display for NornsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NornsError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            NornsError::NoSuchProcess { job, pid } => {
                write!(f, "process {pid} not registered with job {job}")
            }
            NornsError::NoSuchDataspace(ns) => write!(f, "no such dataspace: {ns}"),
            NornsError::DataspaceNotAllowed { job, nsid } => {
                write!(f, "job {job} may not access dataspace {nsid}")
            }
            NornsError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            NornsError::NotFound(p) => write!(f, "not found: {p}"),
            NornsError::NoSpace {
                requested,
                available,
            } => {
                write!(f, "no space: requested {requested}, available {available}")
            }
            NornsError::QuotaExceeded {
                job,
                nsid,
                requested,
                quota,
            } => write!(
                f,
                "job {job} quota exceeded on {nsid}: requested {requested}, quota {quota}"
            ),
            NornsError::BadArgs(m) => write!(f, "bad arguments: {m}"),
            NornsError::NoSuchTask(id) => write!(f, "no such task: {id}"),
            NornsError::Timeout => write!(f, "timed out"),
            NornsError::TaskError(m) => write!(f, "task error: {m}"),
            NornsError::NotAccepting => write!(f, "daemon not accepting requests"),
            NornsError::Transport(m) => write!(f, "transport error: {m}"),
            NornsError::AlreadyRegistered(m) => write!(f, "already registered: {m}"),
        }
    }
}

impl std::error::Error for NornsError {}

impl From<NsError> for NornsError {
    fn from(e: NsError) -> Self {
        match e {
            NsError::NotFound(p) => NornsError::NotFound(p),
            NsError::PermissionDenied(p) => NornsError::PermissionDenied(p),
            NsError::NoSpace {
                requested,
                available,
            } => NornsError::NoSpace {
                requested,
                available,
            },
            other => NornsError::BadArgs(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_error_mapping() {
        assert_eq!(
            NornsError::from(NsError::NotFound("x".into())),
            NornsError::NotFound("x".into())
        );
        assert_eq!(
            NornsError::from(NsError::PermissionDenied("y".into())),
            NornsError::PermissionDenied("y".into())
        );
        assert_eq!(
            NornsError::from(NsError::NoSpace {
                requested: 10,
                available: 2
            }),
            NornsError::NoSpace {
                requested: 10,
                available: 2
            }
        );
        assert!(matches!(
            NornsError::from(NsError::AlreadyExists("z".into())),
            NornsError::BadArgs(_)
        ));
    }

    #[test]
    fn display_is_informative() {
        let e = NornsError::QuotaExceeded {
            job: 7,
            nsid: "pmdk0".into(),
            requested: 100,
            quota: 50,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("pmdk0") && s.contains("100") && s.contains("50"));
    }
}
