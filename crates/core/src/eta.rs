//! E.T.A. estimation for in-flight and future staging.
//!
//! The paper (§IV-A): each urd monitors "the performance of such
//! transfers in order to compute an E.T.A. for each task … so that
//! slurmctld can estimate how long a node may be 'in use' by data
//! transfers before a job starts and after a job completes". The
//! scheduler also "uses calculations of average data transfer times and
//! data sizes to decide when to trigger such movements prior to a job
//! starting".
//!
//! The estimator keeps an exponentially weighted moving average of the
//! achieved bandwidth per *route class* (the plugin kind), learned from
//! completed tasks, and predicts transfer durations for planning.

use std::collections::HashMap;

use simcore::{SimDuration, SimTime};

use crate::plugins::PluginKind;

/// Observed-rate record for one route class.
#[derive(Debug, Clone, Copy)]
struct RouteStats {
    ewma_rate: f64,
    samples: u64,
}

/// Bandwidth learner + predictor.
#[derive(Debug)]
pub struct EtaEstimator {
    routes: HashMap<PluginKind, RouteStats>,
    /// Weight of the newest sample in the EWMA.
    alpha: f64,
    /// Optimistic prior used before any observation, bytes/s.
    prior_rate: f64,
}

impl Default for EtaEstimator {
    fn default() -> Self {
        Self::new(0.3, simcore::units::gib_per_s(1.0))
    }
}

impl EtaEstimator {
    pub fn new(alpha: f64, prior_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        assert!(prior_rate > 0.0);
        EtaEstimator {
            routes: HashMap::new(),
            alpha,
            prior_rate,
        }
    }

    /// Record a completed transfer.
    pub fn observe(&mut self, route: PluginKind, bytes: u64, elapsed: SimDuration) {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 || bytes == 0 {
            return;
        }
        let rate = bytes as f64 / secs;
        let entry = self.routes.entry(route).or_insert(RouteStats {
            ewma_rate: rate,
            samples: 0,
        });
        entry.ewma_rate = if entry.samples == 0 {
            rate
        } else {
            self.alpha * rate + (1.0 - self.alpha) * entry.ewma_rate
        };
        entry.samples += 1;
    }

    /// Current believed bandwidth for a route class, bytes/s.
    pub fn rate(&self, route: PluginKind) -> f64 {
        self.routes
            .get(&route)
            .map(|r| r.ewma_rate)
            .unwrap_or(self.prior_rate)
    }

    pub fn samples(&self, route: PluginKind) -> u64 {
        self.routes.get(&route).map(|r| r.samples).unwrap_or(0)
    }

    /// Predicted duration to move `bytes` over `route`.
    pub fn predict(&self, route: PluginKind, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.rate(route))
    }

    /// E.T.A. for a task that started at `started`, already moved
    /// `moved` of `total` bytes, evaluated at `now`. Uses the task's
    /// own observed rate when it has made progress, falling back to the
    /// route estimate otherwise.
    pub fn eta(
        &self,
        route: PluginKind,
        total: u64,
        moved: u64,
        started: SimTime,
        now: SimTime,
    ) -> SimTime {
        let remaining = total.saturating_sub(moved);
        if remaining == 0 {
            return now;
        }
        let elapsed = (now - started).as_secs_f64();
        let rate = if moved > 0 && elapsed > 0.0 {
            moved as f64 / elapsed
        } else {
            self.rate(route)
        };
        now + SimDuration::from_secs_f64(remaining as f64 / rate.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn prior_used_before_observations() {
        let est = EtaEstimator::default();
        assert_eq!(est.samples(PluginKind::LocalToLocal), 0);
        let d = est.predict(PluginKind::LocalToLocal, GIB);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9, "prior 1 GiB/s");
    }

    #[test]
    fn first_observation_replaces_prior() {
        let mut est = EtaEstimator::default();
        est.observe(PluginKind::LocalToLocal, 2 * GIB, SimDuration::from_secs(1));
        let rate = est.rate(PluginKind::LocalToLocal);
        assert!((rate - 2.0 * GIB as f64).abs() < 1.0);
    }

    #[test]
    fn ewma_converges_toward_recent_rates() {
        let mut est = EtaEstimator::new(0.5, 1e9);
        // Settle at 100 B/s, then shift to 200 B/s.
        for _ in 0..10 {
            est.observe(PluginKind::LocalToRemote, 100, SimDuration::from_secs(1));
        }
        let low = est.rate(PluginKind::LocalToRemote);
        assert!((low - 100.0).abs() < 1.0);
        for _ in 0..10 {
            est.observe(PluginKind::LocalToRemote, 200, SimDuration::from_secs(1));
        }
        let high = est.rate(PluginKind::LocalToRemote);
        assert!(high > 190.0, "ewma should track the new regime: {high}");
    }

    #[test]
    fn routes_are_independent() {
        let mut est = EtaEstimator::default();
        est.observe(PluginKind::LocalToLocal, 1000, SimDuration::from_secs(1));
        est.observe(PluginKind::LocalToRemote, 10, SimDuration::from_secs(1));
        assert!(est.rate(PluginKind::LocalToLocal) > est.rate(PluginKind::LocalToRemote));
    }

    #[test]
    fn zero_byte_and_zero_time_observations_ignored() {
        let mut est = EtaEstimator::default();
        est.observe(PluginKind::LocalToLocal, 0, SimDuration::from_secs(1));
        est.observe(PluginKind::LocalToLocal, 100, SimDuration::ZERO);
        assert_eq!(est.samples(PluginKind::LocalToLocal), 0);
    }

    #[test]
    fn eta_uses_in_flight_progress() {
        let est = EtaEstimator::default();
        let started = SimTime::from_secs(0);
        let now = SimTime::from_secs(10);
        // 40% done in 10s → 15s more for the remaining 60%.
        let eta = est.eta(PluginKind::RemoteToLocal, 1000, 400, started, now);
        assert!((eta.as_secs_f64() - 25.0).abs() < 1e-6, "eta {eta}");
    }

    #[test]
    fn eta_of_finished_task_is_now() {
        let est = EtaEstimator::default();
        let now = SimTime::from_secs(42);
        assert_eq!(
            est.eta(PluginKind::LocalToLocal, 10, 10, SimTime::ZERO, now),
            now
        );
    }

    #[test]
    fn eta_without_progress_falls_back_to_route_rate() {
        let mut est = EtaEstimator::default();
        est.observe(PluginKind::LocalToLocal, 100, SimDuration::from_secs(1));
        let now = SimTime::from_secs(5);
        let eta = est.eta(
            PluginKind::LocalToLocal,
            1000,
            0,
            SimTime::from_secs(5),
            now,
        );
        assert!((eta.as_secs_f64() - 15.0).abs() < 1e-6);
    }
}
