//! # workloads — application models for the evaluation
//!
//! The paper's evaluation exercises NORNS + Slurm with four
//! application-shaped load generators; this crate reproduces each as a
//! parameterised model over the simulated cluster:
//!
//! * [`ior`] — IOR-like file-per-process sequential I/O (Fig. 1b and
//!   Fig. 8 sweeps).
//! * [`mpiio`] — collective MPI-IO single-file writes with Lustre
//!   striping options (Fig. 1a, ARCHER).
//! * [`prodcons`] — the synthetic producer/consumer workflow
//!   (Tables III & IV).
//! * [`hpcg`] — HPCG-like memory-bound compute whose runtime stretches
//!   under co-located staging (Table IV).
//! * [`openfoam`] — the decompose → solver CFD pipeline with
//!   directory-per-process output (Table V).
//!
//! [`world::BenchWorld`] / [`world::SlurmWorld`] are the ready-made
//! simulation models the runners drive.

pub mod hpcg;
pub mod ior;
pub mod mpiio;
pub mod openfoam;
pub mod prodcons;
pub mod world;

pub use world::{register_tiers, wait_task_completions, wait_tokens, BenchWorld, SlurmWorld};
