//! IOR-like I/O benchmark model.
//!
//! Mirrors how the paper uses IOR (Fig. 1b, Fig. 8): every core of
//! every node creates an independent file, then reads/writes it
//! sequentially with a fixed transfer size, with file sizes chosen to
//! defeat the page cache. The model issues the aggregate per-node byte
//! stream against the target tier and reports achieved aggregate
//! bandwidth.

use norns::sim::ops;
use simcore::{Sim, SimTime};
use simstore::IoDir;

use crate::world::{wait_tokens, BenchWorld};

/// One IOR invocation.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// Target tier name (`lustre`, `pmdk0`, ...).
    pub tier: String,
    /// Processes per node, each with its own file.
    pub procs_per_node: usize,
    /// Bytes per process.
    pub bytes_per_proc: u64,
    /// Read or write phase.
    pub dir: IoDir,
    /// Stripe count hint (PFS tiers only).
    pub stripe: Option<usize>,
}

impl IorConfig {
    /// The Fig. 8 configuration: 48 procs/node, 512 KiB transfers,
    /// file sizes large enough to exceed the 192 GiB of node RAM.
    pub fn fig8(tier: &str, dir: IoDir) -> Self {
        IorConfig {
            tier: tier.to_string(),
            procs_per_node: 48,
            // 4.2 GiB per proc × 48 ≈ 201 GiB per node > 192 GiB RAM.
            bytes_per_proc: (42u64 << 30) / 10,
            dir,
            stripe: None,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct IorResult {
    pub started: SimTime,
    pub finished: SimTime,
    pub total_bytes: u64,
}

impl IorResult {
    /// Aggregate bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        let secs = (self.finished - self.started).as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.total_bytes as f64 / secs
    }

    /// Bandwidth in MB/s (decimal, as IOR reports).
    pub fn mb_per_s(&self) -> f64 {
        self.bandwidth() / 1e6
    }
}

/// Run one IOR phase across `nodes` and block until it completes.
pub fn run(sim: &mut Sim<BenchWorld>, nodes: &[usize], cfg: &IorConfig) -> IorResult {
    let started = sim.now();
    let per_node = cfg.bytes_per_proc * cfg.procs_per_node as u64;
    let tokens: Vec<u64> = nodes
        .iter()
        .map(|&n| {
            ops::app_io(
                sim,
                n,
                &cfg.tier,
                cfg.dir,
                per_node,
                cfg.procs_per_node as u64,
                cfg.stripe,
            )
            .expect("app_io submission")
        })
        .collect();
    let finished = wait_tokens(sim, &tokens);
    IorResult {
        started,
        finished,
        total_bytes: per_node * nodes.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::register_tiers;

    fn world(nodes: usize) -> Sim<BenchWorld> {
        let tb = cluster::nextgenio_quiet(nodes);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 3);
        register_tiers(&mut sim);
        sim
    }

    #[test]
    fn nvm_bandwidth_scales_with_nodes() {
        let cfg = IorConfig {
            tier: "pmdk0".into(),
            procs_per_node: 48,
            bytes_per_proc: 64 << 20,
            dir: IoDir::Write,
            stripe: None,
        };
        let one = {
            let mut sim = world(1);
            run(&mut sim, &[0], &cfg).bandwidth()
        };
        let four = {
            let mut sim = world(4);
            run(&mut sim, &(0..4).collect::<Vec<_>>(), &cfg).bandwidth()
        };
        assert!(
            (four / one - 4.0).abs() < 0.05,
            "node-local scales linearly: {one} vs {four}"
        );
    }

    #[test]
    fn lustre_bandwidth_saturates() {
        let cfg = IorConfig {
            tier: "lustre".into(),
            procs_per_node: 48,
            bytes_per_proc: 64 << 20,
            dir: IoDir::Write,
            stripe: Some(6),
        };
        let one = {
            let mut sim = world(1);
            run(&mut sim, &[0], &cfg).bandwidth()
        };
        let eight = {
            let mut sim = world(8);
            run(&mut sim, &(0..8).collect::<Vec<_>>(), &cfg).bandwidth()
        };
        // Shared PFS: 8 nodes gain far less than 8×.
        assert!(
            eight < one * 4.0,
            "pfs must saturate: 1 node {one}, 8 nodes {eight}"
        );
    }

    #[test]
    fn read_faster_than_write_on_nvm() {
        let mk = |dir| IorConfig {
            tier: "pmdk0".into(),
            procs_per_node: 8,
            bytes_per_proc: 256 << 20,
            dir,
            stripe: None,
        };
        let mut sim = world(1);
        let w = run(&mut sim, &[0], &mk(IoDir::Write)).bandwidth();
        let r = run(&mut sim, &[0], &mk(IoDir::Read)).bandwidth();
        assert!(r > w, "DCPMM reads outpace writes: r={r} w={w}");
    }
}
