//! Ready-made simulation models for workload drivers.
//!
//! [`BenchWorld`] is the minimal model for NORNS-level experiments
//! (Fig. 1, 4–8): a [`NornsWorld`] plus completion ledgers. The
//! workload runners in this crate drive it directly.
//!
//! [`SlurmWorld`] adds a [`Slurmctld`] and routes staging-task
//! completions to the scheduler — the model behind the workflow
//! experiments (Tables III–V).

use std::collections::HashMap;

use norns::{HasNorns, NornsWorld, RpcReply, TaskCompletion};
use simcore::{CompletedFlow, FluidModel, FluidSystem, Sim, SimTime};
use slurm_sim::{HasSlurm, JobEvent, SchedConfig, Slurmctld};

/// Minimal benchmark model.
pub struct BenchWorld {
    pub world: NornsWorld,
    pub app_done: HashMap<u64, SimTime>,
    pub completions: Vec<TaskCompletion>,
    pub replies: Vec<RpcReply>,
    pub reply_times: Vec<(u64, SimTime)>,
}

impl BenchWorld {
    pub fn new(world: NornsWorld) -> Self {
        BenchWorld {
            world,
            app_done: HashMap::new(),
            completions: Vec::new(),
            replies: Vec::new(),
            reply_times: Vec::new(),
        }
    }
}

impl FluidModel for BenchWorld {
    fn fluid_mut(&mut self) -> &mut FluidSystem {
        &mut self.world.fluid
    }
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
        norns::handle_flow_complete(sim, done);
    }
}

impl HasNorns for BenchWorld {
    fn norns_mut(&mut self) -> &mut NornsWorld {
        &mut self.world
    }
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
        sim.model.completions.push(completion);
    }
    fn on_app_io_complete(sim: &mut Sim<Self>, token: u64) {
        let now = sim.now();
        sim.model.app_done.insert(token, now);
    }
    fn on_rpc_reply(sim: &mut Sim<Self>, reply: RpcReply) {
        let now = sim.now();
        sim.model.reply_times.push((reply.token, now));
        sim.model.replies.push(reply);
    }
}

/// Step the simulation until all `tokens` have completed (or events
/// run out). Returns the finish time of the last one.
pub fn wait_tokens(sim: &mut Sim<BenchWorld>, tokens: &[u64]) -> SimTime {
    while !tokens.iter().all(|t| sim.model.app_done.contains_key(t)) {
        if !sim.step() {
            panic!("simulation drained before all app I/O completed");
        }
    }
    tokens
        .iter()
        .map(|t| sim.model.app_done[t])
        .max()
        .unwrap_or(sim.now())
}

/// Step until `n` NORNS task completions have been observed.
pub fn wait_task_completions(sim: &mut Sim<BenchWorld>, n: usize) -> SimTime {
    while sim.model.completions.len() < n {
        if !sim.step() {
            panic!("simulation drained before {n} task completions");
        }
    }
    sim.now()
}

/// The full scheduler-driven model for workflow experiments.
pub struct SlurmWorld {
    pub world: NornsWorld,
    pub ctld: Slurmctld,
    pub events: Vec<(SimTime, JobEvent)>,
    pub app_done: HashMap<u64, SimTime>,
    /// Hook inspected by experiment drivers after each job event.
    pub started_jobs: Vec<slurm_sim::SlurmJobId>,
}

impl SlurmWorld {
    pub fn new(world: NornsWorld, config: SchedConfig) -> Self {
        let nodes = world.nodes();
        SlurmWorld {
            world,
            ctld: Slurmctld::new(nodes, config),
            events: Vec::new(),
            app_done: HashMap::new(),
            started_jobs: Vec::new(),
        }
    }
}

impl FluidModel for SlurmWorld {
    fn fluid_mut(&mut self) -> &mut FluidSystem {
        &mut self.world.fluid
    }
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
        norns::handle_flow_complete(sim, done);
    }
}

impl HasNorns for SlurmWorld {
    fn norns_mut(&mut self) -> &mut NornsWorld {
        &mut self.world
    }
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
        slurm_sim::handle_task_complete(sim, &completion);
    }
    fn on_app_io_complete(sim: &mut Sim<Self>, token: u64) {
        let now = sim.now();
        sim.model.app_done.insert(token, now);
    }
}

impl HasSlurm for SlurmWorld {
    fn ctld_mut(&mut self) -> &mut Slurmctld {
        &mut self.ctld
    }
    fn on_job_event(sim: &mut Sim<Self>, event: JobEvent) {
        let now = sim.now();
        if let JobEvent::Started { job, .. } = &event {
            sim.model.started_jobs.push(*job);
        }
        sim.model.events.push((now, event));
    }
}

/// Register the standard dataspaces (every storage tier by its own
/// name) on every node of the world.
pub fn register_tiers<M: HasNorns>(sim: &mut Sim<M>) {
    let (nodes, names) = {
        let world = sim.model.norns_mut();
        (world.nodes(), world.storage.tier_names())
    };
    for n in 0..nodes {
        for name in &names {
            let _ = norns::sim::ops::register_dataspace(sim, n, name, name, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simstore::IoDir;

    #[test]
    fn bench_world_tracks_app_io() {
        let tb = cluster::nextgenio_quiet(2);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 1);
        register_tiers(&mut sim);
        let t1 =
            norns::sim::ops::app_io(&mut sim, 0, "pmdk0", IoDir::Write, 1 << 30, 1, None).unwrap();
        let t2 =
            norns::sim::ops::app_io(&mut sim, 1, "pmdk0", IoDir::Write, 1 << 30, 1, None).unwrap();
        let done = wait_tokens(&mut sim, &[t1, t2]);
        assert!(done > SimTime::ZERO);
        assert_eq!(sim.model.app_done.len(), 2);
    }

    #[test]
    fn register_tiers_covers_all_nodes() {
        let tb = cluster::nextgenio_quiet(3);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 1);
        register_tiers(&mut sim);
        for n in 0..3 {
            let info = norns::sim::ops::dataspace_info(&mut sim, n);
            assert_eq!(info, vec!["lustre".to_string(), "pmdk0".to_string()]);
        }
    }
}
