//! HPCG-like memory-bound compute model.
//!
//! The paper (§V-D): "The conjugate gradients algorithm used in the
//! benchmark is not just floating point performance limited, it is
//! also heavily reliant on the performance of the memory system". We
//! model an HPCG rank set per node as a sustained memory-bandwidth
//! consumer: the kernel must move a fixed volume of memory traffic;
//! when staging shares the node's memory controller the kernel
//! stretches — reproducing the ≈15% Table IV slowdown.

use norns::sim::ops;
use simcore::{Sim, SimDuration, SimTime};

use crate::world::{wait_tokens, BenchWorld};

#[derive(Debug, Clone)]
pub struct HpcgConfig {
    /// Memory-traffic demand of the 48 ranks on one node, bytes/s.
    /// Slightly below the node's DRAM bandwidth so HPCG alone is
    /// memory-bound but unconstrained.
    pub mem_demand_bps: f64,
    /// Baseline runtime of the test case on an idle node.
    pub base_runtime: SimDuration,
}

impl HpcgConfig {
    /// The paper's small test case: ≈122 s with 48 MPI processes.
    pub fn paper_test_case() -> Self {
        HpcgConfig {
            mem_demand_bps: simcore::units::gib_per_s(11.8),
            base_runtime: SimDuration::from_secs(122),
        }
    }

    /// Total memory traffic implied by (demand × base runtime).
    pub fn total_traffic(&self) -> u64 {
        (self.mem_demand_bps * self.base_runtime.as_secs_f64()) as u64
    }
}

#[derive(Debug, Clone, Copy)]
pub struct HpcgResult {
    pub started: SimTime,
    pub finished: SimTime,
}

impl HpcgResult {
    pub fn runtime(&self) -> SimDuration {
        self.finished - self.started
    }
}

/// Start HPCG on the given nodes; returns the app tokens (one per
/// node). Use [`finish`] or `wait_tokens` to collect the runtime.
pub fn start(sim: &mut Sim<BenchWorld>, nodes: &[usize], cfg: &HpcgConfig) -> Vec<u64> {
    nodes
        .iter()
        .map(|&n| {
            ops::app_mem_io(sim, n, cfg.total_traffic(), cfg.mem_demand_bps)
                .expect("mem flow submission")
        })
        .collect()
}

/// Block until all HPCG ranks finish.
pub fn finish(sim: &mut Sim<BenchWorld>, started: SimTime, tokens: &[u64]) -> HpcgResult {
    let finished = wait_tokens(sim, tokens);
    HpcgResult { started, finished }
}

/// Convenience: run HPCG alone to completion.
pub fn run(sim: &mut Sim<BenchWorld>, nodes: &[usize], cfg: &HpcgConfig) -> HpcgResult {
    let started = sim.now();
    let tokens = start(sim, nodes, cfg);
    finish(sim, started, &tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::register_tiers;
    use norns::{ApiSource, JobId, JobSpec, ResourceRef, TaskSpec};
    use simstore::{Cred, Mode};

    fn world() -> Sim<BenchWorld> {
        let tb = cluster::nextgenio_quiet(2);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 11);
        register_tiers(&mut sim);
        norns::sim::ops::register_job(
            &mut sim,
            JobSpec {
                id: JobId(1),
                hosts: vec![0, 1],
                limits: vec![("pmdk0".into(), 0), ("lustre".into(), 0)],
                cred: Cred::new(1000, 1000),
            },
        )
        .unwrap();
        sim
    }

    #[test]
    fn baseline_runtime_matches_configuration() {
        let mut sim = world();
        let cfg = HpcgConfig::paper_test_case();
        let res = run(&mut sim, &[0], &cfg);
        let secs = res.runtime().as_secs_f64();
        assert!((secs - 122.0).abs() < 1.0, "idle runtime {secs}");
    }

    #[test]
    fn colocated_staging_slows_hpcg_by_about_fifteen_percent() {
        let mut sim = world();
        let cfg = HpcgConfig::paper_test_case();
        // Produce data to stage out while HPCG runs (100 GB on NVM).
        {
            let t = sim.model.world.storage.resolve("pmdk0").unwrap();
            sim.model
                .world
                .storage
                .ns_mut(t, Some(0))
                .write_file(
                    "out/data.bin",
                    100 * simcore::units::GB,
                    &Cred::new(1000, 1000),
                    Mode(0o644),
                )
                .unwrap();
        }
        let started = sim.now();
        let tokens = start(&mut sim, &[0], &cfg);
        // Kick off the stage-out through NORNS on the same node.
        norns::sim::ops::submit_task(
            &mut sim,
            0,
            JobId(1),
            ApiSource::Control,
            TaskSpec::mv(
                ResourceRef::local("pmdk0", "out/data.bin"),
                ResourceRef::local("lustre", "archive/data.bin"),
            ),
            0,
        )
        .unwrap();
        let res = finish(&mut sim, started, &tokens);
        let secs = res.runtime().as_secs_f64();
        // Staging ≈100 GB at ≈2.3 GiB/s ≈ 40 s of contention; HPCG
        // loses (11 - (12-2.4)) ≈ 1.4 GiB/s while it lasts → a
        // noticeable but bounded stretch (paper: ≈15%).
        assert!(secs > 125.0, "staging must slow HPCG: {secs}");
        assert!(secs < 160.0, "slowdown should stay bounded: {secs}");
    }

    #[test]
    fn per_node_kernels_are_independent() {
        let mut sim = world();
        let cfg = HpcgConfig::paper_test_case();
        let res = run(&mut sim, &[0, 1], &cfg);
        let secs = res.runtime().as_secs_f64();
        assert!(
            (secs - 122.0).abs() < 1.0,
            "two idle nodes run at full speed: {secs}"
        );
    }
}
