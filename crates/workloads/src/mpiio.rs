//! Collective MPI-IO write benchmark (the ARCHER Fig. 1a workload).
//!
//! "The benchmark writes to a single file across all processes using
//! collective MPI-I/O functions … using two different Lustre striping
//! options (either the default stripe, which used 4 OSTs, or using all
//! the OSTs in the filesystem)."

use norns::sim::ops;
use simcore::{Sim, SimDuration, SimTime};
use simstore::IoDir;

use crate::world::{wait_tokens, BenchWorld};

#[derive(Debug, Clone)]
pub struct MpiIoConfig {
    pub tier: String,
    /// Writer processes per node.
    pub writers_per_node: usize,
    /// Bytes written per writer (paper: 100 MB).
    pub bytes_per_writer: u64,
    /// Stripe count: `Some(4)` for the default, `None` → full stripe.
    pub stripe: Option<usize>,
    /// Two-phase collective buffering adds a synchronization cost per
    /// writer wave.
    pub collective_overhead: SimDuration,
}

impl MpiIoConfig {
    pub fn archer(stripe: Option<usize>) -> Self {
        MpiIoConfig {
            tier: "lustre".into(),
            writers_per_node: 24,
            bytes_per_writer: 100 * 1000 * 1000,
            stripe,
            collective_overhead: SimDuration::from_millis(30),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub struct MpiIoResult {
    pub started: SimTime,
    pub finished: SimTime,
    pub total_bytes: u64,
}

impl MpiIoResult {
    pub fn bandwidth(&self) -> f64 {
        let secs = (self.finished - self.started).as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.total_bytes as f64 / secs
    }

    pub fn mb_per_s(&self) -> f64 {
        self.bandwidth() / 1e6
    }
}

/// Run one collective write and block until completion.
pub fn run(sim: &mut Sim<BenchWorld>, nodes: &[usize], cfg: &MpiIoConfig) -> MpiIoResult {
    let started = sim.now();
    let per_node = cfg.bytes_per_writer * cfg.writers_per_node as u64;
    // Collective buffering: one aggregated stream per node into the
    // single shared file; the stripe allocation is made once, so all
    // writers contend on the same OST set. `None` = full stripe
    // (`lfs setstripe -c -1`): usize::MAX clamps to every OST.
    let stripe = Some(cfg.stripe.unwrap_or(usize::MAX));
    let tokens = ops::app_shared_io(sim, nodes, &cfg.tier, IoDir::Write, per_node, stripe)
        .expect("shared io submission");
    let io_done = wait_tokens(sim, &tokens);
    // Collective close/sync barrier.
    let finished = io_done + cfg.collective_overhead;
    sim.run_until(finished);
    MpiIoResult {
        started,
        finished,
        total_bytes: per_node * nodes.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::register_tiers;

    fn archer_sim(nodes: usize, seed: u64) -> Sim<BenchWorld> {
        let tb = cluster::archer(nodes);
        let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
        register_tiers(&mut sim);
        sim
    }

    #[test]
    fn full_stripe_beats_default_stripe_at_scale() {
        // With 16 nodes the default 4-OST stripe is OST-bound while the
        // full 48-OST stripe can use the whole server side.
        let mut sim = archer_sim(16, 5);
        let slim = run(
            &mut sim,
            &(0..16).collect::<Vec<_>>(),
            &MpiIoConfig::archer(Some(4)),
        );
        let mut sim = archer_sim(16, 5);
        let wide = run(
            &mut sim,
            &(0..16).collect::<Vec<_>>(),
            &MpiIoConfig::archer(None),
        );
        assert!(
            wide.bandwidth() > slim.bandwidth() * 1.5,
            "full stripe {} vs default {}",
            wide.mb_per_s(),
            slim.mb_per_s()
        );
    }

    #[test]
    fn bandwidth_grows_with_writers_then_saturates() {
        let bw = |nodes: usize| {
            let mut sim = archer_sim(nodes, 9);
            run(
                &mut sim,
                &(0..nodes).collect::<Vec<_>>(),
                &MpiIoConfig::archer(None),
            )
            .bandwidth()
        };
        let b1 = bw(1);
        let b8 = bw(8);
        let b32 = bw(32);
        assert!(b8 > b1 * 2.0, "more writers, more bandwidth: {b1} → {b8}");
        assert!(b32 < b8 * 4.0, "server side saturates: {b8} → {b32}");
    }
}
