//! OpenFOAM-like CFD workflow model (Table V).
//!
//! The paper runs "a low-Reynolds number laminar-turbulent transition
//! modeling simulation of the flow over the surface of an aircraft,
//! using a mesh with ≈43 million mesh points … decomposed over 16
//! nodes enabling 768 MPI processes … The decomposition step is
//! serial, takes 1105 seconds, and requires 30 GB of memory … The
//! solver produces 160 GB of output data when run in this
//! configuration, with a directory per process."

use norns::sim::ops;
use norns::HasNorns;
use simcore::{Sim, SimDuration, SimTime};
use simstore::{Cred, IoDir, Mode};

use crate::world::{wait_tokens, BenchWorld};

#[derive(Debug, Clone)]
pub struct OpenFoamConfig {
    /// MPI ranks for the solver (= processor directories).
    pub ranks: usize,
    pub solver_nodes: usize,
    /// Serial decomposition compute time (memory-bound mesh work).
    pub decompose_compute: SimDuration,
    /// Decomposed mesh volume written by the decomposition.
    pub mesh_bytes: u64,
    /// Solver compute for the 20-timestep benchmark run.
    pub solver_compute: SimDuration,
    /// Solver output volume (dir per process).
    pub output_bytes: u64,
}

impl Default for OpenFoamConfig {
    fn default() -> Self {
        OpenFoamConfig {
            ranks: 768,
            solver_nodes: 16,
            decompose_compute: SimDuration::from_secs(1075),
            mesh_bytes: 30 * simcore::units::GB,
            solver_compute: SimDuration::from_secs(55),
            output_bytes: 160 * simcore::units::GB,
        }
    }
}

/// Outcome of one workflow phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    pub started: SimTime,
    pub finished: SimTime,
}

impl PhaseResult {
    pub fn runtime(&self) -> SimDuration {
        self.finished - self.started
    }
}

/// Create the decomposed case directory (one `processor<i>` dir per
/// rank) in a namespace, so staging and the solver see real files.
pub fn materialize_case<M: HasNorns>(
    sim: &mut Sim<M>,
    tier_name: &str,
    node: Option<usize>,
    case_path: &str,
    cfg: &OpenFoamConfig,
) {
    let world = sim.model.norns_mut();
    let tier = world.storage.resolve(tier_name).expect("tier exists");
    let per_rank = cfg.mesh_bytes / cfg.ranks as u64;
    let cred = Cred::new(1000, 1000);
    for r in 0..cfg.ranks {
        world
            .storage
            .ns_mut(tier, node)
            .write_file(
                &format!("{case_path}/processor{r}/constant/polyMesh"),
                per_rank,
                &cred,
                Mode(0o644),
            )
            .expect("materialize processor dir");
    }
}

/// Serial mesh decomposition on `node`, writing the decomposed case to
/// `tier`. Blocks until done; also materializes the case directory.
pub fn decompose(
    sim: &mut Sim<BenchWorld>,
    node: usize,
    tier: &str,
    case_path: &str,
    cfg: &OpenFoamConfig,
) -> PhaseResult {
    let started = sim.now();
    sim.run_until(started + cfg.decompose_compute);
    // Write the decomposed mesh: ranks × several field files each.
    let token = ops::app_io(
        sim,
        node,
        tier,
        IoDir::Write,
        cfg.mesh_bytes,
        cfg.ranks as u64 * 8,
        None,
    )
    .expect("decompose io");
    let finished = wait_tokens(sim, &[token]);
    let node_arg = node_arg(sim, tier, node);
    materialize_case(sim, tier, node_arg, case_path, cfg);
    PhaseResult { started, finished }
}

fn node_arg(sim: &mut Sim<BenchWorld>, tier: &str, node: usize) -> Option<usize> {
    let world = sim.model.norns_mut();
    let t = world.storage.resolve(tier).expect("tier");
    if world.storage.kind(t).is_node_local() {
        Some(node)
    } else {
        None
    }
}

/// The 20-timestep picoFoam solver run over `nodes`, reading the case
/// from `tier` and writing output there (dir per process). Blocks
/// until every node finished its compute + output wave.
pub fn solver(
    sim: &mut Sim<BenchWorld>,
    nodes: &[usize],
    tier: &str,
    cfg: &OpenFoamConfig,
) -> PhaseResult {
    let started = sim.now();
    // Compute phase (parallel, synchronized by collectives).
    sim.run_until(started + cfg.solver_compute);
    // Output wave: each node writes its ranks' directories.
    let per_node = cfg.output_bytes / nodes.len() as u64;
    let dirs_per_node = (cfg.ranks / nodes.len()) as u64;
    let tokens: Vec<u64> = nodes
        .iter()
        .map(|&n| {
            ops::app_io(sim, n, tier, IoDir::Write, per_node, dirs_per_node, None)
                .expect("solver io")
        })
        .collect();
    let finished = wait_tokens(sim, &tokens);
    PhaseResult { started, finished }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::register_tiers;

    fn world(nodes: usize) -> Sim<BenchWorld> {
        let tb = cluster::nextgenio_quiet(nodes);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 31);
        register_tiers(&mut sim);
        sim
    }

    #[test]
    fn decompose_writes_the_case_tree() {
        let cfg = OpenFoamConfig {
            ranks: 16,
            ..Default::default()
        };
        let mut sim = world(1);
        let res = decompose(&mut sim, 0, "pmdk0", "case", &cfg);
        assert!(res.runtime() >= cfg.decompose_compute);
        let t = sim.model.world.storage.resolve("pmdk0").unwrap();
        let ns = sim.model.world.storage.ns(t, Some(0));
        assert!(ns.exists("case/processor0/constant/polyMesh"));
        assert!(ns.exists("case/processor15/constant/polyMesh"));
    }

    #[test]
    fn solver_is_faster_on_node_local_storage() {
        let cfg = OpenFoamConfig::default();
        let nodes: Vec<usize> = (0..16).collect();
        let lustre = {
            let mut sim = world(16);
            solver(&mut sim, &nodes, "lustre", &cfg)
                .runtime()
                .as_secs_f64()
        };
        let nvm = {
            let mut sim = world(16);
            solver(&mut sim, &nodes, "pmdk0", &cfg)
                .runtime()
                .as_secs_f64()
        };
        // Paper: 123 s vs 66 s (≈1.9×). Require a clear win.
        assert!(
            lustre > nvm * 1.3,
            "solver lustre {lustre} vs nvm {nvm} — node-local must win"
        );
        assert!((55.0..80.0).contains(&nvm), "nvm solver ≈66 s, got {nvm}");
    }

    #[test]
    fn decompose_dominates_the_workflow() {
        // Sanity on the Table V structure: decomposition >> solver.
        let cfg = OpenFoamConfig::default();
        assert!(cfg.decompose_compute.as_secs_f64() > 10.0 * cfg.solver_compute.as_secs_f64());
    }
}
