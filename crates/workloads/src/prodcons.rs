//! The synthetic producer/consumer workflow (Tables III & IV).
//!
//! "We created a synthetic workflow benchmark that has a producer and
//! a consumer of data, configurable to produce a range of files with a
//! range of different sizes." Each phase is compute followed by an I/O
//! wave; runtimes are calibrated so the NVM/Lustre split reproduces
//! Table III's shape (producer 96 s → 64 s, consumer 74 s → 30 s for
//! 100 GB).

use norns::sim::ops;
use norns::HasNorns;
use simcore::{Sim, SimDuration};
use simstore::{Cred, IoDir, Mode};

use crate::world::{wait_tokens, BenchWorld};

/// One workflow component (producer or consumer).
#[derive(Debug, Clone)]
pub struct Phase {
    /// Pure compute before the I/O wave.
    pub compute: SimDuration,
    /// Bytes written (producer) or read (consumer).
    pub bytes: u64,
    /// Number of files produced/consumed.
    pub files: u64,
    pub dir: IoDir,
}

/// The benchmark configuration (100 GB as in the paper).
#[derive(Debug, Clone)]
pub struct ProdConsConfig {
    pub data_bytes: u64,
    pub files: u64,
    pub producer_compute: SimDuration,
    pub consumer_compute: SimDuration,
}

impl Default for ProdConsConfig {
    fn default() -> Self {
        ProdConsConfig {
            data_bytes: 100 * simcore::units::GB,
            files: 100,
            producer_compute: SimDuration::from_secs(45),
            consumer_compute: SimDuration::from_secs(18),
        }
    }
}

impl ProdConsConfig {
    pub fn producer(&self) -> Phase {
        Phase {
            compute: self.producer_compute,
            bytes: self.data_bytes,
            files: self.files,
            dir: IoDir::Write,
        }
    }

    pub fn consumer(&self) -> Phase {
        Phase {
            compute: self.consumer_compute,
            bytes: self.data_bytes,
            files: self.files,
            dir: IoDir::Read,
        }
    }
}

/// Create the produced dataset in a tier namespace (so later staging
/// tasks have real files to move).
pub fn materialize_output<M: HasNorns>(
    sim: &mut Sim<M>,
    tier_name: &str,
    node: Option<usize>,
    dir_path: &str,
    cfg: &ProdConsConfig,
) {
    let world = sim.model.norns_mut();
    let tier = world.storage.resolve(tier_name).expect("tier exists");
    let per_file = cfg.data_bytes / cfg.files;
    let cred = Cred::new(1000, 1000);
    for i in 0..cfg.files {
        world
            .storage
            .ns_mut(tier, node)
            .write_file(
                &format!("{dir_path}/part{i:04}"),
                per_file,
                &cred,
                Mode(0o644),
            )
            .expect("materialize file");
    }
}

/// Run one phase to completion on a single node against `tier`.
/// Returns the phase wall time.
pub fn run_phase(sim: &mut Sim<BenchWorld>, node: usize, tier: &str, phase: &Phase) -> SimDuration {
    let started = sim.now();
    // Compute part.
    let compute_end = started + phase.compute;
    sim.run_until(compute_end);
    // I/O wave.
    let token =
        ops::app_io(sim, node, tier, phase.dir, phase.bytes, phase.files, None).expect("phase io");
    let finished = wait_tokens(sim, &[token]);
    finished - started
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::register_tiers;

    fn world() -> Sim<BenchWorld> {
        let tb = cluster::nextgenio_quiet(2);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 21);
        register_tiers(&mut sim);
        sim
    }

    #[test]
    fn nvm_phases_match_table_iii_shape() {
        let cfg = ProdConsConfig::default();
        let mut sim = world();
        let p = run_phase(&mut sim, 0, "pmdk0", &cfg.producer()).as_secs_f64();
        let c = run_phase(&mut sim, 0, "pmdk0", &cfg.consumer()).as_secs_f64();
        // Paper: producer 64 s, consumer 30 s on NVM.
        assert!((p - 64.0).abs() < 6.0, "producer on NVM took {p}");
        assert!((c - 30.0).abs() < 5.0, "consumer on NVM took {c}");
    }

    #[test]
    fn lustre_phases_are_slower_than_nvm() {
        let cfg = ProdConsConfig::default();
        let mut sim = world();
        let p_nvm = run_phase(&mut sim, 0, "pmdk0", &cfg.producer()).as_secs_f64();
        let c_nvm = run_phase(&mut sim, 0, "pmdk0", &cfg.consumer()).as_secs_f64();
        let p_pfs = run_phase(&mut sim, 0, "lustre", &cfg.producer()).as_secs_f64();
        let c_pfs = run_phase(&mut sim, 1, "lustre", &cfg.consumer()).as_secs_f64();
        assert!(
            p_pfs > p_nvm * 1.2,
            "producer: lustre {p_pfs} vs nvm {p_nvm}"
        );
        assert!(
            c_pfs > c_nvm * 1.5,
            "consumer: lustre {c_pfs} vs nvm {c_nvm}"
        );
        // Whole-workflow improvement ≈46% in the paper; require the
        // same direction with at least 25%.
        let lustre_total = p_pfs + c_pfs;
        let nvm_total = p_nvm + c_nvm;
        assert!(
            nvm_total < lustre_total * 0.75,
            "workflow: {lustre_total} → {nvm_total}"
        );
    }

    #[test]
    fn materialized_output_is_stageable() {
        let cfg = ProdConsConfig {
            files: 4,
            ..Default::default()
        };
        let mut sim = world();
        materialize_output(&mut sim, "pmdk0", Some(0), "wfout", &cfg);
        let t = sim.model.world.storage.resolve("pmdk0").unwrap();
        let ns = sim.model.world.storage.ns(t, Some(0));
        assert_eq!(ns.file_count("wfout", &Cred::new(1000, 1000)).unwrap(), 4);
        assert_eq!(
            ns.tree_bytes("wfout", &Cred::new(1000, 1000)).unwrap(),
            cfg.data_bytes / 4 * 4
        );
    }
}
