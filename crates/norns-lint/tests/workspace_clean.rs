//! The live workspace must lint clean — and the run must be
//! non-trivial, so an accidentally empty scan set cannot masquerade as
//! a pass.

use norns_lint::Config;
use std::path::Path;

#[test]
fn live_workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let cfg = Config::workspace(&root).expect("scan workspace");
    let report = norns_lint::run(&cfg).expect("lint workspace");

    let failures: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("[{}] {}:{} {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        failures.is_empty(),
        "workspace must lint clean:\n{}",
        failures.join("\n")
    );

    // Guard against a silently degenerate run: the workspace has a
    // known-substantial unsafe inventory and lock population.
    assert!(
        report.unsafe_sites.len() >= 15,
        "unsafe inventory shrank suspiciously: {}",
        report.unsafe_sites.len()
    );
    assert!(
        report
            .unsafe_sites
            .iter()
            .all(|u| u.has_safety_comment || u.allowed),
        "every unsafe site carries a SAFETY comment or an explicit waiver"
    );
    assert!(
        report.lock_names.len() >= 10,
        "lock-name collection shrank suspiciously: {:?}",
        report.lock_names
    );
    let wire = report.wire.as_ref().expect("wire summary present");
    assert!(
        wire.enums.len() >= 8,
        "protocol enum parse shrank suspiciously: {:?}",
        wire.enums.keys().collect::<Vec<_>>()
    );

    // The interprocedural layer must have indexed the whole workspace,
    // matched both reactor entry points, and produced witness chains —
    // a degenerate call graph would silently gut the reachability
    // rules while everything still "passes".
    let graph = report.graph.as_ref().expect("call-graph report present");
    assert!(
        graph.functions_indexed >= 300,
        "call-graph index shrank suspiciously: {} fns",
        graph.functions_indexed
    );
    assert_eq!(
        graph.reactor_entries.len(),
        2,
        "both reactor entry points must match: {:?}",
        graph.reactor_entries
    );
    assert!(
        graph.reactor_reachable >= 50,
        "reactor-reachable set shrank suspiciously: {}",
        graph.reactor_reachable
    );
    assert!(
        graph.resolved_unique > 0 && graph.ambiguous > 0 && graph.unresolved > 0,
        "resolution tiers look degenerate: {graph:?}"
    );
    assert!(
        report
            .findings
            .iter()
            .filter(|f| f.allowed.is_some())
            .count()
            >= 8,
        "the deliberate waivers must stay inventoried"
    );
    assert!(
        report
            .findings
            .iter()
            .filter(|f| matches!(f.rule, norns_lint::Rule::ReactorBlocking))
            .all(|f| f.chain.len() >= 2),
        "reactor findings must carry their call chains"
    );
}

/// The full-workspace analysis must stay cheap enough for CI's lint
/// step (budget: well under 30 s even on a cold cache).
#[test]
fn full_workspace_lint_stays_inside_the_time_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let start = std::time::Instant::now();
    let cfg = Config::workspace(&root).expect("scan workspace");
    let report = norns_lint::run(&cfg).expect("lint workspace");
    let elapsed = start.elapsed();
    assert!(
        report.graph.is_some(),
        "budget run must include the interprocedural layer"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "full workspace lint took {elapsed:?}, budget is 30s"
    );
}
