//! The live workspace must lint clean — and the run must be
//! non-trivial, so an accidentally empty scan set cannot masquerade as
//! a pass.

use norns_lint::Config;
use std::path::Path;

#[test]
fn live_workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let cfg = Config::workspace(&root).expect("scan workspace");
    let report = norns_lint::run(&cfg).expect("lint workspace");

    let failures: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("[{}] {}:{} {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        failures.is_empty(),
        "workspace must lint clean:\n{}",
        failures.join("\n")
    );

    // Guard against a silently degenerate run: the workspace has a
    // known-substantial unsafe inventory and lock population.
    assert!(
        report.unsafe_sites.len() >= 15,
        "unsafe inventory shrank suspiciously: {}",
        report.unsafe_sites.len()
    );
    assert!(
        report
            .unsafe_sites
            .iter()
            .all(|u| u.has_safety_comment || u.allowed),
        "every unsafe site carries a SAFETY comment or an explicit waiver"
    );
    assert!(
        report.lock_names.len() >= 10,
        "lock-name collection shrank suspiciously: {:?}",
        report.lock_names
    );
    let wire = report.wire.as_ref().expect("wire summary present");
    assert!(
        wire.enums.len() >= 8,
        "protocol enum parse shrank suspiciously: {:?}",
        wire.enums.keys().collect::<Vec<_>>()
    );
}
