//! Mutation self-tests: the analyzer must notice when the workspace
//! gets worse. A copy of the live tree is mutated one change at a
//! time — deleting a single waiver, or inlining a blocking call into
//! the reactor loop — and each mutant must produce at least one
//! unsuppressed finding (what `--check` fails on).
//!
//! This guards the rules themselves: a refactor that silently stops
//! the reactor rules from firing would keep the live tree "clean" and
//! nothing else would catch it.

use norns_lint::{run, Config, Rule};
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("norns-lint sits two levels under the workspace root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let p = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if p.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// A scratch copy of every workspace `.rs` file, removed on drop.
struct TempTree(PathBuf);

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn copy_workspace(tag: &str) -> TempTree {
    let root = workspace_root();
    let tmp =
        std::env::temp_dir().join(format!("norns-lint-mutation-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&tmp);
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    assert!(files.len() > 20, "workspace copy looks implausibly small");
    for f in &files {
        let rel = f.strip_prefix(&root).unwrap();
        let dst = tmp.join(rel);
        fs::create_dir_all(dst.parent().unwrap()).unwrap();
        fs::copy(f, &dst).unwrap();
    }
    TempTree(tmp)
}

fn unsuppressed_rules(root: &Path) -> Vec<Rule> {
    let cfg = Config::workspace(root).expect("scan mutated tree");
    let report = run(&cfg).expect("lint mutated tree");
    report.unsuppressed().map(|f| f.rule).collect()
}

/// Standalone waiver-marker lines in the copied tree, as
/// (file, line index, rule name).
fn waiver_lines(tmp: &Path) -> Vec<(PathBuf, usize, String)> {
    let mut files = Vec::new();
    collect_rs(&tmp.join("crates"), &mut files);
    let mut out = Vec::new();
    for f in files {
        let text = fs::read_to_string(&f).unwrap();
        for (i, line) in text.lines().enumerate() {
            let t = line.trim_start();
            if let Some(rest) = t.strip_prefix("// norns-lint: allow(") {
                let rule = rest.split(')').next().unwrap_or("").to_string();
                out.push((f.clone(), i, rule));
            }
        }
    }
    out
}

#[test]
fn deleting_any_single_waiver_fails_the_check() {
    let tree = copy_workspace("waivers");
    let tmp = &tree.0;

    assert!(
        unsuppressed_rules(tmp).is_empty(),
        "the unmutated copy must be clean"
    );

    let waivers = waiver_lines(tmp);
    assert!(
        waivers.len() >= 8,
        "expected the live tree's waivers in the copy, found {}",
        waivers.len()
    );

    for (file, line_idx, rule) in waivers {
        let original = fs::read_to_string(&file).unwrap();
        let mutated: Vec<&str> = original
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != line_idx)
            .map(|(_, l)| l)
            .collect();
        fs::write(&file, mutated.join("\n")).unwrap();

        let fired = unsuppressed_rules(tmp);
        assert!(
            fired.iter().any(|r| r.name() == rule),
            "deleting the `{rule}` waiver at {}:{} must re-expose the finding; got {:?}",
            file.display(),
            line_idx + 1,
            fired
        );

        fs::write(&file, original).unwrap();
    }
}

#[test]
fn inlining_a_blocking_call_into_the_reactor_fails_the_check() {
    let tree = copy_workspace("inline");
    let tmp = &tree.0;
    let daemon = tmp.join("crates/norns-ipc/src/daemon.rs");
    let original = fs::read_to_string(&daemon).unwrap();

    // Plant a sleep on the first line of `reactor_loop`'s body.
    let mut lines: Vec<String> = original.lines().map(str::to_string).collect();
    let fn_line = lines
        .iter()
        .position(|l| l.contains("fn reactor_loop"))
        .expect("daemon.rs defines reactor_loop");
    let body_open = (fn_line..lines.len())
        .find(|&i| lines[i].trim_end().ends_with('{'))
        .expect("reactor_loop has a body");
    lines.insert(
        body_open + 1,
        "        std::thread::sleep(std::time::Duration::from_millis(1));".to_string(),
    );
    fs::write(&daemon, lines.join("\n")).unwrap();

    let fired = unsuppressed_rules(tmp);
    assert!(
        fired.contains(&Rule::ReactorBlocking),
        "a sleep inside reactor_loop must fire reactor-blocking; got {fired:?}"
    );
}
