//! Fixture-based self-tests: each rule flags its bad snippet and stays
//! quiet on the good one. The snippets live under `tests/fixtures/`
//! (a directory name the workspace scan skips, since they are bad on
//! purpose) and are never compiled — they only pass through the lexer.

use norns_lint::reactor::ReactorConfig;
use norns_lint::wire::{DispatchTarget, WireConfig};
use norns_lint::{run, Config, GraphConfig, Report, Rule};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_safety(names: &[&str]) -> Report {
    let root = fixture_dir();
    let cfg = Config {
        safety_files: names.iter().map(|n| root.join(n)).collect(),
        lock_files: Vec::new(),
        wire: None,
        graph: None,
        root,
    };
    run(&cfg).expect("fixture lint run")
}

fn lint_locks(names: &[&str]) -> Report {
    let root = fixture_dir();
    let cfg = Config {
        safety_files: Vec::new(),
        lock_files: names.iter().map(|n| root.join(n)).collect(),
        wire: None,
        graph: None,
        root,
    };
    run(&cfg).expect("fixture lint run")
}

/// Graph-backed run: the named files feed the call graph, with the
/// given reactor entry points and panic scope.
fn lint_reactor(names: &[&str], entries: &[(&str, &str)], panic_scope: &[&str]) -> Report {
    let root = fixture_dir();
    let cfg = Config {
        safety_files: Vec::new(),
        lock_files: Vec::new(),
        wire: None,
        graph: Some(GraphConfig {
            files: names.iter().map(|n| root.join(n)).collect(),
            reactor: Some(ReactorConfig {
                entries: entries
                    .iter()
                    .map(|(f, n)| (f.to_string(), n.to_string()))
                    .collect(),
                panic_scope: panic_scope.iter().map(|s| s.to_string()).collect(),
            }),
        }),
        root,
    };
    run(&cfg).expect("fixture lint run")
}

/// Lock-rule run with the interprocedural layer enabled.
fn lint_locks_graph(names: &[&str]) -> Report {
    let root = fixture_dir();
    let files: Vec<PathBuf> = names.iter().map(|n| root.join(n)).collect();
    let cfg = Config {
        safety_files: Vec::new(),
        lock_files: files.clone(),
        wire: None,
        graph: Some(GraphConfig {
            files,
            reactor: None,
        }),
        root,
    };
    run(&cfg).expect("fixture lint run")
}

fn rules(report: &Report) -> Vec<Rule> {
    report.unsuppressed().map(|f| f.rule).collect()
}

#[test]
fn safety_bad_flags_every_site_kind() {
    let report = lint_safety(&["safety_bad.rs"]);
    assert_eq!(
        rules(&report),
        vec![Rule::UnsafeSafetyComment; 4],
        "extern block, unsafe block, unsafe fn, unsafe impl must all fire"
    );
    let kinds: Vec<&str> = report.unsafe_sites.iter().map(|u| u.kind).collect();
    assert_eq!(
        kinds,
        vec!["extern block", "unsafe block", "unsafe fn", "unsafe impl"]
    );
    assert!(report.unsafe_sites.iter().all(|u| !u.has_safety_comment));
}

#[test]
fn safety_good_accepts_every_attachment_form() {
    let report = lint_safety(&["safety_good.rs"]);
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "findings: {:?}",
        report.findings
    );
    assert_eq!(report.unsafe_sites.len(), 6);
    assert!(report.unsafe_sites.iter().all(|u| u.has_safety_comment));
}

#[test]
fn guard_across_blocking_call_is_flagged() {
    let report = lint_locks(&["locks_blocking_bad.rs"]);
    assert_eq!(rules(&report), vec![Rule::LockAcrossBlocking]);
    let f = report.unsuppressed().next().unwrap();
    assert!(
        f.message.contains("write_all") && f.message.contains("peers"),
        "finding must name the call and the guard: {}",
        f.message
    );
    assert_eq!(report.lock_names, vec!["peers".to_string()]);
}

#[test]
fn released_guards_do_not_fire() {
    let report = lint_locks(&["locks_blocking_good.rs"]);
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "scope end, drop(), and same-statement temporaries all release: {:?}",
        report.findings
    );
}

#[test]
fn opposite_nesting_orders_are_a_cycle() {
    let report = lint_locks(&["locks_cycle_bad.rs"]);
    let rs = rules(&report);
    assert!(
        rs.contains(&Rule::LockOrderCycle),
        "found instead: {:?}",
        report.findings
    );
    let pairs: Vec<(&str, &str)> = report
        .lock_edges
        .iter()
        .map(|e| (e.held.as_str(), e.acquired.as_str()))
        .collect();
    assert!(pairs.contains(&("alpha", "beta")) && pairs.contains(&("beta", "alpha")));
}

#[test]
fn consistent_nesting_order_is_clean() {
    let report = lint_locks(&["locks_cycle_good.rs"]);
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "findings: {:?}",
        report.findings
    );
    assert!(
        report
            .lock_edges
            .iter()
            .all(|e| (e.held.as_str(), e.acquired.as_str()) == ("alpha", "beta")),
        "edges: {:?}",
        report.lock_edges
    );
}

#[test]
fn two_hop_reactor_blocking_is_flagged_with_chain() {
    let report = lint_reactor(
        &["reactor_blocking_bad.rs"],
        &[("reactor_blocking_bad.rs", "reactor_loop")],
        &[],
    );
    assert_eq!(
        rules(&report),
        vec![Rule::ReactorBlocking],
        "findings: {:?}",
        report.findings
    );
    let f = report.unsuppressed().next().unwrap();
    assert_eq!(
        f.chain,
        vec!["reactor_loop", "dispatch", "flush_reply", "write_all"],
        "the finding must carry the full call chain to the sink"
    );
    assert!(f.message.contains("reactor_loop"), "{}", f.message);
}

#[test]
fn buffered_reactor_path_is_clean() {
    let report = lint_reactor(
        &["reactor_blocking_good.rs"],
        &[("reactor_blocking_good.rs", "reactor_loop")],
        &[],
    );
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "findings: {:?}",
        report.findings
    );
    // The blocking helper exists in the file but the reactor never
    // reaches it — reachability, not presence, is what fires.
    let g = report.graph.as_ref().unwrap();
    assert!(g.reactor_reachable < g.functions_indexed);
    assert_eq!(g.reactor_entries.len(), 1, "{:?}", g.reactor_entries);
}

#[test]
fn transitive_panic_path_is_flagged_with_chain() {
    let report = lint_reactor(
        &["panic_path_bad.rs"],
        &[("panic_path_bad.rs", "reactor_loop")],
        &["panic_path_bad.rs"],
    );
    assert_eq!(
        rules(&report),
        vec![Rule::PanicPath; 2],
        "unwrap and slice-index must both fire: {:?}",
        report.findings
    );
    for f in report.unsuppressed() {
        assert_eq!(
            &f.chain[..3],
            &["reactor_loop", "handle", "parse"],
            "chain must walk entry → helper → panicking fn: {:?}",
            f.chain
        );
    }
}

#[test]
fn error_returns_and_waivers_keep_the_panic_path_clean() {
    let report = lint_reactor(
        &["panic_path_good.rs"],
        &[("panic_path_good.rs", "reactor_loop")],
        &["panic_path_good.rs"],
    );
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "findings: {:?}",
        report.findings
    );
    // The waived slice-index stays inventoried with its reason; the
    // unwrap in the off-reactor helper produces nothing at all.
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, Rule::PanicPath);
    assert!(report.findings[0].allowed.is_some());
}

#[test]
fn guard_across_blocking_helper_is_flagged_interprocedurally() {
    let report = lint_locks_graph(&["locks_interproc_bad.rs"]);
    assert_eq!(
        rules(&report),
        vec![Rule::LockAcrossBlocking],
        "findings: {:?}",
        report.findings
    );
    let f = report.unsuppressed().next().unwrap();
    assert!(
        f.message.contains("send_all") && f.message.contains("peers"),
        "finding must name the helper and the guard: {}",
        f.message
    );
    assert_eq!(
        f.chain,
        vec!["send_all", "write_all"],
        "the chain must reach through the helper to the sink"
    );
}

#[test]
fn snapshot_before_blocking_helper_is_clean() {
    let report = lint_locks_graph(&["locks_interproc_good.rs"]);
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "the guard is a same-statement temporary: {:?}",
        report.findings
    );
}

#[test]
fn malformed_markers_are_findings_themselves() {
    let report = lint_safety(&["allow_bad.rs"]);
    assert_eq!(
        rules(&report),
        vec![Rule::BadAllowMarker; 3],
        "missing reason, unknown rule, and non-allow verb must each fire"
    );
}

#[test]
fn waived_finding_is_suppressed_but_inventoried() {
    let report = lint_safety(&["allow_waived.rs"]);
    assert_eq!(report.unsuppressed_count(), 0);
    assert_eq!(report.findings.len(), 1, "the waived finding stays in JSON");
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::UnsafeSafetyComment);
    assert_eq!(
        f.allowed.as_deref(),
        Some("fixture demonstrating a waiver"),
        "the reason travels with the finding"
    );
    assert!(report.to_json().contains("fixture demonstrating a waiver"));
}

#[test]
fn uncovered_wire_variants_are_flagged() {
    let root = fixture_dir();
    let cfg = Config {
        safety_files: Vec::new(),
        lock_files: Vec::new(),
        wire: Some(WireConfig {
            messages: root.join("wire_messages.rs"),
            corpus: root.join("wire_corpus.rs"),
            dispatch: vec![DispatchTarget {
                enums: vec!["Color".into()],
                file: root.join("wire_dispatch.rs"),
            }],
        }),
        graph: None,
        root,
    };
    let report = run(&cfg).expect("fixture lint run");
    assert_eq!(
        rules(&report),
        vec![Rule::WireExhaustiveness; 2],
        "findings: {:?}",
        report.findings
    );
    let wire = report.wire.as_ref().unwrap();
    assert_eq!(wire.enums["Color"], vec!["Red", "Green", "Blue"]);
    assert_eq!(
        wire.corpus_missing,
        vec!["Color::Blue".to_string()],
        "comment/string mentions of Color::Blue must not count as coverage"
    );
    assert_eq!(wire.dispatch_missing.len(), 1);
    assert!(wire.dispatch_missing[0].starts_with("Color::Green"));
}
