//! Fixture-based self-tests: each rule flags its bad snippet and stays
//! quiet on the good one. The snippets live under `tests/fixtures/`
//! (a directory name the workspace scan skips, since they are bad on
//! purpose) and are never compiled — they only pass through the lexer.

use norns_lint::wire::{DispatchTarget, WireConfig};
use norns_lint::{run, Config, Report, Rule};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_safety(names: &[&str]) -> Report {
    let root = fixture_dir();
    let cfg = Config {
        safety_files: names.iter().map(|n| root.join(n)).collect(),
        lock_files: Vec::new(),
        wire: None,
        root,
    };
    run(&cfg).expect("fixture lint run")
}

fn lint_locks(names: &[&str]) -> Report {
    let root = fixture_dir();
    let cfg = Config {
        safety_files: Vec::new(),
        lock_files: names.iter().map(|n| root.join(n)).collect(),
        wire: None,
        root,
    };
    run(&cfg).expect("fixture lint run")
}

fn rules(report: &Report) -> Vec<Rule> {
    report.unsuppressed().map(|f| f.rule).collect()
}

#[test]
fn safety_bad_flags_every_site_kind() {
    let report = lint_safety(&["safety_bad.rs"]);
    assert_eq!(
        rules(&report),
        vec![Rule::UnsafeSafetyComment; 4],
        "extern block, unsafe block, unsafe fn, unsafe impl must all fire"
    );
    let kinds: Vec<&str> = report.unsafe_sites.iter().map(|u| u.kind).collect();
    assert_eq!(
        kinds,
        vec!["extern block", "unsafe block", "unsafe fn", "unsafe impl"]
    );
    assert!(report.unsafe_sites.iter().all(|u| !u.has_safety_comment));
}

#[test]
fn safety_good_accepts_every_attachment_form() {
    let report = lint_safety(&["safety_good.rs"]);
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "findings: {:?}",
        report.findings
    );
    assert_eq!(report.unsafe_sites.len(), 6);
    assert!(report.unsafe_sites.iter().all(|u| u.has_safety_comment));
}

#[test]
fn guard_across_blocking_call_is_flagged() {
    let report = lint_locks(&["locks_blocking_bad.rs"]);
    assert_eq!(rules(&report), vec![Rule::LockAcrossBlocking]);
    let f = report.unsuppressed().next().unwrap();
    assert!(
        f.message.contains("write_all") && f.message.contains("peers"),
        "finding must name the call and the guard: {}",
        f.message
    );
    assert_eq!(report.lock_names, vec!["peers".to_string()]);
}

#[test]
fn released_guards_do_not_fire() {
    let report = lint_locks(&["locks_blocking_good.rs"]);
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "scope end, drop(), and same-statement temporaries all release: {:?}",
        report.findings
    );
}

#[test]
fn opposite_nesting_orders_are_a_cycle() {
    let report = lint_locks(&["locks_cycle_bad.rs"]);
    let rs = rules(&report);
    assert!(
        rs.contains(&Rule::LockOrderCycle),
        "found instead: {:?}",
        report.findings
    );
    let pairs: Vec<(&str, &str)> = report
        .lock_edges
        .iter()
        .map(|e| (e.held.as_str(), e.acquired.as_str()))
        .collect();
    assert!(pairs.contains(&("alpha", "beta")) && pairs.contains(&("beta", "alpha")));
}

#[test]
fn consistent_nesting_order_is_clean() {
    let report = lint_locks(&["locks_cycle_good.rs"]);
    assert_eq!(
        report.unsuppressed_count(),
        0,
        "findings: {:?}",
        report.findings
    );
    assert!(
        report
            .lock_edges
            .iter()
            .all(|e| (e.held.as_str(), e.acquired.as_str()) == ("alpha", "beta")),
        "edges: {:?}",
        report.lock_edges
    );
}

#[test]
fn malformed_markers_are_findings_themselves() {
    let report = lint_safety(&["allow_bad.rs"]);
    assert_eq!(
        rules(&report),
        vec![Rule::BadAllowMarker; 3],
        "missing reason, unknown rule, and non-allow verb must each fire"
    );
}

#[test]
fn waived_finding_is_suppressed_but_inventoried() {
    let report = lint_safety(&["allow_waived.rs"]);
    assert_eq!(report.unsuppressed_count(), 0);
    assert_eq!(report.findings.len(), 1, "the waived finding stays in JSON");
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::UnsafeSafetyComment);
    assert_eq!(
        f.allowed.as_deref(),
        Some("fixture demonstrating a waiver"),
        "the reason travels with the finding"
    );
    assert!(report.to_json().contains("fixture demonstrating a waiver"));
}

#[test]
fn uncovered_wire_variants_are_flagged() {
    let root = fixture_dir();
    let cfg = Config {
        safety_files: Vec::new(),
        lock_files: Vec::new(),
        wire: Some(WireConfig {
            messages: root.join("wire_messages.rs"),
            corpus: root.join("wire_corpus.rs"),
            dispatch: vec![DispatchTarget {
                enums: vec!["Color".into()],
                file: root.join("wire_dispatch.rs"),
            }],
        }),
        root,
    };
    let report = run(&cfg).expect("fixture lint run");
    assert_eq!(
        rules(&report),
        vec![Rule::WireExhaustiveness; 2],
        "findings: {:?}",
        report.findings
    );
    let wire = report.wire.as_ref().unwrap();
    assert_eq!(wire.enums["Color"], vec!["Red", "Green", "Blue"]);
    assert_eq!(
        wire.corpus_missing,
        vec!["Color::Blue".to_string()],
        "comment/string mentions of Color::Blue must not count as coverage"
    );
    assert_eq!(wire.dispatch_missing.len(), 1);
    assert!(wire.dispatch_missing[0].starts_with("Color::Green"));
}
