// Fixture: the guard is held across a helper whose *callee* blocks —
// the lexical pass sees no blocking name, only the call graph does.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct Registry {
    peers: Mutex<Vec<String>>,
}

impl Registry {
    fn broadcast(&self, sock: &mut TcpStream) {
        let guard = self.peers.lock().unwrap();
        send_all(sock, &guard);
    }
}

fn send_all(sock: &mut TcpStream, lines: &[String]) {
    for l in lines {
        let _ = sock.write_all(l.as_bytes());
    }
}
