// Fixture: a well-formed waiver — the finding is recorded with its
// justification but does not fail `--check`.

fn peek(p: *const u8) -> u8 {
    // norns-lint: allow(unsafe-safety-comment): fixture demonstrating a waiver
    unsafe { *p }
}
