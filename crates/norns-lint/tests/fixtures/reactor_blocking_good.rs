// Fixture: the same shape kept clean — the reactor path only buffers,
// and the blocking write lives in a helper the reactor never reaches
// (a dedicated flusher thread would own it).

use std::io::Write;
use std::net::TcpStream;

fn reactor_loop(out: &mut Vec<u8>) {
    dispatch(out);
}

fn dispatch(out: &mut Vec<u8>) {
    enqueue_reply(out);
}

fn enqueue_reply(out: &mut Vec<u8>) {
    out.extend_from_slice(b"ok");
}

fn blocking_flusher(sock: &mut TcpStream, out: &[u8]) {
    let _ = sock.write_all(out);
}
