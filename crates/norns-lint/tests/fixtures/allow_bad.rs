// Fixture: malformed allow markers, each a `bad-allow-marker` finding.

// norns-lint: allow(unsafe-safety-comment):
fn missing_reason() {}

// norns-lint: allow(no-such-rule): because I said so
fn unknown_rule() {}

// norns-lint: deny(whatever)
fn malformed() {}
