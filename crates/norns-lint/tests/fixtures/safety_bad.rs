// Fixture: every form of unsafe site, none with a SAFETY comment.
// Never compiled — consumed by tests/fixtures.rs through the linter.

extern "C" {
    fn getpid() -> i32;
}

fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe fn danger() {}

struct T;

unsafe impl Send for T {}
