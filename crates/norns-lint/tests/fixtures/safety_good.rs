// Fixture: the same sites as safety_bad.rs, each carrying a SAFETY
// comment in one of the accepted attachment forms.

// SAFETY: signature transcribed from the glibc headers.
extern "C" {
    fn getpid() -> i32;
}

fn peek(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// Doc comment, then an attribute between the comment and the site.
// SAFETY: demonstration only — attributes are skipped when attaching.
#[inline]
unsafe fn danger() {}

struct T;

// SAFETY: `T` owns no thread-bound state.
unsafe impl Send for T {}

fn trailing(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: trailing form; caller contract as in `peek`.
}

fn continuation(p: *const u8) -> u8 {
    // SAFETY: rustfmt may push `unsafe` onto a continuation line; the
    // comment attaches to the whole statement.
    let v =
        unsafe { *p };
    v
}
