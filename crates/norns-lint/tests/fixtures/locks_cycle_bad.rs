// Fixture: two functions nest the same pair of locks in opposite
// orders — a lock-order cycle (potential deadlock).

use std::sync::Mutex;

struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a + *b
    }
}
