// Fixture: same helper, but the guard is a same-statement temporary —
// the snapshot is taken and the lock released before the send.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct Registry {
    peers: Mutex<Vec<String>>,
}

impl Registry {
    fn broadcast(&self, sock: &mut TcpStream) {
        let snapshot = self.peers.lock().unwrap().clone();
        send_all(sock, &snapshot);
    }
}

fn send_all(sock: &mut TcpStream, lines: &[String]) {
    for l in lines {
        let _ = sock.write_all(l.as_bytes());
    }
}
