// Fixture: both functions acquire alpha before beta — a consistent
// order, so the acquisition graph is acyclic.

use std::sync::Mutex;

struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    fn sum(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    fn product(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a * *b
    }
}
