// Fixture: the guard is released (scope end or explicit drop) before
// the blocking call — no finding.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct Registry {
    peers: Mutex<Vec<String>>,
}

impl Registry {
    fn scoped(&self, sock: &mut TcpStream) -> std::io::Result<()> {
        let first = {
            let peers = self.peers.lock().unwrap();
            peers[0].clone()
        };
        sock.write_all(first.as_bytes())
    }

    fn dropped(&self, sock: &mut TcpStream) -> std::io::Result<()> {
        let peers = self.peers.lock().unwrap();
        let first = peers[0].clone();
        drop(peers);
        sock.write_all(first.as_bytes())
    }

    fn temporary(&self, sock: &mut TcpStream) -> std::io::Result<()> {
        let first = self.peers.lock().unwrap()[0].clone();
        sock.write_all(first.as_bytes())
    }
}
