// Fixture protocol file for the wire-exhaustiveness rule.

pub enum Color {
    Red,
    #[allow(dead_code)]
    Green,
    Blue,
}
