// Fixture: panic sites two hops from the reactor entry. A panic here
// takes the whole reactor thread (and every connection on it) down.

fn reactor_loop(frames: &[u64]) {
    handle(frames);
}

fn handle(frames: &[u64]) {
    let _ = parse(frames);
}

fn parse(frames: &[u64]) -> u64 {
    let head = frames.first().copied().unwrap();
    let tail = frames[0];
    head + tail
}
