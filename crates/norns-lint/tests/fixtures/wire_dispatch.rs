// Fixture dispatch: handles Red and Blue; Green falls through the
// wildcard arm — exactly what the rule exists to catch.

fn dispatch(c: Color) {
    match c {
        Color::Red => {}
        Color::Blue => {}
        _ => {}
    }
}
