// Fixture: a reactor entry reaching a blocking call two hops away.
// Only the call graph can see it: `reactor_loop` has no blocking call
// of its own — the sink is `reactor_loop` → `dispatch` → `flush_reply`
// → `write_all`.

use std::io::Write;
use std::net::TcpStream;

fn reactor_loop(sock: &mut TcpStream) {
    dispatch(sock);
}

fn dispatch(sock: &mut TcpStream) {
    flush_reply(sock);
}

fn flush_reply(sock: &mut TcpStream) {
    let _ = sock.write_all(b"ok");
}
