// Fixture corpus: exercises Red and Green but never Blue. A mention
// in a comment (Color::Blue) or string ("Color::Blue") must not count.

fn corpus() {
    let _ = (Color::Red, Color::Green);
    let _ = "Color::Blue";
}
