// Fixture: the same path refactored to error returns, plus one
// deliberate panic site carrying a waiver, and an unwrap that is fine
// because the reactor never reaches it.

fn reactor_loop(frames: &[u64]) {
    let _ = handle(frames);
}

fn handle(frames: &[u64]) -> Option<u64> {
    let head = parse(frames)?;
    // norns-lint: allow(panic-path): fixture waiver — `parse` returning Some proves the slice is non-empty
    let tail = frames[0];
    Some(head + tail)
}

fn parse(frames: &[u64]) -> Option<u64> {
    frames.first().copied()
}

fn off_reactor_helper(frames: &[u64]) -> u64 {
    frames.first().copied().unwrap()
}
