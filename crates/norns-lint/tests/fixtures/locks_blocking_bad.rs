// Fixture: a Mutex guard held across a deny-listed blocking call.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct Registry {
    peers: Mutex<Vec<String>>,
}

impl Registry {
    fn broadcast(&self, sock: &mut TcpStream) -> std::io::Result<()> {
        let peers = self.peers.lock().unwrap();
        sock.write_all(peers[0].as_bytes())?;
        Ok(())
    }
}
