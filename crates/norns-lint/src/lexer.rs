//! A hand-rolled Rust lexer, sufficient for static analysis: it
//! separates code tokens from comments so no rule ever fires on the
//! word `unsafe` inside a string literal or a doc sentence, and it
//! preserves line numbers so findings and `allow` markers anchor to
//! real source locations.
//!
//! It is deliberately not a parser. String literals (cooked, raw,
//! byte), char literals vs. lifetimes, nested block comments, and
//! numeric literals are recognized precisely; everything else is an
//! identifier or a single punctuation character. The analyses built on
//! top work on this flat token stream with their own scope tracking.

/// One code token. Punctuation is emitted one character at a time
/// (`::` is two `Punct(':')` tokens); consumers match sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident(String),
    /// Single punctuation character.
    Punct(char),
    /// String literal (cooked/raw/byte) with its unprocessed content —
    /// needed to recognize `extern "C"`.
    Str(String),
    /// Any other literal: number, char, lifetime.
    Lit,
}

/// A token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// A comment with its span and content (without the `//` / `/* */`
/// markers). `trailing` means code appeared earlier on the same line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
    pub trailing: bool,
}

/// Lexed file: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Line numbers that carry at least one code token.
    pub fn code_lines(&self) -> std::collections::BTreeSet<u32> {
        self.tokens.iter().map(|t| t.line).collect()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Malformed input (unterminated strings or comments)
/// does not panic: the remainder is swallowed into the open literal or
/// comment, which is the right behavior for an analysis tool.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut code_on_line = false;

    macro_rules! bump_line {
        () => {{
            line += 1;
            code_on_line = false;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                i += 1;
                bump_line!();
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. `///` and `//!`).
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: chars[start..j].iter().collect(),
                    trailing: code_on_line,
                });
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; Rust block comments nest.
                let start_line = line;
                let trailing = code_on_line;
                let mut depth = 1usize;
                let mut j = i + 2;
                let text_start = j;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        bump_line!();
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text_end = if depth == 0 { j - 2 } else { j };
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: chars[text_start..text_end].iter().collect(),
                    trailing,
                });
                i = j;
            }
            '"' => {
                let tok_line = line;
                let (content, next) = cooked_string(&chars, i + 1, &mut line, &mut code_on_line);
                out.tokens.push(Token {
                    kind: Tok::Str(content),
                    line: tok_line,
                });
                code_on_line = true;
                i = next;
            }
            '\'' => {
                let tok_line = line;
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let next_is_ident = chars.get(i + 1).is_some_and(|&n| is_ident_start(n));
                let closes_as_char = chars.get(i + 2) == Some(&'\'');
                if next_is_ident && !closes_as_char {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: Tok::Lit,
                        line: tok_line,
                    });
                    code_on_line = true;
                    i = j;
                } else {
                    // Char literal, escapes included.
                    let mut j = i + 1;
                    while j < chars.len() {
                        match chars[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            '\n' => break, // malformed; don't eat the file
                            _ => j += 1,
                        }
                    }
                    out.tokens.push(Token {
                        kind: Tok::Lit,
                        line: tok_line,
                    });
                    code_on_line = true;
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let mut j = i;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                        && chars.get(j + 1) != Some(&'.')
                    {
                        // Fraction digit — but never eat a `..` range.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: Tok::Lit,
                    line: tok_line,
                });
                code_on_line = true;
                i = j;
            }
            c if is_ident_start(c) => {
                let tok_line = line;
                let mut j = i;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                // Raw / byte string prefixes: r" r#" b" br" br#".
                let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && (chars.get(j) == Some(&'"') || chars.get(j) == Some(&'#')) {
                    let raw = word.contains('r');
                    if chars.get(j) == Some(&'"') && !raw {
                        // b"..." — cooked byte string.
                        let (content, next) =
                            cooked_string(&chars, j + 1, &mut line, &mut code_on_line);
                        out.tokens.push(Token {
                            kind: Tok::Str(content),
                            line: tok_line,
                        });
                        code_on_line = true;
                        i = next;
                        continue;
                    }
                    // Count hashes; require a quote after them for a
                    // raw string (otherwise it's a raw ident like r#fn).
                    let mut hashes = 0usize;
                    let mut k = j;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') && raw {
                        let (content, next) =
                            raw_string(&chars, k + 1, hashes, &mut line, &mut code_on_line);
                        out.tokens.push(Token {
                            kind: Tok::Str(content),
                            line: tok_line,
                        });
                        code_on_line = true;
                        i = next;
                        continue;
                    }
                    if hashes > 0 && raw && chars.get(k).is_some_and(|&n| is_ident_start(n)) {
                        // Raw identifier r#ident.
                        let mut m = k;
                        while m < chars.len() && is_ident_continue(chars[m]) {
                            m += 1;
                        }
                        out.tokens.push(Token {
                            kind: Tok::Ident(chars[k..m].iter().collect()),
                            line: tok_line,
                        });
                        code_on_line = true;
                        i = m;
                        continue;
                    }
                }
                out.tokens.push(Token {
                    kind: Tok::Ident(word),
                    line: tok_line,
                });
                code_on_line = true;
                i = j;
            }
            other => {
                out.tokens.push(Token {
                    kind: Tok::Punct(other),
                    line,
                });
                code_on_line = true;
                i += 1;
            }
        }
    }
    out
}

/// Scan a cooked string body starting just after the opening quote.
/// Returns (content, index just past the closing quote).
fn cooked_string(
    chars: &[char],
    start: usize,
    line: &mut u32,
    code_on_line: &mut bool,
) -> (String, usize) {
    let mut j = start;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // An escaped character can be a newline (the `\` line
                // continuation); it must still bump the line counter or
                // every later token anchors one line short.
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                    *code_on_line = false;
                }
                j += 2;
            }
            '"' => {
                return (chars[start..j].iter().collect(), j + 1);
            }
            '\n' => {
                *line += 1;
                *code_on_line = false;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (chars[start..].iter().collect(), chars.len())
}

/// Scan a raw string body (no escapes) terminated by `"` + `hashes`
/// `#` characters.
fn raw_string(
    chars: &[char],
    start: usize,
    hashes: usize,
    line: &mut u32,
    code_on_line: &mut bool,
) -> (String, usize) {
    let mut j = start;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            *code_on_line = false;
            j += 1;
            continue;
        }
        if chars[j] == '"'
            && chars[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return (chars[start..j].iter().collect(), j + 1 + hashes);
        }
        j += 1;
    }
    (chars[start..].iter().collect(), chars.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn keywords_in_strings_and_comments_are_not_tokens() {
        let src = r##"
            // unsafe in a comment
            /* unsafe in /* a nested */ block */
            let a = "unsafe { extern }";
            let b = r#"unsafe"#;
            let c = b"unsafe";
            let real = 1;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_and_chars_do_not_break_lexing() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'x'; 'y' }";
        let ids = idents(src);
        // Lifetimes and char literals become `Lit`, not idents.
        assert_eq!(
            ids,
            vec!["fn", "f", "x", "str", "char", "let", "c", "let", "d"]
        );
    }

    #[test]
    fn comments_carry_lines_and_trailing_flag() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.tokens.last().unwrap().line, 3);
    }

    #[test]
    fn extern_c_is_visible_as_ident_plus_string() {
        let lexed = lex("extern \"C\" { fn close(fd: i32) -> i32; }");
        assert!(matches!(&lexed.tokens[0].kind, Tok::Ident(s) if s == "extern"));
        assert!(matches!(&lexed.tokens[1].kind, Tok::Str(s) if s == "C"));
    }

    fn line_of(src: &str, ident: &str) -> u32 {
        lex(src)
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, Tok::Ident(s) if s == ident))
            .unwrap_or_else(|| panic!("ident `{ident}` not lexed"))
            .line
    }

    #[test]
    fn raw_strings_do_not_desynchronize_lines_or_tokens() {
        // Hash-guarded raw string spanning lines, with an embedded
        // quote and a `"#`-lookalike that must not terminate early.
        let src = "let a = r##\"one \"# two\nthree \"quoted\" \\\nfour\"##;\nlet after = 1;\n";
        assert_eq!(line_of(src, "after"), 4, "raw string spans lines 1-3");
        // The `\\` before the newline is literal in a raw string — it
        // must not swallow the line break.
        let src2 = "let s = r\"tail\\\nnext\";\nlet mark = 2;\n";
        assert_eq!(line_of(src2, "mark"), 3);
        // A raw string closing mid-line leaves the rest as code.
        let ids = idents("let x = r#\"text\"#; unsafe { }");
        assert!(ids.contains(&"unsafe".to_string()));
    }

    #[test]
    fn string_escape_line_continuation_keeps_line_numbers() {
        // `"...\` + newline is a cooked-string line continuation; the
        // skipped newline must still count.
        let src = "let s = \"one\\\n   two\";\nlet after = 1;\n";
        assert_eq!(line_of(src, "after"), 3);
        // Double backslash before the newline is NOT a continuation of
        // the escape — the newline is literal content.
        let src2 = "let s = \"one\\\\\n two\";\nlet after = 1;\n";
        assert_eq!(line_of(src2, "after"), 3);
    }

    #[test]
    fn nested_block_comments_do_not_desynchronize() {
        let src = "/* outer /* inner\n /* deeper */ */ still comment\n*/ let after = 1;\n";
        assert_eq!(line_of(src, "after"), 3);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        // `/*/` does not open-and-close at once, `**/` closes.
        let ids = idents("/*/ still a comment **/ let real = 1;");
        assert_eq!(ids, vec!["let", "real"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { let f = 1.5; let h = 0xff_u32; }";
        let toks = lex(src);
        let puncts: Vec<char> = toks
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts.iter().filter(|&&c| c == '.').count(),
            2,
            "the .. survives"
        );
    }
}
