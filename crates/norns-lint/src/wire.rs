//! Rule `wire-exhaustiveness`: every variant of every message enum in
//! the protocol crate must (a) appear in the wire corpus test, so a
//! new variant cannot ship untested, and (b) for the enums a daemon
//! dispatches on, appear in the dispatch site, so a new request cannot
//! ship unhandled behind a `_ =>` arm.
//!
//! "Appear" means the token sequence `Enum :: Variant` occurs in real
//! code (the lexer already excludes comments and strings), which is
//! exactly what a corpus entry or a match arm looks like. Findings
//! anchor at the variant's declaration line in the protocol file, so
//! an allow marker sits next to the variant it waives.

use crate::lexer::Tok;
use crate::{load_file, Finding, Report, Rule, WireSummary};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// Where the protocol enums live and where their coverage must show up.
pub struct WireConfig {
    /// File whose `pub enum`s define the wire messages.
    pub messages: PathBuf,
    /// The corpus test that must exercise every variant.
    pub corpus: PathBuf,
    /// Dispatch sites: for each target, every variant of the named
    /// enums must appear in the file.
    pub dispatch: Vec<DispatchTarget>,
}

pub struct DispatchTarget {
    pub enums: Vec<String>,
    pub file: PathBuf,
}

/// An enum parsed out of the protocol file: name, and each variant
/// with its declaration line.
struct EnumDef {
    name: String,
    variants: Vec<(String, u32)>,
}

pub fn check(root: &Path, cfg: &WireConfig, report: &mut Report) -> io::Result<()> {
    let messages = load_file(root, &cfg.messages, &mut report.findings)?;
    let enums = parse_enums(&messages.lexed.tokens);

    let corpus = load_file(root, &cfg.corpus, &mut report.findings)?;
    let corpus_refs = variant_refs(&corpus.lexed.tokens);

    let mut summary = WireSummary::default();
    for e in &enums {
        summary.enums.insert(
            e.name.clone(),
            e.variants.iter().map(|(v, _)| v.clone()).collect(),
        );
    }

    for e in &enums {
        for (variant, line) in &e.variants {
            if !corpus_refs.contains(&(e.name.clone(), variant.clone())) {
                summary
                    .corpus_missing
                    .push(format!("{}::{}", e.name, variant));
                let allow = messages.allow_for(Rule::WireExhaustiveness, *line);
                report.findings.push(Finding {
                    rule: Rule::WireExhaustiveness,
                    file: messages.rel.clone(),
                    line: *line,
                    message: format!(
                        "`{}::{}` never appears in the wire corpus ({}) — a \
                         protocol variant with no round-trip/truncation coverage",
                        e.name, variant, corpus.rel
                    ),
                    allowed: allow.map(str::to_string),
                    chain: Vec::new(),
                });
            }
        }
    }

    for target in &cfg.dispatch {
        let dispatch = load_file(root, &target.file, &mut report.findings)?;
        let refs = variant_refs(&dispatch.lexed.tokens);
        for e in enums.iter().filter(|e| target.enums.contains(&e.name)) {
            for (variant, line) in &e.variants {
                if !refs.contains(&(e.name.clone(), variant.clone())) {
                    summary
                        .dispatch_missing
                        .push(format!("{}::{} ({})", e.name, variant, dispatch.rel));
                    let allow = messages.allow_for(Rule::WireExhaustiveness, *line);
                    report.findings.push(Finding {
                        rule: Rule::WireExhaustiveness,
                        file: messages.rel.clone(),
                        line: *line,
                        message: format!(
                            "`{}::{}` is never named in the dispatch site {} — \
                             it would fall through a wildcard arm unhandled",
                            e.name, variant, dispatch.rel
                        ),
                        allowed: allow.map(str::to_string),
                        chain: Vec::new(),
                    });
                }
            }
        }
    }

    report.wire = Some(summary);
    Ok(())
}

/// All `Ident :: Ident` pairs in a token stream.
fn variant_refs(toks: &[crate::lexer::Token]) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len().saturating_sub(3) {
        if let (Tok::Ident(a), Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(b)) = (
            &toks[i].kind,
            &toks[i + 1].kind,
            &toks[i + 2].kind,
            &toks[i + 3].kind,
        ) {
            out.insert((a.clone(), b.clone()));
        }
    }
    out
}

/// Parse `enum` definitions: name plus each top-level variant ident
/// with its line. Attributes on variants are skipped; variant payloads
/// (`{..}`, `(..)`, `= disc`) are consumed without recursion errors.
fn parse_enums(toks: &[crate::lexer::Token]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !matches!(&toks[i].kind, Tok::Ident(w) if w == "enum") {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        let name = name.clone();
        // Find the opening brace (skipping generics, none expected).
        let mut j = i + 2;
        while j < toks.len() && !matches!(toks[j].kind, Tok::Punct('{')) {
            j += 1;
        }
        let mut depth = 0i32;
        let mut variants = Vec::new();
        let mut expect_variant = true;
        while j < toks.len() {
            match &toks[j].kind {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break; // enum body closed
                    }
                }
                Tok::Punct('#') if depth == 1 => {
                    // Variant attribute: skip the `[...]` group.
                    let mut k = j + 1;
                    let mut adepth = 0i32;
                    while k < toks.len() {
                        match toks[k].kind {
                            Tok::Punct('[') => adepth += 1,
                            Tok::Punct(']') => {
                                adepth -= 1;
                                if adepth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j = k;
                }
                Tok::Punct(',') if depth == 1 => expect_variant = true,
                Tok::Ident(v) if depth == 1 && expect_variant => {
                    variants.push((v.clone(), toks[j].line));
                    expect_variant = false;
                }
                _ => {}
            }
            j += 1;
        }
        out.push(EnumDef { name, variants });
        i = j;
    }
    out
}
