//! `norns-lint`: a self-contained, offline static-analysis pass for
//! this workspace. No crates.io dependencies — a hand-rolled lexer
//! ([`lexer`]) feeds three analyses:
//!
//! * [`safety`] — `unsafe-safety-comment`: every `unsafe` block /
//!   `unsafe fn` / `unsafe impl` and every `extern "C"` declaration
//!   must carry a `// SAFETY:` comment stating the invariant it rests
//!   on.
//! * [`locks`] — `lock-across-blocking`: a `Mutex`/`RwLock` guard must
//!   not be live across a deny-listed blocking call (`write_all`,
//!   `connect`, `sleep`, `join`, ...) in reactor/engine code paths;
//!   and `lock-order-cycle`: the per-function nested lock-acquisition
//!   graph must be acyclic.
//! * [`wire`] — `wire-exhaustiveness`: every variant of every
//!   `norns-proto` message enum must appear in the wire corpus test
//!   and every request variant in the daemon dispatch, so a future
//!   protocol bump cannot ship a silently untested or unhandled
//!   variant.
//!
//! Any finding can be waived **with a reason** via an inline marker on
//! (or directly above) the offending line:
//!
//! ```text
//! // norns-lint: allow(lock-across-blocking): shutdown is
//! ```
//!
//! A marker without a reason is itself a finding
//! (`bad-allow-marker`). Suppressed findings stay in the machine
//! -readable report (`results/lint.json`) with their justification.

pub mod lexer;
pub mod locks;
pub mod safety;
pub mod wire;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rules this tool knows. `BadAllowMarker` is not waivable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    UnsafeSafetyComment,
    LockAcrossBlocking,
    LockOrderCycle,
    WireExhaustiveness,
    BadAllowMarker,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeSafetyComment => "unsafe-safety-comment",
            Rule::LockAcrossBlocking => "lock-across-blocking",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::WireExhaustiveness => "wire-exhaustiveness",
            Rule::BadAllowMarker => "bad-allow-marker",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        Some(match s {
            "unsafe-safety-comment" => Rule::UnsafeSafetyComment,
            "lock-across-blocking" => Rule::LockAcrossBlocking,
            "lock-order-cycle" => Rule::LockOrderCycle,
            "wire-exhaustiveness" => Rule::WireExhaustiveness,
            _ => return None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding. `allowed` carries the justification when an allow
/// marker waived it; such findings do not fail `--check` but stay in
/// the JSON inventory.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub allowed: Option<String>,
}

/// A parsed `// norns-lint: allow(rule): reason` marker. `target_line`
/// is the code line the marker governs: its own line for trailing
/// markers, the next line carrying code for standalone ones.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: Rule,
    pub reason: String,
    pub target_line: u32,
}

/// A lexed source file plus its allow markers, keyed by
/// workspace-relative path.
pub struct FileCtx {
    pub path: PathBuf,
    pub rel: String,
    pub lexed: lexer::Lexed,
    pub allows: Vec<Allow>,
}

impl FileCtx {
    /// The waiver reason for `rule` at `line`, if any marker targets it.
    pub fn allow_for(&self, rule: Rule, line: u32) -> Option<&str> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && a.target_line == line)
            .map(|a| a.reason.as_str())
    }
}

/// Which files each analysis runs over. Build one by hand for fixture
/// tests, or use [`Config::workspace`] for the live tree.
pub struct Config {
    pub root: PathBuf,
    /// `unsafe-safety-comment` scan set (normally: every `.rs` file).
    pub safety_files: Vec<PathBuf>,
    /// Lock-discipline scan set (reactor/engine code paths).
    pub lock_files: Vec<PathBuf>,
    pub wire: Option<wire::WireConfig>,
}

impl Config {
    /// The live-workspace configuration: unsafe hygiene everywhere,
    /// lock discipline over the concurrent crates (`norns-ipc`,
    /// `norns-flow`), wire exhaustiveness over `norns-proto` against
    /// the corpus test and the daemon/remote dispatch sites.
    pub fn workspace(root: &Path) -> io::Result<Config> {
        let mut safety_files = Vec::new();
        walk_rs(root, &mut safety_files)?;
        let mut lock_files = Vec::new();
        for sub in ["crates/norns-ipc/src", "crates/norns-flow/src"] {
            walk_rs(&root.join(sub), &mut lock_files)?;
        }
        let wire = wire::WireConfig {
            messages: root.join("crates/norns-proto/src/messages.rs"),
            corpus: root.join("crates/norns-proto/tests/corpus.rs"),
            dispatch: vec![
                wire::DispatchTarget {
                    enums: vec![
                        "CtlRequest".into(),
                        "UserRequest".into(),
                        "DataRequest".into(),
                        "DaemonCommand".into(),
                    ],
                    file: root.join("crates/norns-ipc/src/daemon.rs"),
                },
                wire::DispatchTarget {
                    enums: vec!["DataResponse".into()],
                    file: root.join("crates/norns-ipc/src/engine/remote.rs"),
                },
            ],
        };
        Ok(Config {
            root: root.to_path_buf(),
            safety_files,
            lock_files,
            wire: Some(wire),
        })
    }
}

/// Recursively collect `.rs` files, skipping build output, VCS
/// internals, and this tool's own lint fixtures (which are bad on
/// purpose).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One `unsafe` / `extern "C"` site for the JSON inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// "unsafe block" | "unsafe fn" | "unsafe impl" | "extern block".
    pub kind: &'static str,
    pub has_safety_comment: bool,
    pub allowed: bool,
}

/// One nested-acquisition edge: `acquired` was taken while `held` was
/// live, in `func` at `file:line`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub func: String,
    pub file: String,
    pub line: u32,
    pub allowed: bool,
}

/// Wire-rule inventory: every enum and its variants, plus what the
/// coverage cross-checks concluded.
#[derive(Debug, Clone, Default)]
pub struct WireSummary {
    pub enums: BTreeMap<String, Vec<String>>,
    pub corpus_missing: Vec<String>,
    pub dispatch_missing: Vec<String>,
}

/// Everything one run produced.
#[derive(Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub lock_names: Vec<String>,
    pub lock_edges: Vec<LockEdge>,
    pub wire: Option<WireSummary>,
}

impl Report {
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    fn counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for rule in [
            Rule::UnsafeSafetyComment,
            Rule::LockAcrossBlocking,
            Rule::LockOrderCycle,
            Rule::WireExhaustiveness,
            Rule::BadAllowMarker,
        ] {
            counts.insert(rule.name(), (0, 0));
        }
        for f in &self.findings {
            let slot = counts.entry(f.rule.name()).or_default();
            if f.allowed.is_some() {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }
        counts
    }

    /// The human-readable report `--check` prints.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in self.findings.iter().filter(|f| f.allowed.is_none()) {
            s.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}\n",
                f.rule, f.message, f.file, f.line
            ));
        }
        let waived: Vec<&Finding> = self
            .findings
            .iter()
            .filter(|f| f.allowed.is_some())
            .collect();
        if !waived.is_empty() {
            s.push_str(&format!("{} waived finding(s):\n", waived.len()));
            for f in waived {
                s.push_str(&format!(
                    "  allow[{}] {}:{} — {}\n",
                    f.rule,
                    f.file,
                    f.line,
                    f.allowed.as_deref().unwrap_or("")
                ));
            }
        }
        s.push_str("rule                     fail  waived\n");
        for (rule, (fail, waived)) in self.counts() {
            s.push_str(&format!("{rule:<24} {fail:>4} {waived:>6}\n"));
        }
        s.push_str(&format!(
            "unsafe sites: {} ({} with SAFETY), lock names: {}, lock edges: {}\n",
            self.unsafe_sites.len(),
            self.unsafe_sites
                .iter()
                .filter(|u| u.has_safety_comment)
                .count(),
            self.lock_names.len(),
            self.lock_edges.len(),
        ));
        s
    }

    /// The machine-readable inventory written to `results/lint.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": 1,\n  \"counts\": {");
        let counts = self.counts();
        let mut first = true;
        for (rule, (fail, waived)) in &counts {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {}: {{\"fail\": {fail}, \"waived\": {waived}}}",
                json_str(rule)
            ));
        }
        s.push_str("\n  },\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"allowed\": {}}}",
                json_str(f.rule.name()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                match &f.allowed {
                    Some(reason) => json_str(reason),
                    None => "null".to_string(),
                }
            ));
        }
        s.push_str("\n  ],\n  \"unsafe_sites\": [");
        for (i, u) in self.unsafe_sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"safety_comment\": {}, \"allowed\": {}}}",
                json_str(&u.file),
                u.line,
                json_str(u.kind),
                u.has_safety_comment,
                u.allowed
            ));
        }
        s.push_str("\n  ],\n  \"lock_graph\": {\n    \"locks\": [");
        for (i, name) in self.lock_names.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(name));
        }
        s.push_str("],\n    \"edges\": [");
        for (i, e) in self.lock_edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"held\": {}, \"acquired\": {}, \"fn\": {}, \"file\": {}, \"line\": {}, \"allowed\": {}}}",
                json_str(&e.held),
                json_str(&e.acquired),
                json_str(&e.func),
                json_str(&e.file),
                e.line,
                e.allowed
            ));
        }
        s.push_str("\n    ]\n  }");
        if let Some(w) = &self.wire {
            s.push_str(",\n  \"wire\": {\n    \"enums\": {");
            let mut first = true;
            for (name, variants) in &w.enums {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\n      {}: [", json_str(name)));
                for (i, v) in variants.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&json_str(v));
                }
                s.push(']');
            }
            s.push_str("\n    },\n    \"corpus_missing\": [");
            for (i, v) in w.corpus_missing.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_str(v));
            }
            s.push_str("],\n    \"dispatch_missing\": [");
            for (i, v) in w.dispatch_missing.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_str(v));
            }
            s.push_str("]\n  }");
        }
        s.push_str("\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Load, lex, and marker-parse one file. Marker parse errors become
/// `bad-allow-marker` findings appended to `findings`.
pub fn load_file(root: &Path, path: &Path, findings: &mut Vec<Finding>) -> io::Result<FileCtx> {
    let src = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned();
    let lexed = lexer::lex(&src);
    let code_lines = lexed.code_lines();
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        for (off, line_text) in comment.text.lines().enumerate() {
            let trimmed = line_text.trim_start_matches(['/', '!', '*']).trim();
            let Some(rest) = trimmed.strip_prefix("norns-lint:") else {
                continue;
            };
            let marker_line = comment.line + off as u32;
            let rest = rest.trim();
            let parsed = (|| {
                let body = rest.strip_prefix("allow(")?;
                let close = body.find(')')?;
                let rule_name = body[..close].trim();
                let after = body[close + 1..].trim();
                let reason = after.strip_prefix(':')?.trim();
                Some((rule_name.to_string(), reason.to_string()))
            })();
            let Some((rule_name, reason)) = parsed else {
                findings.push(Finding {
                    rule: Rule::BadAllowMarker,
                    file: rel.clone(),
                    line: marker_line,
                    message: format!(
                        "malformed marker `norns-lint: {rest}` — expected \
                         `norns-lint: allow(<rule>): <reason>`"
                    ),
                    allowed: None,
                });
                continue;
            };
            let Some(rule) = Rule::from_name(&rule_name) else {
                findings.push(Finding {
                    rule: Rule::BadAllowMarker,
                    file: rel.clone(),
                    line: marker_line,
                    message: format!("unknown rule `{rule_name}` in allow marker"),
                    allowed: None,
                });
                continue;
            };
            if reason.is_empty() {
                findings.push(Finding {
                    rule: Rule::BadAllowMarker,
                    file: rel.clone(),
                    line: marker_line,
                    message: format!(
                        "allow({rule_name}) marker without a reason — every waiver \
                         must say why"
                    ),
                    allowed: None,
                });
                continue;
            }
            // A trailing marker governs its own line; a standalone one
            // governs the next line that carries code.
            let target_line = if comment.trailing && off == 0 {
                marker_line
            } else {
                code_lines
                    .range(marker_line + 1..)
                    .next()
                    .copied()
                    .unwrap_or(marker_line)
            };
            allows.push(Allow {
                rule,
                reason,
                target_line,
            });
        }
    }
    Ok(FileCtx {
        path: path.to_path_buf(),
        rel,
        lexed,
        allows,
    })
}

/// Run every configured analysis and assemble the report.
pub fn run(cfg: &Config) -> io::Result<Report> {
    let mut report = Report::default();

    // Load each file once, even when it is in several scan sets.
    let mut cache: BTreeMap<PathBuf, FileCtx> = BTreeMap::new();
    let load = |path: &Path,
                findings: &mut Vec<Finding>,
                cache: &mut BTreeMap<PathBuf, FileCtx>|
     -> io::Result<()> {
        if !cache.contains_key(path) {
            let ctx = load_file(&cfg.root, path, findings)?;
            cache.insert(path.to_path_buf(), ctx);
        }
        Ok(())
    };

    for path in cfg.safety_files.iter().chain(&cfg.lock_files) {
        load(path, &mut report.findings, &mut cache)?;
    }

    for path in &cfg.safety_files {
        let ctx = &cache[path];
        safety::check(ctx, &mut report);
    }

    let lock_ctxs: Vec<&FileCtx> = cfg.lock_files.iter().map(|p| &cache[p]).collect();
    locks::check(&lock_ctxs, &mut report);

    if let Some(wire_cfg) = &cfg.wire {
        wire::check(&cfg.root, wire_cfg, &mut report)?;
    }

    report
        .findings
        .sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(report)
}
