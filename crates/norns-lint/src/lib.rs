//! `norns-lint`: a self-contained, offline static-analysis pass for
//! this workspace. No crates.io dependencies — a hand-rolled lexer
//! ([`lexer`]) feeds an interprocedural call graph ([`callgraph`]) and
//! five analyses:
//!
//! * [`safety`] — `unsafe-safety-comment`: every `unsafe` block /
//!   `unsafe fn` / `unsafe impl` and every `extern "C"` declaration
//!   must carry a `// SAFETY:` comment stating the invariant it rests
//!   on.
//! * [`locks`] — `lock-across-blocking`: a `Mutex`/`RwLock` guard must
//!   not be live across a deny-listed blocking call (`write_all`,
//!   `connect`, `sleep`, `join`, ...) — directly or through a callee
//!   whose summary says it transitively blocks; and
//!   `lock-order-cycle`: the nested lock-acquisition graph, including
//!   locks taken inside callees, must be acyclic.
//! * [`reactor`] — `reactor-blocking`: no function reachable from a
//!   reactor entry point may hit the blocking denylist; and
//!   `panic-path`: no reactor-reachable `norns-ipc` code may
//!   `unwrap`/`expect`/`panic!`/index unguarded. Findings carry the
//!   call chain from the entry point.
//! * [`wire`] — `wire-exhaustiveness`: every variant of every
//!   `norns-proto` message enum must appear in the wire corpus test
//!   and every request variant in the daemon dispatch, so a future
//!   protocol bump cannot ship a silently untested or unhandled
//!   variant.
//!
//! Any finding can be waived **with a reason** via an inline marker on
//! (or directly above) the offending line:
//!
//! ```text
//! // norns-lint: allow(lock-across-blocking): shutdown is
//! ```
//!
//! A marker without a reason is itself a finding
//! (`bad-allow-marker`). Suppressed findings stay in the machine
//! -readable report (`results/lint.json`, schema v2) with their
//! justification, next to the call-graph stats and per-function
//! summaries the interprocedural rules derived.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod reactor;
pub mod safety;
pub mod wire;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rules this tool knows. `BadAllowMarker` is not waivable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    UnsafeSafetyComment,
    LockAcrossBlocking,
    LockOrderCycle,
    ReactorBlocking,
    PanicPath,
    WireExhaustiveness,
    BadAllowMarker,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeSafetyComment => "unsafe-safety-comment",
            Rule::LockAcrossBlocking => "lock-across-blocking",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::ReactorBlocking => "reactor-blocking",
            Rule::PanicPath => "panic-path",
            Rule::WireExhaustiveness => "wire-exhaustiveness",
            Rule::BadAllowMarker => "bad-allow-marker",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        Some(match s {
            "unsafe-safety-comment" => Rule::UnsafeSafetyComment,
            "lock-across-blocking" => Rule::LockAcrossBlocking,
            "lock-order-cycle" => Rule::LockOrderCycle,
            "reactor-blocking" => Rule::ReactorBlocking,
            "panic-path" => Rule::PanicPath,
            "wire-exhaustiveness" => Rule::WireExhaustiveness,
            _ => return None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding. `allowed` carries the justification when an allow
/// marker waived it; such findings do not fail `--check` but stay in
/// the JSON inventory.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub allowed: Option<String>,
    /// For interprocedural findings: the call chain from the entry
    /// point (or the blocking/locking witness) to the sink. Empty for
    /// lexical findings.
    pub chain: Vec<String>,
}

impl Finding {
    /// Stable identity for baseline comparison. Line numbers are
    /// deliberately excluded so unrelated edits above a known finding
    /// do not churn the baseline.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule.name(), self.file, self.message)
    }
}

/// A parsed `// norns-lint: allow(rule): reason` marker. `target_line`
/// is the code line the marker governs: its own line for trailing
/// markers, the next line carrying code for standalone ones.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: Rule,
    pub reason: String,
    pub target_line: u32,
}

/// A lexed source file plus its allow markers, keyed by
/// workspace-relative path.
pub struct FileCtx {
    pub path: PathBuf,
    pub rel: String,
    pub lexed: lexer::Lexed,
    pub allows: Vec<Allow>,
}

impl FileCtx {
    /// The waiver reason for `rule` at `line`, if any marker targets it.
    pub fn allow_for(&self, rule: Rule, line: u32) -> Option<&str> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && a.target_line == line)
            .map(|a| a.reason.as_str())
    }
}

/// Which files each analysis runs over. Build one by hand for fixture
/// tests, or use [`Config::workspace`] for the live tree.
pub struct Config {
    pub root: PathBuf,
    /// `unsafe-safety-comment` scan set (normally: every `.rs` file).
    pub safety_files: Vec<PathBuf>,
    /// Lock-discipline scan set (reactor/engine code paths).
    pub lock_files: Vec<PathBuf>,
    pub wire: Option<wire::WireConfig>,
    /// Call-graph index set (normally: every `.rs` file) plus the
    /// reactor reachability rules. `None` disables the
    /// interprocedural layer entirely.
    pub graph: Option<GraphConfig>,
}

/// Interprocedural configuration: which files feed the call graph and
/// where reactor execution starts.
pub struct GraphConfig {
    pub files: Vec<PathBuf>,
    pub reactor: Option<reactor::ReactorConfig>,
}

impl Config {
    /// The live-workspace configuration: unsafe hygiene everywhere,
    /// lock discipline over the concurrent crates (`norns-ipc`,
    /// `norns-flow`), wire exhaustiveness over `norns-proto` against
    /// the corpus test and the daemon/remote dispatch sites.
    pub fn workspace(root: &Path) -> io::Result<Config> {
        let mut safety_files = Vec::new();
        walk_rs(root, &mut safety_files)?;
        let mut lock_files = Vec::new();
        for sub in ["crates/norns-ipc/src", "crates/norns-flow/src"] {
            walk_rs(&root.join(sub), &mut lock_files)?;
        }
        let wire = wire::WireConfig {
            messages: root.join("crates/norns-proto/src/messages.rs"),
            corpus: root.join("crates/norns-proto/tests/corpus.rs"),
            dispatch: vec![
                wire::DispatchTarget {
                    enums: vec![
                        "CtlRequest".into(),
                        "UserRequest".into(),
                        "DataRequest".into(),
                        "DaemonCommand".into(),
                    ],
                    file: root.join("crates/norns-ipc/src/daemon.rs"),
                },
                wire::DispatchTarget {
                    enums: vec!["DataResponse".into()],
                    file: root.join("crates/norns-ipc/src/engine/remote.rs"),
                },
            ],
        };
        let graph = GraphConfig {
            files: safety_files.clone(),
            reactor: Some(reactor::ReactorConfig {
                entries: vec![
                    // The epoll dispatch loop: everything it calls runs
                    // on a reactor thread.
                    (
                        "crates/norns-ipc/src/daemon.rs".into(),
                        "reactor_loop".into(),
                    ),
                    // The WaitCallback constructor: the closure it
                    // returns is invoked on completion paths and feeds
                    // reactors; it is indexed inline with its builder.
                    (
                        "crates/norns-ipc/src/daemon.rs".into(),
                        "completion_callback".into(),
                    ),
                ],
                panic_scope: vec!["crates/norns-ipc/src".into()],
            }),
        };
        Ok(Config {
            root: root.to_path_buf(),
            safety_files,
            lock_files,
            wire: Some(wire),
            graph: Some(graph),
        })
    }
}

/// Recursively collect `.rs` files, skipping build output, VCS
/// internals, and this tool's own lint fixtures (which are bad on
/// purpose).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One `unsafe` / `extern "C"` site for the JSON inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// "unsafe block" | "unsafe fn" | "unsafe impl" | "extern block".
    pub kind: &'static str,
    pub has_safety_comment: bool,
    pub allowed: bool,
}

/// One nested-acquisition edge: `acquired` was taken while `held` was
/// live, in `func` at `file:line`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub func: String,
    pub file: String,
    pub line: u32,
    pub allowed: bool,
    /// For interprocedural edges: the call chain through which the
    /// acquisition happened (`helper → inner → lockname.lock`).
    pub via: Option<String>,
}

/// One reactor-reachable function's summary for the JSON inventory.
#[derive(Debug, Clone)]
pub struct FnSummary {
    pub qname: String,
    pub file: String,
    pub line: u32,
    pub may_block: bool,
    pub may_panic: bool,
    pub locks: Vec<String>,
    /// Shortest call chain from a reactor entry point.
    pub chain: Vec<String>,
}

/// Call-graph statistics and the reactor-reachable slice of the
/// per-function summaries.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    pub functions_indexed: usize,
    pub call_sites: usize,
    pub resolved_unique: usize,
    pub resolved_multi: usize,
    pub ambiguous: usize,
    pub unresolved: usize,
    pub ambiguity_policy: String,
    /// Qualified names of the matched reactor entry points.
    pub reactor_entries: Vec<String>,
    pub reactor_reachable: usize,
    pub summaries: Vec<FnSummary>,
}

/// Wire-rule inventory: every enum and its variants, plus what the
/// coverage cross-checks concluded.
#[derive(Debug, Clone, Default)]
pub struct WireSummary {
    pub enums: BTreeMap<String, Vec<String>>,
    pub corpus_missing: Vec<String>,
    pub dispatch_missing: Vec<String>,
}

/// Everything one run produced.
#[derive(Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub lock_names: Vec<String>,
    pub lock_edges: Vec<LockEdge>,
    pub wire: Option<WireSummary>,
    pub graph: Option<GraphReport>,
}

impl Report {
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    fn counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for rule in [
            Rule::UnsafeSafetyComment,
            Rule::LockAcrossBlocking,
            Rule::LockOrderCycle,
            Rule::ReactorBlocking,
            Rule::PanicPath,
            Rule::WireExhaustiveness,
            Rule::BadAllowMarker,
        ] {
            counts.insert(rule.name(), (0, 0));
        }
        for f in &self.findings {
            let slot = counts.entry(f.rule.name()).or_default();
            if f.allowed.is_some() {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }
        counts
    }

    /// The human-readable report `--check` prints.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in self.findings.iter().filter(|f| f.allowed.is_none()) {
            s.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}\n",
                f.rule, f.message, f.file, f.line
            ));
        }
        let waived: Vec<&Finding> = self
            .findings
            .iter()
            .filter(|f| f.allowed.is_some())
            .collect();
        if !waived.is_empty() {
            s.push_str(&format!("{} waived finding(s):\n", waived.len()));
            for f in waived {
                s.push_str(&format!(
                    "  allow[{}] {}:{} — {}\n",
                    f.rule,
                    f.file,
                    f.line,
                    f.allowed.as_deref().unwrap_or("")
                ));
            }
        }
        s.push_str("rule                     fail  waived\n");
        for (rule, (fail, waived)) in self.counts() {
            s.push_str(&format!("{rule:<24} {fail:>4} {waived:>6}\n"));
        }
        s.push_str(&format!(
            "unsafe sites: {} ({} with SAFETY), lock names: {}, lock edges: {}\n",
            self.unsafe_sites.len(),
            self.unsafe_sites
                .iter()
                .filter(|u| u.has_safety_comment)
                .count(),
            self.lock_names.len(),
            self.lock_edges.len(),
        ));
        if let Some(g) = &self.graph {
            s.push_str(&format!(
                "call graph: {} fns, {} call sites ({} unique, {} multi, {} ambiguous, \
                 {} unresolved), reactor-reachable: {}\n",
                g.functions_indexed,
                g.call_sites,
                g.resolved_unique,
                g.resolved_multi,
                g.ambiguous,
                g.unresolved,
                g.reactor_reachable,
            ));
        }
        s
    }

    /// The machine-readable inventory written to `results/lint.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": 2,\n  \"counts\": {");
        let counts = self.counts();
        let mut first = true;
        for (rule, (fail, waived)) in &counts {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {}: {{\"fail\": {fail}, \"waived\": {waived}}}",
                json_str(rule)
            ));
        }
        s.push_str("\n  },\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let chain = if f.chain.is_empty() {
                "null".to_string()
            } else {
                format!(
                    "[{}]",
                    f.chain
                        .iter()
                        .map(|c| json_str(c))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"allowed\": {}, \"chain\": {}}}",
                json_str(f.rule.name()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                match &f.allowed {
                    Some(reason) => json_str(reason),
                    None => "null".to_string(),
                },
                chain
            ));
        }
        s.push_str("\n  ],\n  \"unsafe_sites\": [");
        for (i, u) in self.unsafe_sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"safety_comment\": {}, \"allowed\": {}}}",
                json_str(&u.file),
                u.line,
                json_str(u.kind),
                u.has_safety_comment,
                u.allowed
            ));
        }
        s.push_str("\n  ],\n  \"lock_graph\": {\n    \"locks\": [");
        for (i, name) in self.lock_names.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(name));
        }
        s.push_str("],\n    \"edges\": [");
        for (i, e) in self.lock_edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"held\": {}, \"acquired\": {}, \"fn\": {}, \"file\": {}, \"line\": {}, \"allowed\": {}, \"via\": {}}}",
                json_str(&e.held),
                json_str(&e.acquired),
                json_str(&e.func),
                json_str(&e.file),
                e.line,
                e.allowed,
                match &e.via {
                    Some(v) => json_str(v),
                    None => "null".to_string(),
                }
            ));
        }
        s.push_str("\n    ]\n  }");
        if let Some(g) = &self.graph {
            s.push_str(&format!(
                ",\n  \"callgraph\": {{\n    \"functions_indexed\": {},\n    \
                 \"call_sites\": {},\n    \"resolved_unique\": {},\n    \
                 \"resolved_multi\": {},\n    \"ambiguous\": {},\n    \
                 \"unresolved\": {},\n    \"ambiguity_policy\": {},\n    \
                 \"reactor_entries\": [{}],\n    \"reactor_reachable\": {},\n    \
                 \"summaries\": [",
                g.functions_indexed,
                g.call_sites,
                g.resolved_unique,
                g.resolved_multi,
                g.ambiguous,
                g.unresolved,
                json_str(&g.ambiguity_policy),
                g.reactor_entries
                    .iter()
                    .map(|e| json_str(e))
                    .collect::<Vec<_>>()
                    .join(", "),
                g.reactor_reachable,
            ));
            for (i, f) in g.summaries.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\n      {{\"fn\": {}, \"file\": {}, \"line\": {}, \"may_block\": {}, \
                     \"may_panic\": {}, \"locks\": [{}], \"chain\": [{}]}}",
                    json_str(&f.qname),
                    json_str(&f.file),
                    f.line,
                    f.may_block,
                    f.may_panic,
                    f.locks
                        .iter()
                        .map(|l| json_str(l))
                        .collect::<Vec<_>>()
                        .join(", "),
                    f.chain
                        .iter()
                        .map(|c| json_str(c))
                        .collect::<Vec<_>>()
                        .join(", "),
                ));
            }
            s.push_str("\n    ]\n  }");
        }
        if let Some(w) = &self.wire {
            s.push_str(",\n  \"wire\": {\n    \"enums\": {");
            let mut first = true;
            for (name, variants) in &w.enums {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\n      {}: [", json_str(name)));
                for (i, v) in variants.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&json_str(v));
                }
                s.push(']');
            }
            s.push_str("\n    },\n    \"corpus_missing\": [");
            for (i, v) in w.corpus_missing.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_str(v));
            }
            s.push_str("],\n    \"dispatch_missing\": [");
            for (i, v) in w.dispatch_missing.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_str(v));
            }
            s.push_str("]\n  }");
        }
        s.push_str("\n}\n");
        s
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Load, lex, and marker-parse one file. Marker parse errors become
/// `bad-allow-marker` findings appended to `findings`.
pub fn load_file(root: &Path, path: &Path, findings: &mut Vec<Finding>) -> io::Result<FileCtx> {
    let src = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned();
    let lexed = lexer::lex(&src);
    let code_lines = lexed.code_lines();
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        for (off, line_text) in comment.text.lines().enumerate() {
            let trimmed = line_text.trim_start_matches(['/', '!', '*']).trim();
            let Some(rest) = trimmed.strip_prefix("norns-lint:") else {
                continue;
            };
            let marker_line = comment.line + off as u32;
            let rest = rest.trim();
            let parsed = (|| {
                let body = rest.strip_prefix("allow(")?;
                let close = body.find(')')?;
                let rule_name = body[..close].trim();
                let after = body[close + 1..].trim();
                let reason = after.strip_prefix(':')?.trim();
                Some((rule_name.to_string(), reason.to_string()))
            })();
            let Some((rule_name, reason)) = parsed else {
                findings.push(Finding {
                    rule: Rule::BadAllowMarker,
                    file: rel.clone(),
                    line: marker_line,
                    message: format!(
                        "malformed marker `norns-lint: {rest}` — expected \
                         `norns-lint: allow(<rule>): <reason>`"
                    ),
                    allowed: None,
                    chain: Vec::new(),
                });
                continue;
            };
            let Some(rule) = Rule::from_name(&rule_name) else {
                findings.push(Finding {
                    rule: Rule::BadAllowMarker,
                    file: rel.clone(),
                    line: marker_line,
                    message: format!("unknown rule `{rule_name}` in allow marker"),
                    allowed: None,
                    chain: Vec::new(),
                });
                continue;
            };
            if reason.is_empty() {
                findings.push(Finding {
                    rule: Rule::BadAllowMarker,
                    file: rel.clone(),
                    line: marker_line,
                    message: format!(
                        "allow({rule_name}) marker without a reason — every waiver \
                         must say why"
                    ),
                    allowed: None,
                    chain: Vec::new(),
                });
                continue;
            }
            // A trailing marker governs its own line; a standalone one
            // governs the next line that carries code.
            let target_line = if comment.trailing && off == 0 {
                marker_line
            } else {
                code_lines
                    .range(marker_line + 1..)
                    .next()
                    .copied()
                    .unwrap_or(marker_line)
            };
            allows.push(Allow {
                rule,
                reason,
                target_line,
            });
        }
    }
    Ok(FileCtx {
        path: path.to_path_buf(),
        rel,
        lexed,
        allows,
    })
}

/// Run every configured analysis and assemble the report.
pub fn run(cfg: &Config) -> io::Result<Report> {
    let mut report = Report::default();

    // Load each file once, even when it is in several scan sets.
    let mut cache: BTreeMap<PathBuf, FileCtx> = BTreeMap::new();
    let load = |path: &Path,
                findings: &mut Vec<Finding>,
                cache: &mut BTreeMap<PathBuf, FileCtx>|
     -> io::Result<()> {
        if !cache.contains_key(path) {
            let ctx = load_file(&cfg.root, path, findings)?;
            cache.insert(path.to_path_buf(), ctx);
        }
        Ok(())
    };

    let graph_files: &[PathBuf] = cfg
        .graph
        .as_ref()
        .map(|g| g.files.as_slice())
        .unwrap_or(&[]);
    for path in cfg
        .safety_files
        .iter()
        .chain(&cfg.lock_files)
        .chain(graph_files)
    {
        load(path, &mut report.findings, &mut cache)?;
    }

    for path in &cfg.safety_files {
        let ctx = &cache[path];
        safety::check(ctx, &mut report);
    }

    // Lock names come first: the call graph folds acquisition sites
    // into its per-function summaries, which the lock rules then
    // consult at call sites.
    let lock_ctxs: Vec<&FileCtx> = cfg.lock_files.iter().map(|p| &cache[p]).collect();
    let lock_names = locks::collect_names(&lock_ctxs);
    let lock_scope: std::collections::BTreeSet<String> =
        lock_ctxs.iter().map(|c| c.rel.clone()).collect();

    let graph = cfg.graph.as_ref().map(|gcfg| {
        let ctxs: Vec<&FileCtx> = gcfg.files.iter().map(|p| &cache[p]).collect();
        callgraph::build(&ctxs, &lock_names, &lock_scope)
    });

    let effects = graph
        .as_ref()
        .map(|g| g.effects_for(&lock_scope))
        .unwrap_or_default();
    locks::check(&lock_ctxs, &lock_names, &effects, &mut report);

    if let (Some(g), Some(rcfg)) = (
        &graph,
        cfg.graph.as_ref().and_then(|gc| gc.reactor.as_ref()),
    ) {
        let by_rel: BTreeMap<String, &FileCtx> =
            cache.values().map(|c| (c.rel.clone(), c)).collect();
        let reach = reactor::check(g, rcfg, &by_rel, &mut report);
        report.graph = Some(graph_report(g, &reach));
    } else if let Some(g) = &graph {
        let reach = g.reach(&[]);
        report.graph = Some(graph_report(g, &reach));
    }

    if let Some(wire_cfg) = &cfg.wire {
        wire::check(&cfg.root, wire_cfg, &mut report)?;
    }

    report
        .findings
        .sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(report)
}

/// Condense a built call graph into the JSON-facing stats + the
/// reactor-reachable summaries.
fn graph_report(g: &callgraph::CallGraph, reach: &callgraph::Reach) -> GraphReport {
    let mut summaries = Vec::new();
    for &f in &reach.reachable {
        let def = &g.fns[f];
        summaries.push(FnSummary {
            qname: def.qname.clone(),
            file: def.file.clone(),
            line: def.line,
            may_block: g.may_block(f),
            may_panic: g.may_panic(f),
            locks: g.locks_acquired(f),
            chain: reach
                .chain_to(f)
                .iter()
                .map(|&i| g.fns[i].name.clone())
                .collect(),
        });
    }
    summaries.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    GraphReport {
        functions_indexed: g.stats.functions_indexed,
        call_sites: g.stats.call_sites,
        resolved_unique: g.stats.resolved_unique,
        resolved_multi: g.stats.resolved_multi,
        ambiguous: g.stats.ambiguous,
        unresolved: g.stats.unresolved,
        ambiguity_policy: callgraph::AMBIGUITY_POLICY.to_string(),
        reactor_entries: reach
            .entries
            .iter()
            .map(|&i| g.fns[i].qname.clone())
            .collect(),
        reactor_reachable: reach.reachable.len(),
        summaries,
    }
}
