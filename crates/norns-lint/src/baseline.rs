//! Findings baseline: `--baseline results/lint-baseline.json` makes
//! `--check` fail only on findings whose [`crate::Finding::key`] is
//! not already recorded, so a rule upgrade with a known backlog can
//! gate *new* regressions immediately while the backlog is burned
//! down. `--write-baseline` snapshots the current unsuppressed
//! findings. The file is a flat JSON object:
//!
//! ```json
//! { "schema": 1, "keys": ["rule|file|message", ...] }
//! ```
//!
//! The parser below reads exactly that shape (any JSON document's
//! top-level string array under `"keys"`), with full string-escape
//! handling — no crates.io JSON dependency, consistent with the rest
//! of the tool.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Load baseline keys. A missing file is an empty baseline (every
/// finding is new), so a freshly-added CI flag cannot silently pass.
pub fn load(path: &Path) -> io::Result<BTreeSet<String>> {
    if !path.exists() {
        return Ok(BTreeSet::new());
    }
    let text = std::fs::read_to_string(path)?;
    Ok(parse_keys(&text))
}

/// Serialize `keys` in the baseline format.
pub fn render(keys: &BTreeSet<String>) -> String {
    let mut s = String::from("{\n  \"schema\": 1,\n  \"keys\": [");
    for (i, k) in keys.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        s.push_str(&crate::json_str(k));
    }
    if !keys.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Every JSON string literal after the `"keys"` marker, unescaped.
fn parse_keys(text: &str) -> BTreeSet<String> {
    let Some(start) = text.find("\"keys\"") else {
        return BTreeSet::new();
    };
    let mut out = BTreeSet::new();
    let chars: Vec<char> = text[start + 6..].chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            ']' => break,
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        s.push(match chars[i] {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            'u' => {
                                let hex: String = chars[i + 1..].iter().take(4).collect();
                                i += 4;
                                char::from_u32(u32::from_str_radix(&hex, 16).unwrap_or(0xfffd))
                                    .unwrap_or('\u{fffd}')
                            }
                            other => other,
                        });
                    } else {
                        s.push(chars[i]);
                    }
                    i += 1;
                }
                out.insert(s);
            }
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let keys: BTreeSet<String> = [
            "panic-path|a.rs|msg with \"quotes\" and → arrows".to_string(),
            "reactor-blocking|b.rs|line\ntwo".to_string(),
        ]
        .into();
        assert_eq!(parse_keys(&render(&keys)), keys);
    }

    #[test]
    fn empty_and_missing_are_empty() {
        assert!(parse_keys("{}").is_empty());
        assert!(parse_keys("{\"schema\":1,\"keys\":[]}").is_empty());
    }
}
