//! The interprocedural layer: a workspace call graph built from the
//! lexer token stream.
//!
//! Pass 1 indexes every `fn` with a body, qualified by its file module
//! path, enclosing `mod` blocks, and the `impl`/`trait` type it hangs
//! off. While a body is open, the walker records call sites, direct
//! blocking-denylist hits, lock acquisitions (receiver ends in a
//! collected lock name), and panic sites (`unwrap`/`expect`,
//! `panic!`-family macros, single-token slice indexes). Closures
//! passed to `spawn` run on another thread, so their bodies are
//! excluded from the enclosing function's record.
//!
//! Pass 2 resolves call sites in tiers: `self.m()` to the current
//! impl type, `recv.m()` through a global `ident → type` hint map
//! built from `name: Type` declarations and `let name = Type::...`
//! initializers, `Qual::m()` by type or module name, then a
//! unique-name fallback. The ambiguity policy ([`AMBIGUITY_POLICY`],
//! recorded in `lint.json`): a call that still matches several
//! candidates is counted as ambiguous and **not** traversed —
//! precision over recall, so summary-driven findings stay reviewable.
//!
//! Pass 3 computes per-function summaries by fixpoint over the
//! resolved edges — may-block, locks-acquired, may-panic — each with a
//! witness chain down to the concrete sink line, and supports BFS
//! reachability from named reactor entry points with shortest call
//! chains for findings.

use crate::lexer::Tok;
use crate::FileCtx;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The resolution policy string recorded in `lint.json` schema v2.
pub const AMBIGUITY_POLICY: &str = "self/receiver-type/path-qualifier/unique-name tiers; a call \
     still matching several candidates is counted as ambiguous and not traversed";

/// Same denylist as [`crate::locks`]: calls that park the calling
/// thread. `join` counts only in its zero-argument thread form.
pub const BLOCKING: &[&str] = &[
    "write_all",
    "write_all_at",
    "write_vectored",
    "read_exact",
    "read_exact_at",
    "read_to_end",
    "read_to_string",
    "flush",
    "connect",
    "accept",
    "sleep",
    "copy_file_range",
    "sendfile",
    "epoll_wait",
    "recv",
    "recv_timeout",
    "join",
];

const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Sentinel receiver for methods chained directly off an acquire call
/// (`x.lock().retain(..)`): the receiver is the guard temporary.
const GUARD_RECV: &str = "<guard>";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "type"
            | "const"
            | "static"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "where"
            | "unsafe"
            | "extern"
            | "crate"
            | "super"
            | "dyn"
            | "box"
            | "async"
            | "await"
            | "true"
            | "false"
    )
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `recv.name(..)` — the receiver ident just before the dot, when
    /// it is a plain ident (`None` for chained/parenthesized
    /// receivers).
    Method(Option<String>),
    /// `Qual::name(..)` — the last path segment before the `::`.
    Path(String),
    /// Bare `name(..)`.
    Free,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub line: u32,
    pub recv: Recv,
}

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Module-path-qualified name, e.g.
    /// `norns_ipc::daemon::Shared::reactor_loop`.
    pub qname: String,
    pub name: String,
    /// The `impl`/`trait` type the fn hangs off, if any.
    pub self_type: Option<String>,
    pub file: String,
    pub line: u32,
    /// Defined in a `mod tests` or under a `tests/` dir — excluded as
    /// a resolution candidate for calls from other files.
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    /// Direct blocking-denylist hits: (callee name, line).
    pub blocking: Vec<(String, u32)>,
    /// Direct lock acquisitions: (lock name, line).
    pub locks: Vec<(String, u32)>,
    /// Direct panic sites: (kind, line) with kind one of `unwrap`,
    /// `expect`, `panic!`, `unreachable!`, …, `slice-index`.
    pub panics: Vec<(String, u32)>,
}

/// How one call site resolved.
#[derive(Debug, Clone)]
pub enum Resolution {
    /// Traversed edges to these function indices.
    Confident(Vec<usize>),
    /// Several same-name candidates, no type information: counted,
    /// not traversed.
    Ambiguous(usize),
    /// No workspace candidate (std / extern / macro-generated).
    Unresolved,
}

/// A step in a summary witness chain.
#[derive(Debug, Clone)]
enum Witness {
    /// The sink itself (callee name, panic kind, or lock name).
    Direct(String),
    /// Through a call to `fns[callee]`.
    Via(usize),
}

#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub functions_indexed: usize,
    pub call_sites: usize,
    pub resolved_unique: usize,
    pub resolved_multi: usize,
    pub ambiguous: usize,
    pub unresolved: usize,
}

/// Reactor reachability: BFS order, shortest-path parents, and the
/// entry fn indices that matched the configured entry points.
pub struct Reach {
    pub entries: Vec<usize>,
    pub reachable: BTreeSet<usize>,
    parent: BTreeMap<usize, (usize, u32)>,
}

impl Reach {
    /// Shortest call chain `entry → … → f`, as fn indices.
    pub fn chain_to(&self, f: usize) -> Vec<usize> {
        let mut chain = vec![f];
        let mut cur = f;
        while let Some(&(p, _)) = self.parent.get(&cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// Transitive effects of one call site, for the lock rules: does the
/// callee (transitively) block, and which locks does it acquire? Chain
/// texts are short-name arrows ending at the sink.
#[derive(Debug, Clone, Default)]
pub struct CallEffects {
    pub blocks: Option<String>,
    pub locks: Vec<(String, String)>,
}

pub struct CallGraph {
    pub fns: Vec<FnDef>,
    /// Per-fn resolved edges: (callee index, call line).
    pub edges: Vec<Vec<(usize, u32)>>,
    /// Parallel to each fn's `calls`.
    pub resolutions: Vec<Vec<Resolution>>,
    pub stats: Stats,
    may_block: Vec<Option<Witness>>,
    may_panic: Vec<Option<Witness>>,
    lock_sets: Vec<BTreeMap<String, Witness>>,
}

impl CallGraph {
    pub fn may_block(&self, f: usize) -> bool {
        self.may_block[f].is_some()
    }

    pub fn may_panic(&self, f: usize) -> bool {
        self.may_panic[f].is_some()
    }

    pub fn locks_acquired(&self, f: usize) -> Vec<String> {
        self.lock_sets[f].keys().cloned().collect()
    }

    /// Short-name chain from `f` to its blocking sink, e.g.
    /// `["flush_blocking", "sleep"]`.
    pub fn block_chain(&self, f: usize) -> Vec<String> {
        self.witness_chain(f, |g| self.may_block[g].as_ref())
    }

    fn witness_chain<'a>(
        &'a self,
        f: usize,
        get: impl Fn(usize) -> Option<&'a Witness>,
    ) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = f;
        let mut hops = 0;
        loop {
            chain.push(self.fns[cur].name.clone());
            match get(cur) {
                Some(Witness::Direct(what)) => {
                    chain.push(what.clone());
                    return chain;
                }
                Some(Witness::Via(next)) => {
                    cur = *next;
                    hops += 1;
                    if hops > self.fns.len() {
                        return chain; // defensive: witness chains are acyclic
                    }
                }
                None => return chain,
            }
        }
    }

    /// BFS from the configured entry points. Each entry is a
    /// `(file suffix, fn name)` pair.
    pub fn reach(&self, entries: &[(String, String)]) -> Reach {
        let mut entry_idx = Vec::new();
        for (suffix, name) in entries {
            for (i, d) in self.fns.iter().enumerate() {
                if d.name == *name && d.file.ends_with(suffix.as_str()) {
                    entry_idx.push(i);
                }
            }
        }
        entry_idx.sort_unstable();
        entry_idx.dedup();
        let mut reachable: BTreeSet<usize> = entry_idx.iter().copied().collect();
        let mut parent = BTreeMap::new();
        let mut queue: VecDeque<usize> = entry_idx.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            for &(callee, line) in &self.edges[f] {
                if reachable.insert(callee) {
                    parent.insert(callee, (f, line));
                    queue.push_back(callee);
                }
            }
        }
        Reach {
            entries: entry_idx,
            reachable,
            parent,
        }
    }

    /// The transitive effects of every confidently-resolved call site
    /// in `files` (workspace-relative paths), keyed by
    /// `(file, line, callee name)`. Sites whose callee name is itself
    /// on the blocking denylist are skipped — the lexical check
    /// already fires on those.
    pub fn effects_for(
        &self,
        files: &BTreeSet<String>,
    ) -> BTreeMap<(String, u32, String), CallEffects> {
        let mut out: BTreeMap<(String, u32, String), CallEffects> = BTreeMap::new();
        for (fi, def) in self.fns.iter().enumerate() {
            if !files.contains(&def.file) {
                continue;
            }
            for (si, site) in def.calls.iter().enumerate() {
                if BLOCKING.contains(&site.name.as_str()) {
                    continue;
                }
                let Resolution::Confident(cands) = &self.resolutions[fi][si] else {
                    continue;
                };
                let mut eff = CallEffects::default();
                for &c in cands {
                    if eff.blocks.is_none() && self.may_block[c].is_some() {
                        eff.blocks = Some(arrows(&self.block_chain(c)));
                    }
                    for lock in self.lock_sets[c].keys() {
                        let chain = arrows(&self.lock_chain(c, lock));
                        if !eff.locks.iter().any(|(l, _)| l == lock) {
                            eff.locks.push((lock.clone(), chain));
                        }
                    }
                }
                if eff.blocks.is_none() && eff.locks.is_empty() {
                    continue;
                }
                let key = (def.file.clone(), site.line, site.name.clone());
                let slot = out.entry(key).or_default();
                if slot.blocks.is_none() {
                    slot.blocks = eff.blocks;
                }
                for l in eff.locks {
                    if !slot.locks.iter().any(|(n, _)| *n == l.0) {
                        slot.locks.push(l);
                    }
                }
            }
        }
        out
    }

    fn lock_chain(&self, f: usize, lock: &str) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = f;
        let mut hops = 0;
        loop {
            chain.push(self.fns[cur].name.clone());
            match self.lock_sets[cur].get(lock) {
                Some(Witness::Direct(what)) => {
                    chain.push(format!("{what}.lock"));
                    return chain;
                }
                Some(Witness::Via(next)) => {
                    cur = *next;
                    hops += 1;
                    if hops > self.fns.len() {
                        return chain;
                    }
                }
                None => return chain,
            }
        }
    }
}

/// Render a chain as `a → b → c`.
pub fn arrows(chain: &[String]) -> String {
    chain.join(" → ")
}

/// Build the workspace call graph. `lock_names`/`lock_scope` feed the
/// locks-acquired summaries (acquisition sites are only meaningful in
/// the lock-discipline scan set).
pub fn build(
    files: &[&FileCtx],
    lock_names: &BTreeSet<String>,
    lock_scope: &BTreeSet<String>,
) -> CallGraph {
    let mut fns: Vec<FnDef> = Vec::new();
    let mut hints: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ctx in files {
        index_file(ctx, lock_names, lock_scope, &mut fns, &mut hints);
    }

    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in fns.iter().enumerate() {
        by_name.entry(d.name.as_str()).or_default().push(i);
    }

    let mut stats = Stats {
        functions_indexed: fns.len(),
        ..Stats::default()
    };
    let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); fns.len()];
    let mut resolutions: Vec<Vec<Resolution>> = Vec::with_capacity(fns.len());
    for fi in 0..fns.len() {
        let mut res = Vec::with_capacity(fns[fi].calls.len());
        for si in 0..fns[fi].calls.len() {
            let site = fns[fi].calls[si].clone();
            let r = resolve(&site, &fns[fi], &fns, &by_name, &hints, lock_names);
            stats.call_sites += 1;
            match &r {
                Resolution::Confident(c) if c.len() == 1 => stats.resolved_unique += 1,
                Resolution::Confident(_) => stats.resolved_multi += 1,
                Resolution::Ambiguous(_) => stats.ambiguous += 1,
                Resolution::Unresolved => stats.unresolved += 1,
            }
            if let Resolution::Confident(cands) = &r {
                for &c in cands {
                    edges[fi].push((c, site.line));
                }
            }
            res.push(r);
        }
        edges[fi].sort_unstable();
        edges[fi].dedup();
        resolutions.push(res);
    }

    let (may_block, may_panic, lock_sets) = summarize(&fns, &edges);
    CallGraph {
        fns,
        edges,
        resolutions,
        stats,
        may_block,
        may_panic,
        lock_sets,
    }
}

/// Fixpoint propagation of the three summaries over resolved edges.
#[allow(clippy::type_complexity)]
fn summarize(
    fns: &[FnDef],
    edges: &[Vec<(usize, u32)>],
) -> (
    Vec<Option<Witness>>,
    Vec<Option<Witness>>,
    Vec<BTreeMap<String, Witness>>,
) {
    let n = fns.len();
    let mut redges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for (caller, outs) in edges.iter().enumerate() {
        for &(callee, line) in outs {
            redges[callee].push((caller, line));
        }
    }

    let mut may_block: Vec<Option<Witness>> = vec![None; n];
    let mut may_panic: Vec<Option<Witness>> = vec![None; n];
    let mut lock_sets: Vec<BTreeMap<String, Witness>> = vec![BTreeMap::new(); n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, d) in fns.iter().enumerate() {
        if let Some((name, _)) = d.blocking.first() {
            may_block[i] = Some(Witness::Direct(name.clone()));
        }
        if let Some((kind, _)) = d.panics.first() {
            may_panic[i] = Some(Witness::Direct(kind.clone()));
        }
        for (lock, _) in &d.locks {
            lock_sets[i]
                .entry(lock.clone())
                .or_insert(Witness::Direct(lock.clone()));
        }
        queue.push_back(i);
    }
    let mut queued: Vec<bool> = vec![true; n];
    while let Some(f) = queue.pop_front() {
        queued[f] = false;
        let f_block = may_block[f].is_some();
        let f_panic = may_panic[f].is_some();
        let f_locks: Vec<String> = lock_sets[f].keys().cloned().collect();
        for &(caller, _line) in &redges[f] {
            let mut changed = false;
            if f_block && may_block[caller].is_none() {
                may_block[caller] = Some(Witness::Via(f));
                changed = true;
            }
            if f_panic && may_panic[caller].is_none() {
                may_panic[caller] = Some(Witness::Via(f));
                changed = true;
            }
            for lock in &f_locks {
                if !lock_sets[caller].contains_key(lock) {
                    lock_sets[caller].insert(lock.clone(), Witness::Via(f));
                    changed = true;
                }
            }
            if changed && !queued[caller] {
                queued[caller] = true;
                queue.push_back(caller);
            }
        }
    }
    (may_block, may_panic, lock_sets)
}

/// Tiered resolution; see [`AMBIGUITY_POLICY`].
fn resolve(
    site: &CallSite,
    caller: &FnDef,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    hints: &BTreeMap<String, BTreeSet<String>>,
    lock_names: &BTreeSet<String>,
) -> Resolution {
    let Some(all) = by_name.get(site.name.as_str()) else {
        return Resolution::Unresolved;
    };
    // `spawn` is the thread-handoff primitive (`thread::spawn`,
    // `Builder::spawn`): never bind it to a workspace fn that merely
    // shares the name unless a type tier proves it.
    if site.name == "spawn" && !matches!(&site.recv, Recv::Path(_)) {
        return Resolution::Unresolved;
    }
    // Methods on a receiver named like a collected lock, or chained
    // straight off `.lock()`/`.read()`/`.write()`, are guard or
    // collection operations (`entries.lock().retain(..)`), not
    // workspace calls.
    if let Recv::Method(Some(r)) = &site.recv {
        if r == GUARD_RECV || lock_names.contains(r) {
            return Resolution::Unresolved;
        }
    }
    let cands: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| !fns[i].is_test || fns[i].file == caller.file)
        .collect();
    if cands.is_empty() {
        return Resolution::Unresolved;
    }
    let with_self_type = |ty: &str| -> Vec<usize> {
        cands
            .iter()
            .copied()
            .filter(|&i| fns[i].self_type.as_deref() == Some(ty))
            .collect()
    };
    match &site.recv {
        Recv::Method(Some(r)) if r == "self" => {
            if let Some(ty) = &caller.self_type {
                let m = with_self_type(ty);
                if !m.is_empty() {
                    return Resolution::Confident(m);
                }
            }
        }
        Recv::Method(Some(r)) => {
            if let Some(tys) = hints.get(r).filter(|t| !t.is_empty()) {
                let m: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| fns[i].self_type.as_deref().is_some_and(|t| tys.contains(t)))
                    .collect();
                // A typed receiver that matches no workspace method is
                // a std/extern call, not license to guess.
                return if m.is_empty() {
                    Resolution::Unresolved
                } else {
                    Resolution::Confident(m)
                };
            }
        }
        Recv::Path(q) if q == "Self" => {
            if let Some(ty) = &caller.self_type {
                let m = with_self_type(ty);
                if !m.is_empty() {
                    return Resolution::Confident(m);
                }
            }
        }
        Recv::Path(q) => {
            let m = with_self_type(q);
            if !m.is_empty() {
                return Resolution::Confident(m);
            }
            let by_mod: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    fns[i].qname.contains(&format!("::{q}::"))
                        || fns[i].qname.starts_with(&format!("{q}::"))
                })
                .collect();
            if !by_mod.is_empty() {
                return Resolution::Confident(by_mod);
            }
            // A qualifier that names no workspace type or module is a
            // std/extern path (`thread::spawn`, `mem::take`): do not
            // fall through to the unique-name tier. Relative path
            // qualifiers (`super::x()`, `crate::x()`) still may.
            if !matches!(q.as_str(), "super" | "crate" | "self") {
                return Resolution::Unresolved;
            }
        }
        Recv::Method(None) | Recv::Free => {}
    }
    if let Recv::Free = site.recv {
        let free_same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].self_type.is_none() && fns[i].file == caller.file)
            .collect();
        if !free_same_file.is_empty() {
            return Resolution::Confident(free_same_file);
        }
    }
    if cands.len() == 1 {
        Resolution::Confident(cands)
    } else {
        Resolution::Ambiguous(cands.len())
    }
}

/// Module path prefix from a workspace-relative file path:
/// `crates/norns-ipc/src/engine/mod.rs` → `norns_ipc::engine`.
fn module_path(rel: &str) -> Vec<String> {
    let mut comps: Vec<&str> = rel.trim_end_matches(".rs").split('/').collect();
    if comps.first() == Some(&"crates") {
        comps.remove(0);
    }
    // `compat/<crate>/src/...` keeps the crate dir as the name.
    if let Some(pos) = comps.iter().position(|&c| c == "src") {
        comps.remove(pos);
    }
    let mut out: Vec<String> = comps
        .into_iter()
        .filter(|c| !c.is_empty())
        .map(|c| c.replace('-', "_"))
        .collect();
    while matches!(out.last().map(String::as_str), Some("mod" | "lib" | "main")) {
        out.pop();
    }
    out
}

/// Pass 1 over one file: index fns, their call/blocking/lock/panic
/// sites, and grow the global receiver-type hint map.
fn index_file(
    ctx: &FileCtx,
    lock_names: &BTreeSet<String>,
    lock_scope: &BTreeSet<String>,
    fns: &mut Vec<FnDef>,
    hints: &mut BTreeMap<String, BTreeSet<String>>,
) {
    let toks = &ctx.lexed.tokens;
    let file_mods = module_path(&ctx.rel);
    let in_lock_scope = lock_scope.contains(&ctx.rel);
    let path_is_test = ctx.rel.split('/').any(|c| c == "tests");

    let mut brace: u32 = 0;
    let mut mods: Vec<(String, u32)> = Vec::new();
    let mut impls: Vec<(String, u32)> = Vec::new();
    // Open fn bodies, innermost last: (index into fns, depth of the
    // body's opening brace).
    let mut open: Vec<(usize, u32)> = Vec::new();
    let mut pending_fn: Option<(String, u32)> = None;
    let mut pending_mod: Option<String> = None;
    let mut pending_impl: Option<String> = None;

    let ident_at = |i: usize| -> Option<&str> {
        toks.get(i).and_then(|t| match &t.kind {
            Tok::Ident(w) => Some(w.as_str()),
            _ => None,
        })
    };
    let punct_at = |i: usize, c: char| -> bool {
        matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
    };

    let mut i = 0usize;
    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            Tok::Punct('{') => {
                if let Some((name, fn_line)) = pending_fn.take() {
                    let mut qname: Vec<String> = file_mods.clone();
                    qname.extend(mods.iter().map(|(m, _)| m.clone()));
                    let self_type = impls.last().map(|(t, _)| t.clone());
                    if let Some(t) = &self_type {
                        qname.push(t.clone());
                    }
                    qname.push(name.clone());
                    let is_test = path_is_test || mods.iter().any(|(m, _)| m == "tests");
                    fns.push(FnDef {
                        qname: qname.join("::"),
                        name,
                        self_type,
                        file: ctx.rel.clone(),
                        line: fn_line,
                        is_test,
                        calls: Vec::new(),
                        blocking: Vec::new(),
                        locks: Vec::new(),
                        panics: Vec::new(),
                    });
                    open.push((fns.len() - 1, brace));
                } else if let Some(m) = pending_mod.take() {
                    mods.push((m, brace));
                } else if let Some(t) = pending_impl.take() {
                    impls.push((t, brace));
                }
                brace += 1;
            }
            Tok::Punct('}') => {
                brace = brace.saturating_sub(1);
                while matches!(open.last(), Some(&(_, d)) if d == brace) {
                    open.pop();
                }
                while matches!(mods.last(), Some(&(_, d)) if d == brace) {
                    mods.pop();
                }
                while matches!(impls.last(), Some(&(_, d)) if d == brace) {
                    impls.pop();
                }
            }
            Tok::Punct(';') => {
                pending_fn = None;
                pending_mod = None;
                pending_impl = None;
            }
            Tok::Ident(w) if w == "fn" => {
                if let Some(name) = ident_at(i + 1) {
                    pending_fn = Some((name.to_string(), toks[i + 1].line));
                }
            }
            Tok::Ident(w) if w == "mod" => {
                if let Some(name) = ident_at(i + 1) {
                    pending_mod = Some(name.to_string());
                }
            }
            Tok::Ident(w) if (w == "impl" || w == "trait") && pending_fn.is_none() => {
                pending_impl = impl_target(toks, i + 1);
            }
            Tok::Ident(w) if pending_fn.is_none() && !open.is_empty() && !is_keyword(w) => {
                let (fi, _) = *open.last().unwrap();
                if punct_at(i + 1, '!') {
                    if PANIC_MACROS.contains(&w.as_str()) {
                        fns[fi].panics.push((format!("{w}!"), line));
                    }
                } else if punct_at(i + 1, '(') {
                    let zero_arg = punct_at(i + 2, ')');
                    let is_method = i > 0 && punct_at(i - 1, '.');
                    if is_method && PANIC_METHODS.contains(&w.as_str()) {
                        fns[fi].panics.push((w.clone(), line));
                    } else {
                        let recv = if is_method {
                            // `x.lock().retain(..)`: the receiver is the
                            // guard temporary, not a workspace type.
                            let guard_chain = i >= 4
                                && punct_at(i - 2, ')')
                                && punct_at(i - 3, '(')
                                && i.checked_sub(4)
                                    .and_then(ident_at)
                                    .is_some_and(|a| ACQUIRE.contains(&a));
                            if guard_chain {
                                Recv::Method(Some(GUARD_RECV.to_string()))
                            } else {
                                Recv::Method(i.checked_sub(2).and_then(ident_at).and_then(|r| {
                                    if is_keyword(r) && r != "self" {
                                        None
                                    } else {
                                        Some(r.to_string())
                                    }
                                }))
                            }
                        } else if i >= 2 && punct_at(i - 1, ':') && punct_at(i - 2, ':') {
                            match i.checked_sub(3).and_then(ident_at) {
                                Some(q) => Recv::Path(q.to_string()),
                                None => Recv::Free,
                            }
                        } else {
                            Recv::Free
                        };
                        if BLOCKING.contains(&w.as_str()) && (w != "join" || zero_arg) {
                            fns[fi].blocking.push((w.clone(), line));
                        }
                        if is_method && zero_arg && ACQUIRE.contains(&w.as_str()) && in_lock_scope {
                            if let Recv::Method(Some(r)) = &recv {
                                if lock_names.contains(r) {
                                    fns[fi].locks.push((r.clone(), line));
                                }
                            }
                        }
                        let is_spawn = w == "spawn";
                        fns[fi].calls.push(CallSite {
                            name: w.clone(),
                            line,
                            recv,
                        });
                        if is_spawn {
                            // A closure handed to spawn runs on another
                            // thread: skip its body.
                            i = skip_parens(toks, i + 1);
                            continue;
                        }
                    }
                }
            }
            Tok::Punct('[') if !open.is_empty() && pending_fn.is_none() => {
                let (fi, _) = *open.last().unwrap();
                let indexable = match i.checked_sub(1).map(|p| &toks[p].kind) {
                    Some(Tok::Ident(w)) => !is_keyword(w),
                    Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
                    _ => false,
                };
                if indexable {
                    if let Some(end) = matching_bracket(toks, i) {
                        if end == i + 2 {
                            let inner_ok = match &toks[i + 1].kind {
                                Tok::Lit => true,
                                Tok::Ident(w) => !is_keyword(w),
                                _ => false,
                            };
                            if inner_ok {
                                fns[fi].panics.push(("slice-index".into(), line));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        // Receiver-type hints are collected everywhere (struct fields,
        // params, lets), not just inside fn bodies.
        if let Tok::Ident(w) = &toks[i].kind {
            if w == "let" {
                collect_let_hint(toks, i, hints);
            } else {
                let plain_colon = punct_at(i + 1, ':')
                    && !punct_at(i + 2, ':')
                    && !(i > 0 && punct_at(i - 1, ':'));
                if !is_keyword(w) && plain_colon {
                    collect_type_hint(toks, i + 2, w, hints);
                }
            }
        }
        i += 1;
    }
}

/// Skip a balanced `( … )` starting at the token index of the opening
/// paren (or of the callee name — the first `(` at or after `from` is
/// matched). Returns the index of the closing paren.
fn skip_parens(toks: &[crate::lexer::Token], from: usize) -> usize {
    let mut j = from;
    while j < toks.len() && !matches!(toks[j].kind, Tok::Punct('(')) {
        j += 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Index of the `]` matching the `[` at `open`, if balanced.
fn matching_bracket(toks: &[crate::lexer::Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// The type an `impl`/`trait` header hangs methods off: the last
/// top-level ident before the body `{`, preferring the segment after
/// `for` and ignoring generic args and `where` clauses.
fn impl_target(toks: &[crate::lexer::Token], from: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut candidate: Option<String> = None;
    let mut j = from;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Punct('<') => angle += 1,
            // `->` in a bound like `Fn() -> T` is not a closer.
            Tok::Punct('>') if !(j > 0 && matches!(toks[j - 1].kind, Tok::Punct('-'))) => {
                angle -= 1;
            }
            Tok::Ident(w) if angle <= 0 => {
                if w == "for" {
                    candidate = None;
                } else if w == "where" {
                    break;
                } else if !is_keyword(w) {
                    candidate = Some(w.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    candidate
}

/// `name : Type` — record every uppercase-initial ident of the type
/// expression as a hint for `name`, e.g. `engine: Arc<Engine>` →
/// `{Arc, Engine}` (method resolution then looks through the wrapper,
/// which matches `Deref` behavior well enough for a linter).
fn collect_type_hint(
    toks: &[crate::lexer::Token],
    from: usize,
    name: &str,
    hints: &mut BTreeMap<String, BTreeSet<String>>,
) {
    let mut depth = 0i32;
    for (steps, t) in toks.iter().skip(from).enumerate() {
        if steps > 24 {
            break;
        }
        match &t.kind {
            Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Punct(',')
            | Tok::Punct(';')
            | Tok::Punct('{')
            | Tok::Punct('}')
            | Tok::Punct('=')
                if depth == 0 =>
            {
                break;
            }
            Tok::Ident(w) if w.chars().next().is_some_and(|c| c.is_uppercase()) => {
                hints.entry(name.to_string()).or_default().insert(w.clone());
            }
            _ => {}
        }
    }
}

/// `let [mut] name = …;` — uppercase idents of the initializer hint
/// the binding's type (`let engine = Arc::new(Engine::new(..))` →
/// `{Arc, Engine}`).
fn collect_let_hint(
    toks: &[crate::lexer::Token],
    let_idx: usize,
    hints: &mut BTreeMap<String, BTreeSet<String>>,
) {
    let mut j = let_idx + 1;
    if matches!(toks.get(j).map(|t| &t.kind), Some(Tok::Ident(w)) if w == "mut") {
        j += 1;
    }
    let name = match toks.get(j).map(|t| &t.kind) {
        Some(Tok::Ident(n)) if !is_keyword(n) => n.clone(),
        _ => return,
    };
    // Typed lets (`let x: T = ..`) are covered by collect_type_hint.
    if !matches!(toks.get(j + 1).map(|t| &t.kind), Some(Tok::Punct('='))) {
        return;
    }
    let mut depth = 0i32;
    for (steps, t) in toks.iter().skip(j + 2).enumerate() {
        if steps > 32 {
            break;
        }
        match &t.kind {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => break,
            Tok::Ident(w) if w.chars().next().is_some_and(|c| c.is_uppercase()) => {
                hints.entry(name.clone()).or_default().insert(w.clone());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::FileCtx;
    use std::path::PathBuf;

    fn ctx(rel: &str, src: &str) -> FileCtx {
        FileCtx {
            path: PathBuf::from(rel),
            rel: rel.to_string(),
            lexed: lexer::lex(src),
            allows: Vec::new(),
        }
    }

    fn build_one(src: &str) -> CallGraph {
        let f = ctx("a.rs", src);
        build(&[&f], &BTreeSet::new(), &BTreeSet::new())
    }

    fn fn_idx(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|d| d.name == name)
            .unwrap_or_else(|| panic!("fn `{name}` not indexed"))
    }

    #[test]
    fn free_fn_calls_resolve_within_the_file() {
        let g = build_one("fn a() { b(); }\nfn b() {}\n");
        let (a, b) = (fn_idx(&g, "a"), fn_idx(&g, "b"));
        assert_eq!(g.edges[a], vec![(b, 1)]);
        assert_eq!(g.stats.resolved_unique, 1);
    }

    #[test]
    fn method_calls_resolve_via_receiver_type_hints() {
        let src = "struct Pool;\n\
                   impl Pool { fn drain(&self) {} }\n\
                   fn run(pool: &Pool) { pool.drain(); }\n";
        let g = build_one(src);
        let (run_i, drain) = (fn_idx(&g, "run"), fn_idx(&g, "drain"));
        assert_eq!(g.edges[run_i].len(), 1);
        assert_eq!(g.edges[run_i][0].0, drain);
    }

    #[test]
    fn self_methods_resolve_to_the_impl_type() {
        let src = "struct A;\nstruct B;\n\
                   impl A { fn go(&self) { self.step(); }\n fn step(&self) {} }\n\
                   impl B { fn step(&self) {} }\n";
        let g = build_one(src);
        let go = fn_idx(&g, "go");
        let a_step = g
            .fns
            .iter()
            .position(|d| d.name == "step" && d.self_type.as_deref() == Some("A"))
            .unwrap();
        assert_eq!(g.edges[go], vec![(a_step, 3)]);
    }

    #[test]
    fn untyped_ambiguous_methods_are_counted_not_traversed() {
        let src = "struct A;\nstruct B;\n\
                   impl A { fn go(&self) {} }\n\
                   impl B { fn go(&self) {} }\n\
                   fn run() { let x = make(); x.go(); }\n";
        let g = build_one(src);
        let run_i = fn_idx(&g, "run");
        assert!(
            g.edges[run_i].is_empty(),
            "an ambiguous call must not grow edges"
        );
        assert_eq!(g.stats.ambiguous, 1);
    }

    #[test]
    fn typed_receiver_with_no_candidate_stays_unresolved() {
        // `cv: Condvar` names a type with no workspace `wait` — the
        // call is std, not license to bind a same-named workspace fn.
        let src = "struct Poller;\n\
                   impl Poller { fn wait(&self) {} }\n\
                   fn park(cv: &Condvar) { cv.wait(); }\n";
        let g = build_one(src);
        let park = fn_idx(&g, "park");
        assert!(g.edges[park].is_empty());
    }

    #[test]
    fn thread_spawn_does_not_bind_to_a_workspace_spawn() {
        let src = "fn spawn() {}\n\
                   fn run() { std::thread::spawn(|| helper()); }\n\
                   fn helper() {}\n";
        let g = build_one(src);
        let run_i = fn_idx(&g, "run");
        // Neither the spawn call nor the closure body (other thread)
        // may taint `run`.
        assert!(g.edges[run_i].is_empty(), "{:?}", g.edges[run_i]);
    }

    #[test]
    fn guard_chained_methods_do_not_resolve() {
        let src = "struct T;\n\
                   impl T { fn retain(&self) { self.entries.lock().retain(); } }\n";
        let g = build_one(src);
        let r = fn_idx(&g, "retain");
        assert!(
            g.edges[r].iter().all(|&(c, _)| c != r),
            "a collection method on a fresh guard must not self-loop"
        );
    }

    #[test]
    fn may_block_summaries_propagate_with_witness_chains() {
        let src = "fn a() { b(); }\n\
                   fn b() { c(); }\n\
                   fn c(s: &mut S) { s.flush(); }\n";
        let g = build_one(src);
        let a = fn_idx(&g, "a");
        assert!(g.may_block(a));
        assert_eq!(g.block_chain(a), vec!["a", "b", "c", "flush"]);
    }
}
