//! Rules `reactor-blocking` and `panic-path`.
//!
//! Both are reachability rules over the call graph: starting from the
//! configured reactor entry points (the epoll dispatch loop and the
//! completion-queue callback constructor in `norns-ipc`), a BFS marks
//! every function that can run on a reactor thread. In that set:
//!
//! * **reactor-blocking** — any direct hit on the blocking denylist is
//!   a finding, anchored at the sink line (so the waiver sits next to
//!   the call it excuses) and carrying the shortest call chain from an
//!   entry point.
//! * **panic-path** — any `unwrap`/`expect`/`panic!`-family/
//!   single-token slice index inside the configured panic scope
//!   (norns-ipc sources) is a finding: a panic on a reactor thread
//!   takes every connection on that reactor down with it. Refactor to
//!   an error return, or waive with a reason.
//!
//! Closures passed to `spawn` are excluded by construction (the
//! indexer skips them), so work handed off to another thread does not
//! taint the reactor-reachable set.

use crate::callgraph::{arrows, CallGraph, Reach};
use crate::{FileCtx, Finding, Report, Rule};
use std::collections::BTreeMap;

/// Where reactor execution starts and which files' panic sites are
/// held to the no-panic bar.
pub struct ReactorConfig {
    /// `(file suffix, fn name)` pairs naming entry points.
    pub entries: Vec<(String, String)>,
    /// Workspace-relative path prefixes whose panic sites are checked
    /// when reachable (e.g. `crates/norns-ipc/src`).
    pub panic_scope: Vec<String>,
}

pub fn check(
    graph: &CallGraph,
    cfg: &ReactorConfig,
    files: &BTreeMap<String, &FileCtx>,
    report: &mut Report,
) -> Reach {
    let reach = graph.reach(&cfg.entries);
    let allow_at = |rule: Rule, file: &str, line: u32| -> Option<String> {
        files
            .get(file)
            .and_then(|ctx| ctx.allow_for(rule, line))
            .map(str::to_string)
    };

    for &f in &reach.reachable {
        let def = &graph.fns[f];
        let chain_fns = reach.chain_to(f);
        let chain: Vec<String> = chain_fns
            .iter()
            .map(|&i| graph.fns[i].name.clone())
            .collect();

        for (sink, line) in &def.blocking {
            let mut full = chain.clone();
            full.push(sink.clone());
            report.findings.push(Finding {
                rule: Rule::ReactorBlocking,
                file: def.file.clone(),
                line: *line,
                message: format!(
                    "blocking call `{sink}` is reachable from reactor entry `{}`: {}",
                    chain.first().map(String::as_str).unwrap_or(""),
                    arrows(&full)
                ),
                allowed: allow_at(Rule::ReactorBlocking, &def.file, *line),
                chain: full,
            });
        }

        if cfg.panic_scope.iter().any(|p| def.file.starts_with(p)) {
            for (kind, line) in &def.panics {
                let mut full = chain.clone();
                full.push(kind.clone());
                report.findings.push(Finding {
                    rule: Rule::PanicPath,
                    file: def.file.clone(),
                    line: *line,
                    message: format!(
                        "`{kind}` on a reactor path ({}) — return an error instead, \
                         or waive with a reason",
                        arrows(&full)
                    ),
                    allowed: allow_at(Rule::PanicPath, &def.file, *line),
                    chain: full,
                });
            }
        }
    }
    reach
}
