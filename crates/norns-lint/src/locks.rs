//! Rules `lock-across-blocking` and `lock-order-cycle`.
//!
//! A per-function lexical scope tracker follows `Mutex`/`RwLock`
//! guards through the token stream:
//!
//! * **Lock identity** is the declared field/binding name: pass A
//!   collects every `name: Mutex<...>` / `name: RwLock<...>` /
//!   `name: Mutex::new(...)` / `let name = Mutex::new(...)` over the
//!   scan set, and only `.lock()` / `.read()` / `.write()` calls whose
//!   receiver ends in a collected name count as acquisitions (so
//!   `stream.write(...)` or `file.read(...)` never do).
//! * **Named guards** (`let g = self.x.lock();`) live until their
//!   scope closes or `drop(g)`. **Temporary guards**
//!   (`self.x.lock().push(..)`, `match self.x.lock() {..}`,
//!   `if let .. = self.x.lock().get(..)`) live until the statement
//!   ends — `;` or `,` at their depth, or the sibling block that
//!   extends them (match body, if-let body) closes. This matches
//!   Rust's temporary-lifetime rules, including the `match`/`if let`
//!   scrutinee extension.
//! * **Closures** get a fresh frame: a guard held where a closure is
//!   *defined* is not held where it *runs*.
//!
//! While any guard is live, a deny-listed blocking call is a
//! `lock-across-blocking` finding, and acquiring a lock adds a
//! `held → acquired` edge to the global lock graph; a cycle in that
//! graph (including a self-edge: re-acquiring a lock you hold) is a
//! `lock-order-cycle` finding. The scope tracking is per-function and
//! lexical, but call sites additionally consult the call-graph
//! summaries ([`crate::callgraph`]): a guard live across a call to a
//! helper that *transitively* blocks is a finding too, and locks a
//! callee acquires internally contribute `held → acquired` edges
//! (tagged with the witness chain) to the cycle check. Condvar waits
//! (`wait`, `wait_until`, `wait_timeout`) are not denied: they
//! atomically release the guard they park on.

use crate::callgraph::CallEffects;
use crate::lexer::Tok;
use crate::{FileCtx, Finding, LockEdge, Report, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Transitive call-site effects, keyed by `(file, line, callee name)`.
pub type EffectMap = BTreeMap<(String, u32, String), CallEffects>;

/// Calls that park the calling thread (or stream to a peer). `join`
/// only counts in its zero-argument thread form — `path.join(x)` and
/// `slice.join(sep)` take arguments.
const BLOCKING: &[&str] = &[
    "write_all",
    "write_all_at",
    "write_vectored",
    "read_exact",
    "read_exact_at",
    "read_to_end",
    "read_to_string",
    "flush",
    "connect",
    "accept",
    "sleep",
    "copy_file_range",
    "sendfile",
    "epoll_wait",
    "recv",
    "recv_timeout",
    "join",
];

/// Methods that acquire a lock when called with no arguments on a
/// receiver whose final path segment is a collected lock name.
const ACQUIRE: &[&str] = &["lock", "read", "write"];

#[derive(Debug, Clone)]
struct Guard {
    /// Binding name for named guards (releasable via `drop(name)`).
    var: Option<String>,
    lock: String,
    line: u32,
    /// Brace depth where the guard came to life.
    decl_depth: u32,
    /// Temporaries release at statement end; named guards at scope
    /// close.
    temp: bool,
}

/// One analysis frame: a `fn` body or a closure body. Guards never
/// cross frames.
struct Frame {
    func: String,
    /// Brace depth at which this frame's body `{` opened (frames for
    /// expression closures record the current depth).
    depth: u32,
    /// Expression-closure frames (no braces) end at the `)` that
    /// returns the paren depth to this value, instead of a brace.
    expr_end_paren: Option<u32>,
    guards: Vec<Guard>,
}

/// Pass A: collect lock names across the whole scan set.
pub fn collect_names(files: &[&FileCtx]) -> BTreeSet<String> {
    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    for ctx in files {
        collect_lock_names(ctx, &mut lock_names);
    }
    lock_names
}

pub fn check(
    files: &[&FileCtx],
    lock_names: &BTreeSet<String>,
    effects: &EffectMap,
    report: &mut Report,
) {
    report.lock_names = lock_names.iter().cloned().collect();

    // Pass B: per-file scope tracking.
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for ctx in files {
        track_file(ctx, lock_names, effects, &mut edges, report);
    }

    // Cycle detection over the unwaived edges.
    let live: Vec<LockEdge> = edges.values().filter(|e| !e.allowed).cloned().collect();
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &live {
        adj.entry(e.held.as_str()).or_default().push(e);
    }
    let starts: Vec<&str> = adj.keys().copied().collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in starts {
        let mut path: Vec<&LockEdge> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        dfs(start, &adj, &mut path, &mut on_path, &mut reported, report);
    }

    report.lock_edges = edges.into_values().collect();
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a LockEdge>>,
    path: &mut Vec<&'a LockEdge>,
    on_path: &mut BTreeSet<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    report: &mut Report,
) {
    on_path.insert(node);
    for edge in adj.get(node).cloned().into_iter().flatten() {
        if on_path.contains(edge.acquired.as_str()) {
            // A cycle: the suffix of `path` from the repeated node,
            // plus this closing edge. Canonicalize (rotate to the
            // smallest name) so each cycle is reported once.
            let from = path
                .iter()
                .position(|e| e.held == edge.acquired)
                .unwrap_or(path.len());
            let mut cycle: Vec<&LockEdge> = path[from..].to_vec();
            cycle.push(edge);
            let mut key: Vec<String> = cycle.iter().map(|e| e.held.clone()).collect();
            let rotate = key
                .iter()
                .enumerate()
                .min_by_key(|&(_, name)| name.clone())
                .map(|(i, _)| i)
                .unwrap_or(0);
            key.rotate_left(rotate);
            if reported.insert(key) {
                let mut msg = String::from("lock-order cycle: ");
                for (i, e) in cycle.iter().enumerate() {
                    if i > 0 {
                        msg.push_str(", then ");
                    }
                    msg.push_str(&format!(
                        "`{}` → `{}` in `{}` ({}:{})",
                        e.held, e.acquired, e.func, e.file, e.line
                    ));
                }
                let site = cycle[0];
                report.findings.push(Finding {
                    rule: Rule::LockOrderCycle,
                    file: site.file.clone(),
                    line: site.line,
                    message: msg,
                    allowed: None,
                    chain: cycle.iter().map(|e| e.held.clone()).collect(),
                });
            }
            continue;
        }
        path.push(edge);
        dfs(edge.acquired.as_str(), adj, path, on_path, reported, report);
        path.pop();
    }
    on_path.remove(node);
}

/// Pass A: find names declared with a `Mutex`/`RwLock` type or
/// initializer. Handles `name: Mutex<..>`, `name: pkg::Mutex<..>`,
/// `name: Mutex::new(..)`, and `let name = Mutex::new(..)`.
fn collect_lock_names(ctx: &FileCtx, out: &mut BTreeSet<String>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(word) = &toks[i].kind else {
            continue;
        };
        if word != "Mutex" && word != "RwLock" {
            continue;
        }
        // Only type position (`Mutex<`) or constructor (`Mutex::new`).
        let next = toks.get(i + 1).map(|t| &t.kind);
        let next2 = toks.get(i + 2).map(|t| &t.kind);
        let is_use = matches!(next, Some(Tok::Punct('<')))
            || (matches!(next, Some(Tok::Punct(':'))) && matches!(next2, Some(Tok::Punct(':'))));
        if !is_use {
            continue;
        }
        // Strip a leading `path::` chain.
        let mut j = i;
        while j >= 3
            && matches!(toks[j - 1].kind, Tok::Punct(':'))
            && matches!(toks[j - 2].kind, Tok::Punct(':'))
            && matches!(toks[j - 3].kind, Tok::Ident(_))
        {
            j -= 3;
        }
        // `name : Mutex` — a field declaration or struct-literal
        // initializer. Require a *single* colon.
        if j >= 2
            && matches!(toks[j - 1].kind, Tok::Punct(':'))
            && !matches!(
                j.checked_sub(2).map(|p| &toks[p].kind),
                Some(Tok::Punct(':'))
            )
        {
            if let Tok::Ident(name) = &toks[j - 2].kind {
                out.insert(name.clone());
                continue;
            }
        }
        // `let [mut] name = Mutex::new(..)`.
        if j >= 2 && matches!(toks[j - 1].kind, Tok::Punct('=')) {
            let window = j.saturating_sub(5)..j - 1;
            let mut found_let = None;
            for k in window.rev() {
                if matches!(&toks[k].kind, Tok::Ident(w) if w == "let") {
                    found_let = Some(k);
                    break;
                }
            }
            if let Some(k) = found_let {
                for t in &toks[k + 1..j - 1] {
                    if let Tok::Ident(name) = &t.kind {
                        if name != "mut" {
                            out.insert(name.clone());
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Does the expression chain starting right after a zero-arg acquire
/// call (`x.lock()` → token index of the first token past the `)`)
/// end the statement with the guard as the bound value? `.unwrap()`
/// and `.expect(..)` pass the guard through; any other continuation
/// (indexing, further methods) consumes it within the statement.
fn binds_guard(toks: &[crate::lexer::Token], mut j: usize) -> bool {
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Punct(';')) => return true,
            Some(Tok::Punct('.')) => {
                let adapter = matches!(
                    toks.get(j + 1).map(|t| &t.kind),
                    Some(Tok::Ident(w)) if w == "unwrap" || w == "expect"
                );
                if !adapter || !matches!(toks.get(j + 2).map(|t| &t.kind), Some(Tok::Punct('('))) {
                    return false;
                }
                // Skip the balanced argument list.
                let mut depth = 0i32;
                j += 2;
                while let Some(t) = toks.get(j) {
                    match t.kind {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            _ => return false,
        }
    }
}

/// Pass B over one file.
fn track_file(
    ctx: &FileCtx,
    lock_names: &BTreeSet<String>,
    effects: &EffectMap,
    edges: &mut BTreeMap<(String, String), LockEdge>,
    report: &mut Report,
) {
    let toks = &ctx.lexed.tokens;
    let mut frames: Vec<Frame> = Vec::new();
    let mut brace_depth: u32 = 0;
    let mut paren_depth: u32 = 0;
    // `fn name` seen, body `{` not yet reached.
    let mut pending_fn: Option<String> = None;
    // `let` statement in progress: (binding name if simple,
    // brace depth, paren depth at the `let`). `if let` / `while let`
    // scrutinees and destructuring patterns force temp mode (`None`).
    let mut pending_let: Option<(Option<String>, u32, u32)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            Tok::Punct('(') | Tok::Punct('[') => paren_depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                paren_depth = paren_depth.saturating_sub(1);
                while let Some(f) = frames.last() {
                    if f.expr_end_paren == Some(paren_depth) {
                        frames.pop();
                    } else {
                        break;
                    }
                }
            }
            Tok::Punct('{') => {
                if pending_fn.is_some() && paren_depth == 0 {
                    frames.push(Frame {
                        func: pending_fn.take().unwrap(),
                        depth: brace_depth,
                        expr_end_paren: None,
                        guards: Vec::new(),
                    });
                }
                brace_depth += 1;
            }
            Tok::Punct('}') => {
                brace_depth = brace_depth.saturating_sub(1);
                if let Some(f) = frames.last_mut() {
                    // Scope close releases named guards declared in the
                    // closed block and temporaries whose statement this
                    // brace ends (match / if-let scrutinees).
                    f.guards.retain(|g| {
                        if g.temp {
                            g.decl_depth < brace_depth
                        } else {
                            g.decl_depth <= brace_depth
                        }
                    });
                }
                while let Some(f) = frames.last() {
                    if f.expr_end_paren.is_none() && f.depth == brace_depth {
                        frames.pop();
                    } else {
                        break;
                    }
                }
                pending_let = None;
            }
            Tok::Punct(';') => {
                if let Some(f) = frames.last_mut() {
                    f.guards
                        .retain(|g| !(g.temp && g.decl_depth >= brace_depth));
                }
                pending_let = None;
                pending_fn = None; // `fn f();` — trait/extern decl
            }
            Tok::Punct(',') if paren_depth == 0 => {
                if let Some(f) = frames.last_mut() {
                    f.guards
                        .retain(|g| !(g.temp && g.decl_depth >= brace_depth));
                }
            }
            Tok::Punct('|') => {
                // Closure start? Only after `(`, `,`, `=`, `{`, or
                // `move`/`return`/`else` — never after an identifier,
                // literal, or `)` (bitwise or pattern ors).
                let starts_closure = match i.checked_sub(1).map(|p| &toks[p].kind) {
                    Some(Tok::Punct('('))
                    | Some(Tok::Punct(','))
                    | Some(Tok::Punct('='))
                    | Some(Tok::Punct('{')) => true,
                    Some(Tok::Ident(w)) => w == "move" || w == "return" || w == "else",
                    None => false,
                    _ => false,
                };
                if starts_closure {
                    // Skip the parameter list to the closing `|`
                    // (an empty `||` closes immediately).
                    let mut j = i + 1;
                    let mut angle = 0i32;
                    while j < toks.len() {
                        match &toks[j].kind {
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') => angle -= 1,
                            Tok::Punct('|') if angle <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    let braced = matches!(toks.get(j + 1).map(|t| &t.kind), Some(Tok::Punct('{')));
                    let func = frames
                        .last()
                        .map(|f| format!("{}::<closure>", f.func))
                        .unwrap_or_else(|| "<closure>".into());
                    frames.push(Frame {
                        func,
                        depth: brace_depth,
                        expr_end_paren: if braced {
                            None
                        } else {
                            Some(paren_depth.saturating_sub(1))
                        },
                        guards: Vec::new(),
                    });
                    i = j; // resume at the closing `|`
                }
            }
            Tok::Ident(w) if w == "fn" => {
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    pending_fn = Some(name.clone());
                }
            }
            Tok::Ident(w) if w == "let" => {
                let scrutinee = matches!(
                    i.checked_sub(1).map(|p| &toks[p].kind),
                    Some(Tok::Ident(prev)) if prev == "if" || prev == "while"
                );
                let name = if scrutinee {
                    None
                } else {
                    match toks.get(i + 1).map(|t| &t.kind) {
                        Some(Tok::Ident(n)) if n == "mut" => {
                            match toks.get(i + 2).map(|t| &t.kind) {
                                Some(Tok::Ident(n2)) => Some(n2.clone()),
                                _ => None,
                            }
                        }
                        Some(Tok::Ident(n)) => Some(n.clone()),
                        _ => None,
                    }
                };
                pending_let = Some((name, brace_depth, paren_depth));
            }
            Tok::Ident(w) if w == "drop" => {
                if let (Some(Tok::Punct('(')), Some(Tok::Ident(var)), Some(Tok::Punct(')'))) = (
                    toks.get(i + 1).map(|t| &t.kind),
                    toks.get(i + 2).map(|t| &t.kind),
                    toks.get(i + 3).map(|t| &t.kind),
                ) {
                    if let Some(f) = frames.last_mut() {
                        f.guards.retain(|g| g.var.as_deref() != Some(var.as_str()));
                    }
                }
            }
            Tok::Ident(name) => {
                let is_call = matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('(')));
                let is_method = matches!(
                    i.checked_sub(1).map(|p| &toks[p].kind),
                    Some(Tok::Punct('.'))
                );
                let zero_arg = matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Punct(')')));
                if is_call && is_method && zero_arg && ACQUIRE.contains(&name.as_str()) {
                    let recv = i.checked_sub(2).and_then(|p| match &toks[p].kind {
                        Tok::Ident(r) => Some(r.clone()),
                        _ => None,
                    });
                    if let Some(recv) = recv.filter(|r| lock_names.contains(r)) {
                        if let Some(frame) = frames.last_mut() {
                            let allow = ctx.allow_for(Rule::LockOrderCycle, line);
                            for held in &frame.guards {
                                let key = (held.lock.clone(), recv.clone());
                                edges.entry(key).or_insert_with(|| LockEdge {
                                    held: held.lock.clone(),
                                    acquired: recv.clone(),
                                    func: frame.func.clone(),
                                    file: ctx.rel.clone(),
                                    line,
                                    allowed: allow.is_some(),
                                    via: None,
                                });
                            }
                            // Named binding only when the acquisition
                            // sits at the `let`'s own nesting (so
                            // `let v = take(&mut *x.lock())` stays a
                            // temporary) *and* the binding is the
                            // guard itself — the chain ends at `;`,
                            // modulo `.unwrap()`/`.expect(..)`. In
                            // `let v = x.lock().unwrap()[0].clone();`
                            // the guard is a temporary of the
                            // statement, not `v`.
                            let named = match &pending_let {
                                Some((Some(n), ld, lp))
                                    if *ld == brace_depth
                                        && *lp == paren_depth
                                        && binds_guard(toks, i + 3) =>
                                {
                                    Some(n.clone())
                                }
                                _ => None,
                            };
                            frame.guards.push(Guard {
                                temp: named.is_none(),
                                var: named,
                                lock: recv,
                                line,
                                decl_depth: brace_depth,
                            });
                        }
                    }
                }
                if is_call && BLOCKING.contains(&name.as_str()) && (name != "join" || zero_arg) {
                    if let Some(f) = frames.last() {
                        if let Some(g) = f.guards.first() {
                            let allow = ctx.allow_for(Rule::LockAcrossBlocking, line);
                            report.findings.push(Finding {
                                rule: Rule::LockAcrossBlocking,
                                file: ctx.rel.clone(),
                                line,
                                message: format!(
                                    "blocking call `{name}` while guard on `{}` (acquired \
                                     line {}) is live, in `{}`",
                                    g.lock, g.line, f.func
                                ),
                                allowed: allow.map(str::to_string),
                                chain: Vec::new(),
                            });
                        }
                    }
                }
                // Interprocedural: does the callee's summary say it
                // blocks or takes locks? (Sites whose name is itself
                // on the denylist were handled lexically above and are
                // absent from the effect map.)
                if is_call {
                    let key = (ctx.rel.clone(), line, name.clone());
                    if let Some(eff) = effects.get(&key) {
                        if let Some(f) = frames.last() {
                            if let Some(g) = f.guards.first() {
                                if let Some(chain) = &eff.blocks {
                                    let allow = ctx.allow_for(Rule::LockAcrossBlocking, line);
                                    report.findings.push(Finding {
                                        rule: Rule::LockAcrossBlocking,
                                        file: ctx.rel.clone(),
                                        line,
                                        message: format!(
                                            "call to `{name}` may block (`{chain}`) while \
                                             guard on `{}` (acquired line {}) is live, in `{}`",
                                            g.lock, g.line, f.func
                                        ),
                                        allowed: allow.map(str::to_string),
                                        chain: chain.split(" → ").map(str::to_string).collect(),
                                    });
                                }
                            }
                            if !f.guards.is_empty() && !eff.locks.is_empty() {
                                let allow = ctx.allow_for(Rule::LockOrderCycle, line);
                                for (acquired, via) in &eff.locks {
                                    for held in &f.guards {
                                        let key = (held.lock.clone(), acquired.clone());
                                        edges.entry(key).or_insert_with(|| LockEdge {
                                            held: held.lock.clone(),
                                            acquired: acquired.clone(),
                                            func: frames.last().unwrap().func.clone(),
                                            file: ctx.rel.clone(),
                                            line,
                                            allowed: allow.is_some(),
                                            via: Some(via.clone()),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}
