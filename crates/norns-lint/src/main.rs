//! `cargo run -p norns-lint -- --check`: lint the workspace.
//!
//! Flags:
//! * `--check`        exit non-zero if any unsuppressed finding exists
//! * `--root <dir>`   workspace root (default: walk up from cwd to the
//!   first `Cargo.toml` containing `[workspace]`)
//! * `--json <file>`  where to write the machine-readable inventory
//!   (default `<root>/results/lint.json`)
//! * `--baseline <file>`  with `--check`, fail only on findings not
//!   recorded in the baseline (a missing file is an empty baseline);
//!   baselined findings still appear in the report and the JSON
//! * `--write-baseline <file>`  snapshot the current unsuppressed
//!   findings as the new baseline and exit successfully
//! * `--quiet`        suppress the text report on success

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut check = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--quiet" => quiet = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = args.next().map(PathBuf::from),
            other => {
                eprintln!("norns-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("norns-lint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };
    let root = root.canonicalize().unwrap_or(root);

    let cfg = match norns_lint::Config::workspace(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("norns-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = match norns_lint::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("norns-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let json_path = json_path.unwrap_or_else(|| root.join("results").join("lint.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("norns-lint: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    if let Some(path) = write_baseline {
        let keys: std::collections::BTreeSet<String> =
            report.unsuppressed().map(|f| f.key()).collect();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, norns_lint::baseline::render(&keys)) {
            eprintln!("norns-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "norns-lint: wrote {} baseline key(s) to {}",
            keys.len(),
            display_rel(&path, &root)
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match &baseline_path {
        Some(path) => match norns_lint::baseline::load(path) {
            Ok(keys) => Some(keys),
            Err(e) => {
                eprintln!("norns-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let failures = report.unsuppressed_count();
    let new_failures = match &baseline {
        Some(keys) => report
            .unsuppressed()
            .filter(|f| !keys.contains(&f.key()))
            .count(),
        None => failures,
    };
    if !quiet || failures > 0 {
        print!("{}", report.render_text());
        println!("inventory: {}", display_rel(&json_path, &root));
    }
    if failures > 0 {
        match &baseline {
            Some(_) => {
                println!("norns-lint: {failures} finding(s), {new_failures} new vs baseline")
            }
            None => println!("norns-lint: {failures} finding(s)"),
        }
        if check && new_failures > 0 {
            return ExitCode::from(1);
        }
    } else if !quiet {
        println!("norns-lint: clean");
    }
    ExitCode::SUCCESS
}

fn display_rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}
