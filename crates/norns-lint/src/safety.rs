//! Rule `unsafe-safety-comment`: every `unsafe` block, `unsafe fn`,
//! `unsafe impl`, and `extern "C"` declaration block must carry a
//! `// SAFETY:` comment stating the invariant that makes it sound.
//!
//! The comment is looked for (a) on any line of the statement holding
//! the `unsafe` token — rustfmt may push the token onto a continuation
//! line — or (b) in the contiguous comment block directly above that
//! statement; attribute lines (`#[cfg(...)]`) between the comment and
//! the site are skipped, matching how rustdoc comments attach.

use crate::lexer::{Tok, Token};
use crate::{FileCtx, Finding, Report, Rule, UnsafeSite};
use std::collections::{BTreeMap, BTreeSet};

/// Scan one file and append findings + inventory entries.
pub fn check(ctx: &FileCtx, report: &mut Report) {
    let toks = &ctx.lexed.tokens;
    // Comments by line: standalone (whole-line) and any (incl.
    // trailing), both needed for the two attachment forms.
    let mut standalone: BTreeMap<u32, String> = BTreeMap::new();
    let mut by_line: BTreeMap<u32, String> = BTreeMap::new();
    for c in &ctx.lexed.comments {
        for (off, text) in c.text.lines().enumerate() {
            let line = c.line + off as u32;
            by_line.entry(line).or_default().push_str(text);
            if !(c.trailing && off == 0) {
                standalone.entry(line).or_default().push_str(text);
            }
        }
        // A line comment has exactly one line; cover the empty-text
        // case (e.g. a bare `//`).
        if c.text.is_empty() {
            by_line.entry(c.line).or_default();
            if !c.trailing {
                standalone.entry(c.line).or_default();
            }
        }
    }
    // Lines whose first code token is `#` start an attribute.
    let mut first_tok_on_line: BTreeMap<u32, &Tok> = BTreeMap::new();
    let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    for t in toks {
        first_tok_on_line.entry(t.line).or_insert(&t.kind);
    }

    let has_safety = |stmt_line: u32, site_line: u32| -> bool {
        // Anywhere within the statement, including trailing comments.
        if (stmt_line..=site_line).any(|l| by_line.get(&l).is_some_and(|t| t.contains("SAFETY:"))) {
            return true;
        }
        // Walk upward from the statement start through the contiguous
        // comment block, skipping attribute lines.
        let mut line = stmt_line;
        while line > 1 {
            line -= 1;
            if let Some(text) = standalone.get(&line) {
                if code_lines.contains(&line) {
                    break; // comment trails other code: block ends
                }
                if text.contains("SAFETY:") {
                    return true;
                }
                continue;
            }
            match first_tok_on_line.get(&line) {
                Some(Tok::Punct('#')) => continue, // attribute line
                _ => break,
            }
        }
        false
    };

    let record = |stmt_line: u32, site_line: u32, kind: &'static str, report: &mut Report| {
        let ok = has_safety(stmt_line, site_line);
        let allow = ctx.allow_for(Rule::UnsafeSafetyComment, site_line);
        report.unsafe_sites.push(UnsafeSite {
            file: ctx.rel.clone(),
            line: site_line,
            kind,
            has_safety_comment: ok,
            allowed: allow.is_some(),
        });
        if !ok {
            report.findings.push(Finding {
                rule: Rule::UnsafeSafetyComment,
                file: ctx.rel.clone(),
                line: site_line,
                message: format!("{kind} without a `// SAFETY:` comment"),
                allowed: allow.map(str::to_string),
                chain: Vec::new(),
            });
        }
    };

    // The statement containing token `i` starts at the first token
    // after the previous `;`, `{`, or `}` — the line a leading comment
    // block would sit above.
    let stmt_start = |i: usize| -> u32 {
        let mut j = i;
        while j > 0 {
            match &toks[j - 1].kind {
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
                _ => j -= 1,
            }
        }
        toks[j].line
    };

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Ident(w) if w == "unsafe" => {
                let stmt = stmt_start(i);
                let kind = match toks.get(i + 1).map(|t| &t.kind) {
                    Some(Tok::Ident(n)) if n == "fn" => "unsafe fn",
                    Some(Tok::Ident(n)) if n == "impl" => "unsafe impl",
                    Some(Tok::Ident(n)) if n == "extern" => {
                        // `unsafe extern "C"` (2024 style): report once
                        // as an extern block, at the `unsafe` token.
                        i += 1;
                        "extern block"
                    }
                    _ => "unsafe block",
                };
                record(stmt, toks[i].line, kind, report);
            }
            Tok::Ident(w) if w == "extern" => {
                if let Some(Token {
                    kind: Tok::Str(abi),
                    ..
                }) = toks.get(i + 1)
                {
                    if abi == "C" {
                        record(stmt_start(i), toks[i].line, "extern block", report);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}
