//! Quickstart: run a real NORNS daemon and stage a file through it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Starts a real `urd` daemon on local AF_UNIX sockets, registers a
//! dataspace backed by a temporary directory (the "node-local burst
//! buffer"), registers a job, copies a file into the dataspace through
//! the control API — exactly what the extended Slurm does for a
//! `#NORNS stage_in` directive — polls the transfer's live progress
//! (the chunked data plane advances `bytes_moved` as chunks land),
//! and verifies the result.

use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
use norns_proto::{
    BackendKind, DataspaceDesc, Durability, JobDesc, ResourceDesc, TaskOp, TaskSpec, TaskState,
    DEFAULT_PRIORITY,
};

fn main() {
    // 1. A scratch area standing in for the PFS and one for the NVM.
    let root = std::env::temp_dir().join(format!("norns-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("lustre")).unwrap();
    std::fs::create_dir_all(root.join("pmem0")).unwrap();
    std::fs::write(root.join("lustre/input.dat"), vec![42u8; 64 << 20]).unwrap();
    println!("scratch area: {}", root.display());

    // 2. Start urd (two sockets: control 0600, user 0666). A 1 MiB
    // chunk size splits the 64 MiB stage-in into 64 chunk sub-units
    // spread across the worker pool.
    let daemon =
        UrdDaemon::spawn(DaemonConfig::in_dir(root.join("sockets")).with_chunk_size(1 << 20))
            .unwrap();
    println!("urd daemon up: {}", daemon.control_path.display());

    // 3. The scheduler side: register dataspaces + the job.
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    for (nsid, kind, dir) in [
        ("lustre", BackendKind::Lustre, "lustre"),
        ("pmdk0", BackendKind::NvmDax, "pmem0"),
    ] {
        ctl.register_dataspace(DataspaceDesc {
            nsid: nsid.into(),
            kind,
            mount: root.join(dir).to_string_lossy().into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();
    }
    ctl.register_job(JobDesc {
        job_id: 1,
        hosts: vec!["localhost".into()],
        limits: vec![("lustre".into(), 0), ("pmdk0".into(), 0)],
    })
    .unwrap();
    println!("dataspaces + job registered: {:?}", ctl.status().unwrap());

    // 4. Stage in: lustre://input.dat → pmdk0://work/input.dat.
    let task = ctl
        .submit(
            1,
            TaskSpec {
                op: TaskOp::Copy,
                priority: DEFAULT_PRIORITY,
                input: ResourceDesc::PosixPath {
                    nsid: "lustre".into(),
                    path: "input.dat".into(),
                },
                output: Some(ResourceDesc::PosixPath {
                    nsid: "pmdk0".into(),
                    path: "work/input.dat".into(),
                }),
                durability: Durability::LocalOnly,
            },
            None,
        )
        .unwrap();
    println!("stage-in task submitted: id {task}");

    // 5. The task runs asynchronously: poll it (norns_error /
    // NORNS_EPENDING semantics) and watch bytes_moved advance live.
    loop {
        let stats = ctl.query(task).unwrap();
        if stats.state.is_terminal() {
            break;
        }
        println!(
            "  in flight: {:.1} / {:.1} MiB",
            stats.bytes_moved as f64 / (1 << 20) as f64,
            stats.bytes_total as f64 / (1 << 20) as f64
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // 6. Wait asynchronously-but-blocking (norns_wait).
    let stats = ctl.wait(task, 0).unwrap();
    assert_eq!(stats.state, TaskState::Finished);
    println!(
        "stage-in finished: {} bytes in {} µs ({:.1} MiB/s)",
        stats.bytes_moved,
        stats.elapsed_usec,
        stats.bytes_moved as f64 / (1 << 20) as f64 / (stats.elapsed_usec as f64 / 1e6)
    );
    assert!(root.join("pmem0/work/input.dat").exists());
    println!("ok: data is on the node-local tier");
}
