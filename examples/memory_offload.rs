//! Listing 2 from the paper: a user process asynchronously offloads a
//! memory buffer to node-local storage through the `norns` user API,
//! keeps computing, then waits and checks the task status.
//!
//! ```text
//! cargo run --release --example memory_offload
//! ```

use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon, UserClient};
use norns_proto::{
    BackendKind, DataspaceDesc, Durability, JobDesc, ResourceDesc, TaskOp, TaskSpec, TaskState,
    DEFAULT_PRIORITY,
};

/// The paper's `buffer_offloading(void* buffer, int size)` in Rust.
fn buffer_offloading(user: &mut UserClient, buffer: &[u8]) {
    // define and submit transfer task for buffer
    let tsk = TaskSpec {
        op: TaskOp::Copy,
        priority: DEFAULT_PRIORITY,
        input: ResourceDesc::MemoryRegion {
            addr: buffer.as_ptr() as u64,
            size: buffer.len() as u64,
        },
        output: Some(ResourceDesc::PosixPath {
            nsid: "tmp0".into(),
            path: "path/to/output".into(),
        }),
        durability: Durability::LocalOnly,
    };
    let task_id = user
        .submit(tsk, Some(buffer))
        .expect("task submission failed");

    work_not_dependent_on_task();

    // wait for task to complete and check status
    let stats = user.wait(task_id, 0).expect("wait failed");
    if stats.state == TaskState::FinishedWithError {
        panic!("task failed: {:?}", stats.error);
    }
    println!(
        "offloaded {} bytes asynchronously in {} µs",
        stats.bytes_moved, stats.elapsed_usec
    );
}

fn work_not_dependent_on_task() {
    // The application keeps computing while urd moves the data.
    let mut acc = 0u64;
    for i in 0..1_000_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    println!("overlapped compute result: {acc:#x}");
}

fn main() {
    let root = std::env::temp_dir().join(format!("norns-offload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let daemon = UrdDaemon::spawn(DaemonConfig::in_dir(root.join("sockets"))).unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: "tmp0".into(),
        kind: BackendKind::Tmpfs,
        mount: root.join("tmp0").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    ctl.register_job(JobDesc {
        job_id: 7,
        hosts: vec!["localhost".into()],
        limits: vec![],
    })
    .unwrap();
    // Before registration the user socket refuses submissions —
    // §IV-B: only scheduler-registered processes may use the API.
    {
        let mut early = UserClient::connect(&daemon.user_path).unwrap();
        let spec = TaskSpec::new(
            TaskOp::Copy,
            ResourceDesc::MemoryRegion { addr: 0, size: 1 },
            Some(ResourceDesc::PosixPath {
                nsid: "pmdk0".into(),
                path: "nope".into(),
            }),
        );
        match early.submit(spec, Some(&[0u8])) {
            Err(norns_ipc::ClientError::Remote { code, .. }) => {
                println!("unregistered process rejected: {code:?}");
            }
            other => panic!("expected rejection before registration, got {other:?}"),
        }
    }
    ctl.add_process(7, std::process::id() as u64, 1000, 1000)
        .unwrap();

    let mut user = UserClient::connect(&daemon.user_path).unwrap();
    println!(
        "dataspaces visible to the process: {:?}",
        user.dataspaces()
            .unwrap()
            .iter()
            .map(|d| d.nsid.clone())
            .collect::<Vec<_>>()
    );

    // A 4 MiB "checkpoint" buffer.
    let buffer: Vec<u8> = (0..4 << 20).map(|i| (i % 251) as u8).collect();
    buffer_offloading(&mut user, &buffer);

    let written = std::fs::read(root.join("tmp0/path/to/output")).unwrap();
    assert_eq!(written, buffer);
    println!("ok: checkpoint content verified on node-local storage");
}
