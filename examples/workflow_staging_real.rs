//! A two-job `#NORNS` workflow executed against **live** daemons —
//! the real-mode counterpart of `workflow_staging` (which runs the
//! same orchestration inside the simulator).
//!
//! ```text
//! cargo run --release --example workflow_staging_real
//! ```
//!
//! Two urd daemons play two nodes on one host: `nodea` owns a
//! PFS-like `lustre0` dataspace, `nodeb` a node-local `pmdk0`. The
//! executor parses the same submission scripts the simulator accepts
//! and drives the paper's lifecycle over the wire:
//!
//! * `prep` stages its input from `lustre0` into `nodeb`'s `pmdk0` —
//!   a **remote pull** through the TCP data plane — runs its body
//!   only after stage-in completes, then pushes its result back
//!   (remote push).
//! * `post` depends on `prep` (`--workflow-prior-dependency`), stages
//!   the result locally on `nodea`, and produces the final artifact.
//!
//! The executor's event loop *blocks* in the wire's v5 `WaitAny`
//! batch-wait: the example asserts it issued zero per-task
//! `QueryTask` polls and no more `WaitAny` round-trips than there
//! were staging tasks.

use std::fs;
use std::path::Path;

use norns_flow::{FlowConfig, FlowEvent, FlowJobState, JobBody, NodeSpec, WorkflowExecutor};
use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
use norns_proto::{BackendKind, DataspaceDesc};

fn spawn_node(root: &Path, name: &str, nsid: &str, kind: BackendKind) -> UrdDaemon {
    // Port 0 ⇒ ephemeral loopback data plane; the executor reads the
    // bound address from DaemonStatus and cross-registers the peers.
    let daemon = UrdDaemon::spawn(
        DaemonConfig::in_dir(root.join(name).join("sockets"))
            .with_chunk_size(1 << 20)
            .with_data_addr("127.0.0.1:0"),
    )
    .unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: nsid.into(),
        kind,
        mount: root.join(name).join("ds").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    daemon
}

fn main() {
    let root = std::env::temp_dir().join(format!("norns-workflow-real-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();

    // 1. Two daemons — "two nodes" on one host.
    let daemon_a = spawn_node(&root, "nodea", "lustre0", BackendKind::Lustre);
    let daemon_b = spawn_node(&root, "nodeb", "pmdk0", BackendKind::NvmDax);
    let mount_a = root.join("nodea/ds");
    let mount_b = root.join("nodeb/ds");
    println!("nodea data plane: {}", daemon_a.data_addr().unwrap());
    println!("nodeb data plane: {}", daemon_b.data_addr().unwrap());

    // 2. The workflow input: an 8 MiB mesh on the shared tier (8 chunk
    //    sub-units at the 1 MiB chunk size once it crosses the wire).
    fs::create_dir_all(mount_a.join("case")).unwrap();
    let mesh: Vec<u8> = (0..8 << 20).map(|i: usize| (i % 251) as u8).collect();
    fs::write(mount_a.join("case/mesh.dat"), &mesh).unwrap();

    // 3. The executor drives both daemons through their control
    //    sockets; scripts are the same text the simulator accepts.
    let mut exec = WorkflowExecutor::new(FlowConfig::default());
    exec.add_node(NodeSpec {
        name: "nodea".into(),
        control_path: daemon_a.control_path.clone(),
        dataspaces: vec!["lustre0".into()],
    })
    .unwrap();
    exec.add_node(NodeSpec {
        name: "nodeb".into(),
        control_path: daemon_b.control_path.clone(),
        dataspaces: vec!["pmdk0".into()],
    })
    .unwrap();

    // `prep` runs on node 1 (nodeb): its lustre0 legs are remote.
    let mesh_for_body = mesh.clone();
    let body_mount = mount_b.clone();
    let prep = exec
        .submit(
            "#!/bin/bash\n\
             #SBATCH --job-name=prep\n\
             #SBATCH --nodes=2\n\
             #SBATCH --workflow-start\n\
             #NORNS stage_in lustre0://case/mesh.dat pmdk0://job/mesh.dat node:1\n\
             #NORNS stage_out pmdk0://job/out.dat lustre0://results/prep.dat node:1\n",
            JobBody::Run(Box::new(move || {
                // Gated on stage-in: the pulled mesh must already be
                // local and byte-exact when the body runs.
                let staged =
                    fs::read(body_mount.join("job/mesh.dat")).map_err(|e| e.to_string())?;
                assert_eq!(staged, mesh_for_body, "stage-in gated the body");
                let mut out = staged;
                out.reverse(); // the "computation"
                fs::write(body_mount.join("job/out.dat"), out).map_err(|e| e.to_string())
            })),
        )
        .unwrap();

    // `post` runs on nodea: local staging of prep's pushed result.
    let body_mount = mount_a.clone();
    let post = exec
        .submit(
            "#!/bin/bash\n\
             #SBATCH --job-name=post\n\
             #SBATCH --workflow-end\n\
             #SBATCH --workflow-prior-dependency=prep\n\
             #NORNS stage_in lustre0://results/prep.dat lustre0://post/in.dat\n\
             #NORNS stage_out lustre0://post/final.dat lustre0://results/final.dat\n",
            JobBody::Run(Box::new(move || {
                let data = fs::read(body_mount.join("post/in.dat")).map_err(|e| e.to_string())?;
                let mut fixed = data;
                fixed.reverse(); // undo prep's reversal
                fs::write(body_mount.join("post/final.dat"), fixed).map_err(|e| e.to_string())
            })),
        )
        .unwrap();

    // 4. Run the workflow to quiescence.
    let outcomes = exec.run().unwrap();
    for event in exec.events() {
        println!("  {event:?}");
    }
    assert_eq!(
        outcomes,
        vec![
            (prep, FlowJobState::Completed),
            (post, FlowJobState::Completed)
        ]
    );

    // The dependency gate held: `post` started only after `prep`
    // completed.
    let order: Vec<&FlowEvent> = exec
        .events()
        .iter()
        .filter(|e| matches!(e, FlowEvent::Completed { .. } | FlowEvent::Started { .. }))
        .collect();
    let prep_done = order
        .iter()
        .position(|e| matches!(e, FlowEvent::Completed { job, .. } if *job == prep))
        .unwrap();
    let post_started = order
        .iter()
        .position(|e| matches!(e, FlowEvent::Started { job } if *job == post))
        .unwrap();
    assert!(prep_done < post_started, "workflow dependency gate held");

    // Data integrity end to end: pull → compute → push → local staging
    // → final artifact equals the original mesh.
    assert_eq!(fs::read(mount_b.join("job/mesh.dat")).unwrap(), mesh);
    assert_eq!(
        fs::read(mount_a.join("results/final.dat")).unwrap(),
        mesh,
        "double reversal restored the mesh"
    );

    // Stage-out *freed* the staged data: prep's local out.dat was
    // released after its push (copy + Remove), post's final.dat moved
    // (rename) — the paper's stage-out returns burst-buffer capacity.
    assert!(
        !mount_b.join("job/out.dat").exists(),
        "pushed stage-out source released"
    );
    assert!(
        !mount_a.join("post/final.dat").exists(),
        "local stage-out is a move"
    );

    // 5. The batch-wait guarantee: 5 wire tasks (4 staging legs plus
    //    the Remove releasing prep's pushed source), zero per-task
    //    polls and at most one parked WaitAny round-trip per task —
    //    where a 2 ms poller would have issued hundreds of QueryTask
    //    round-trips.
    let wire_tasks = 5;
    println!(
        "wire tasks: {wire_tasks}, WaitAny round-trips: {}, QueryTask round-trips: {}",
        exec.wait_round_trips(),
        exec.query_round_trips()
    );
    assert_eq!(exec.query_round_trips(), 0, "no per-task polling");
    assert!(
        exec.wait_round_trips() <= wire_tasks,
        "blocked in WaitAny: {} round-trips for {wire_tasks} tasks",
        exec.wait_round_trips()
    );

    println!(
        "real-mode workflow complete: script → executor → two daemons, one remote leg each way"
    );
    drop(daemon_a);
    drop(daemon_b);
    let _ = fs::remove_dir_all(&root);
}
