//! Priority, cancellation and admission control on a live daemon.
//!
//! ```text
//! cargo run --release --example priority_staging
//! ```
//!
//! Starts a real `urd` with the weighted-priority arbitration policy
//! and a single worker, floods it with low-priority transfers, then:
//! 1. submits a high-priority task last and watches it jump the queue,
//! 2. cancels one of the still-pending low-priority tasks,
//! 3. shrinks the queue bound to show the EAGAIN-style `Busy` answer.

use norns_ipc::{CtlClient, DaemonConfig, PolicyKind, UrdDaemon};
use norns_proto::{
    BackendKind, DataspaceDesc, ErrorCode, ResourceDesc, TaskOp, TaskSpec, TaskState,
};

fn mem_task(path: &str, size: usize, priority: u8) -> (TaskSpec, Vec<u8>) {
    let spec = TaskSpec::new(
        TaskOp::Copy,
        ResourceDesc::MemoryRegion {
            addr: 0,
            size: size as u64,
        },
        Some(ResourceDesc::PosixPath {
            nsid: "tmp0".into(),
            path: path.into(),
        }),
    )
    .with_priority(priority);
    (spec, vec![0xc3u8; size])
}

fn main() {
    let root = std::env::temp_dir().join(format!("norns-priority-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let daemon = UrdDaemon::spawn({
        let mut cfg =
            DaemonConfig::in_dir(root.join("sockets")).with_policy(PolicyKind::WeightedPriority);
        cfg.workers = 1;
        cfg
    })
    .expect("daemon spawn");
    println!("urd up with policy weighted-priority, 1 worker");

    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: "tmp0".into(),
        kind: BackendKind::Tmpfs,
        mount: root.join("tmp0").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();

    // Occupy the worker with a path→path copy of a 64 MiB file (long
    // enough that the whole backlog below forms while it runs), then
    // build a low-priority backlog.
    std::fs::write(root.join("tmp0/blocker-src"), vec![0x5au8; 64 << 20]).unwrap();
    let blocker = ctl
        .submit(
            1,
            TaskSpec::new(
                TaskOp::Copy,
                ResourceDesc::PosixPath {
                    nsid: "tmp0".into(),
                    path: "blocker-src".into(),
                },
                Some(ResourceDesc::PosixPath {
                    nsid: "tmp0".into(),
                    path: "blocker-dst".into(),
                }),
            ),
            None,
        )
        .unwrap();
    let mut low = Vec::new();
    for i in 0..6 {
        let (spec, payload) = mem_task(&format!("low{i}"), 64 << 10, 10);
        low.push(ctl.submit(1, spec, Some(&payload)).unwrap());
    }
    // The latecomer with priority 250 must overtake the whole backlog.
    let (spec, payload) = mem_task("urgent", 64 << 10, 250);
    let urgent = ctl.submit(1, spec, Some(&payload)).unwrap();

    // Cancel one still-pending low-priority task.
    let victim = *low.last().unwrap();
    match ctl.cancel(victim) {
        Ok(()) => {
            let stats = ctl.wait(victim, 0).unwrap();
            println!("cancelled task {victim}: state {:?}", stats.state);
            assert_eq!(stats.state, TaskState::Cancelled);
        }
        Err(e) => println!("cancel raced with the worker ({e}) — task already taken"),
    }

    let urgent_stats = ctl.wait(urgent, 0).unwrap();
    assert_eq!(urgent_stats.state, TaskState::Finished);
    ctl.wait(blocker, 0).unwrap();
    let mut low_waits = Vec::new();
    for id in &low {
        let stats = ctl.wait(*id, 0).unwrap();
        if stats.state == TaskState::Finished {
            low_waits.push(stats.wait_usec);
        }
    }
    println!(
        "urgent (submitted last, prio 250) waited {} µs; surviving low-prio tasks waited {:?} µs",
        urgent_stats.wait_usec, low_waits
    );
    assert!(
        low_waits.iter().all(|&w| urgent_stats.wait_usec <= w),
        "priority inversion!"
    );

    // Admission control: a daemon with a 2-deep queue answers Busy.
    drop(daemon);
    let daemon = UrdDaemon::spawn({
        let mut cfg = DaemonConfig::in_dir(root.join("sockets2"));
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        cfg
    })
    .unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: "tmp0".into(),
        kind: BackendKind::Tmpfs,
        mount: root.join("tmp0b").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    // Pin the worker so the flood reliably backs up.
    std::fs::write(root.join("tmp0b/blocker-src"), vec![0x77u8; 64 << 20]).unwrap();
    ctl.submit(
        1,
        TaskSpec::new(
            TaskOp::Copy,
            ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: "blocker-src".into(),
            },
            Some(ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: "blocker-dst".into(),
            }),
        ),
        None,
    )
    .unwrap();
    let mut busy = 0;
    for i in 0..12 {
        let (spec, payload) = mem_task(&format!("flood{i}"), 4 << 20, 100);
        match ctl.submit(1, spec, Some(&payload)) {
            Ok(_) => {}
            Err(norns_ipc::ClientError::Remote {
                code: ErrorCode::Busy,
                ..
            }) => busy += 1,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    println!("flooded a 2-deep queue with 12 tasks: {busy} Busy rejections");
    assert!(busy > 0);
    // A copy whose destination nests inside its source would recurse
    // forever; the daemon must refuse it at submission.
    match ctl.submit(
        1,
        TaskSpec::new(
            TaskOp::Copy,
            ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: "d".into(),
            },
            Some(ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: "d/sub".into(),
            }),
        ),
        None,
    ) {
        Err(norns_ipc::ClientError::Remote {
            code: ErrorCode::BadArgs,
            ..
        }) => println!("recursive copy (dst inside src) rejected"),
        other => panic!("expected BadArgs for dst-inside-src, got {other:?}"),
    }
    println!("ok: priority honored, cancel works, bounded queue pushes back");
    let _ = std::fs::remove_dir_all(&root);
}
