//! Why the paper exists, in one run: the same IOR workload against the
//! shared PFS under production interference vs node-local NVM.
//!
//! ```text
//! cargo run --release --example cluster_contention
//! ```

use simcore::{Sim, SimDuration, SimTime};
use simstore::IoDir;
use workloads::ior::{self, IorConfig};
use workloads::{register_tiers, BenchWorld};

fn run(tier: &str, nodes: usize, seed: u64) -> f64 {
    let tb = cluster::nextgenio(nodes);
    let mut sim = Sim::new(BenchWorld::new(tb.world), seed);
    register_tiers(&mut sim);
    cluster::drive_interference(
        &mut sim,
        SimDuration::from_secs(600),
        SimTime::from_secs(36_000),
    );
    let cfg = IorConfig {
        tier: tier.into(),
        procs_per_node: 48,
        bytes_per_proc: 256 << 20,
        dir: IoDir::Write,
        stripe: None,
    };
    let all: Vec<usize> = (0..nodes).collect();
    ior::run(&mut sim, &all, &cfg).bandwidth() / 1e9
}

fn main() {
    println!("aggregated IOR write bandwidth on the NEXTGenIO model (GB/s):\n");
    println!(
        "{:>6}  {:>14}  {:>14}  {:>7}",
        "nodes", "lustre (GB/s)", "dcpmm (GB/s)", "ratio"
    );
    for nodes in [1usize, 4, 16, 32] {
        // Sample lustre across several interference regimes.
        let lustre: Vec<f64> = (0..5).map(|s| run("lustre", nodes, 100 + s)).collect();
        let lustre_med = {
            let mut v = lustre.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let dcpmm = run("pmdk0", nodes, 1);
        println!(
            "{:>6}  {:>14.2}  {:>14.2}  {:>6.1}x",
            nodes,
            lustre_med,
            dcpmm,
            dcpmm / lustre_med
        );
    }
    println!("\nnode-local storage scales with the allocation; the shared PFS does not.");
    println!("this is Fig. 8 of the paper in miniature — run `cargo run -p norns-bench");
    println!("--release --bin fig8` for the full sweep.");
}
