//! The Table V OpenFOAM pipeline end to end, scheduler-driven:
//! serial decompose on one node, `persist store`, scatter
//! redistribution to 8 solver nodes, parallel solver, stage-out.
//!
//! ```text
//! cargo run --release --example openfoam_pipeline
//! ```

use norns::{HasNorns, NornsWorld, TaskCompletion};
use simcore::{CompletedFlow, FluidModel, FluidSystem, Sim, SimDuration, SimTime};
use simstore::{Cred, Mode};
use slurm_sim::{submit_script, HasSlurm, JobBody, JobEvent, SchedConfig, Slurmctld};

const RANKS: usize = 64;
const MESH_BYTES: u64 = 8_000_000_000;

struct Model {
    world: NornsWorld,
    ctld: Slurmctld,
}

impl FluidModel for Model {
    fn fluid_mut(&mut self) -> &mut FluidSystem {
        &mut self.world.fluid
    }
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
        norns::handle_flow_complete(sim, done);
    }
}

impl HasNorns for Model {
    fn norns_mut(&mut self) -> &mut NornsWorld {
        &mut self.world
    }
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
        slurm_sim::handle_task_complete(sim, &completion);
    }
}

impl HasSlurm for Model {
    fn ctld_mut(&mut self) -> &mut Slurmctld {
        &mut self.ctld
    }
    fn on_job_event(sim: &mut Sim<Self>, event: JobEvent) {
        let now = sim.now().as_secs_f64();
        let name = sim
            .model
            .ctld
            .job(event.job())
            .map(|j| j.script.name.clone())
            .unwrap_or_default();
        println!("  [{now:>8.1}s] {name}: {event:?}");
        // decompose writes the processor directories when it "runs".
        if matches!(event, JobEvent::Started { .. }) && name == "decompose" {
            let node = sim.model.ctld.job(event.job()).unwrap().nodes[0];
            let t = sim.model.world.storage.resolve("pmdk0").unwrap();
            let per = MESH_BYTES / RANKS as u64;
            for r in 0..RANKS {
                sim.model
                    .world
                    .storage
                    .ns_mut(t, Some(node))
                    .write_file(
                        &format!("case/processor{r}/polyMesh"),
                        per,
                        &Cred::new(1000, 1000),
                        Mode(0o644),
                    )
                    .unwrap();
            }
        }
    }
}

fn main() {
    let tb = cluster::nextgenio_quiet(8);
    let nodes = tb.world.nodes();
    let mut sim = Sim::new(
        Model {
            world: tb.world,
            ctld: Slurmctld::new(nodes, SchedConfig::default()),
        },
        5,
    );
    workloads::register_tiers(&mut sim);
    let cred = Cred::new(1000, 1000);

    println!("OpenFOAM pipeline on 8 simulated NEXTGenIO nodes:");
    submit_script(
        &mut sim,
        "#SBATCH --job-name=decompose\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://case alice\n",
        cred.clone(),
        JobBody::Fixed(SimDuration::from_secs(120)),
    )
    .unwrap();
    submit_script(
        &mut sim,
        "#SBATCH --job-name=solver\n#SBATCH --nodes=8\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=decompose\n\
         #NORNS stage_in pmdk0://case pmdk0://case scatter\n\
         #NORNS stage_out pmdk0://case lustre://runs/aircraft gather\n",
        cred,
        JobBody::Fixed(SimDuration::from_secs(60)),
    )
    .unwrap();
    sim.run_until(SimTime::from_secs(3600));

    // Check the redistribution: every solver node holds its share.
    let t = sim.model.world.storage.resolve("lustre").unwrap();
    let archived = sim
        .model
        .world
        .storage
        .ns(t, None)
        .list("runs/aircraft", &Cred::root());
    println!(
        "\nprocessor directories archived on Lustre: {}",
        archived.map(|v| v.len()).unwrap_or(0)
    );
}
