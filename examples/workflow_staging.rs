//! A data-driven workflow on the extended scheduler (simulated
//! NEXTGenIO): producer → consumer with `persist store`, data
//! affinity, and stage-out to Lustre — the full §III machinery.
//!
//! ```text
//! cargo run --release --example workflow_staging
//! ```

use norns::{HasNorns, NornsWorld, TaskCompletion};
use simcore::{CompletedFlow, FluidModel, FluidSystem, Sim, SimDuration, SimTime};
use simstore::{Cred, Mode};
use slurm_sim::{submit_script, HasSlurm, JobBody, JobEvent, SchedConfig, Slurmctld};

struct Model {
    world: NornsWorld,
    ctld: Slurmctld,
    log: Vec<(SimTime, String)>,
}

impl FluidModel for Model {
    fn fluid_mut(&mut self) -> &mut FluidSystem {
        &mut self.world.fluid
    }
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
        norns::handle_flow_complete(sim, done);
    }
}

impl HasNorns for Model {
    fn norns_mut(&mut self) -> &mut NornsWorld {
        &mut self.world
    }
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
        slurm_sim::handle_task_complete(sim, &completion);
    }
}

impl HasSlurm for Model {
    fn ctld_mut(&mut self) -> &mut Slurmctld {
        &mut self.ctld
    }
    fn on_job_event(sim: &mut Sim<Self>, event: JobEvent) {
        let now = sim.now();
        let name = sim
            .model
            .ctld
            .job(event.job())
            .map(|j| j.script.name.clone())
            .unwrap_or_default();
        let line = match &event {
            JobEvent::Submitted { .. } => format!("{name}: submitted"),
            JobEvent::StageInStarted { nodes, .. } => {
                format!("{name}: stage-in on nodes {nodes:?}")
            }
            JobEvent::Started { nodes, .. } => format!("{name}: compute on nodes {nodes:?}"),
            JobEvent::StageOutStarted { .. } => format!("{name}: stage-out"),
            JobEvent::Completed { leftovers, .. } => {
                format!("{name}: completed (leftover tracked data: {leftovers:?})")
            }
            JobEvent::Failed { reason, .. } => format!("{name}: FAILED ({reason})"),
            JobEvent::Cancelled { reason, .. } => format!("{name}: cancelled ({reason})"),
        };
        // The producer "application" writes its output when it starts.
        if matches!(event, JobEvent::Started { .. }) && name == "producer" {
            let nodes = sim.model.ctld.job(event.job()).unwrap().nodes.clone();
            let t = sim.model.world.storage.resolve("pmdk0").unwrap();
            sim.model
                .world
                .storage
                .ns_mut(t, Some(nodes[0]))
                .write_file(
                    "wf/out.bin",
                    20_000_000_000,
                    &Cred::new(1000, 1000),
                    Mode(0o644),
                )
                .unwrap();
        }
        sim.model.log.push((now, line));
    }
}

fn main() {
    let tb = cluster::nextgenio_quiet(4);
    let nodes = tb.world.nodes();
    let mut sim = Sim::new(
        Model {
            world: tb.world,
            ctld: Slurmctld::new(nodes, SchedConfig::default()),
            log: vec![],
        },
        1,
    );
    workloads::register_tiers(&mut sim);
    let cred = Cred::new(1000, 1000);

    // Producer: 1 node, keeps its 20 GB output on NVM for the workflow.
    submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://wf alice\n",
        cred.clone(),
        JobBody::Fixed(SimDuration::from_secs(60)),
    )
    .unwrap();

    // Consumer: 2 nodes; node reuse + node-to-node pull for the rest;
    // final results staged out to Lustre.
    submit_script(
        &mut sim,
        "#SBATCH --job-name=consumer\n#SBATCH --nodes=2\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=producer\n\
         #NORNS stage_in pmdk0://wf pmdk0://wf all\n\
         #NORNS stage_out pmdk0://wf lustre://archive/run1 gather\n",
        cred,
        JobBody::Fixed(SimDuration::from_secs(30)),
    )
    .unwrap();

    sim.run();

    println!("workflow timeline:");
    for (t, line) in &sim.model.log {
        println!("  [{:>8.3}s] {line}", t.as_secs_f64());
    }
    let t = sim.model.world.storage.resolve("lustre").unwrap();
    let archived = sim
        .model
        .world
        .storage
        .ns(t, None)
        .exists("archive/run1/out.bin");
    println!("result archived on Lustre: {archived}");
    assert!(archived);
}
