//! Overlap proof: asynchronous staging lets one job's data movement
//! proceed while another job computes — the paper's §III headline —
//! demonstrated against **live** daemons.
//!
//! ```text
//! cargo run --release --example workflow_overlap
//! ```
//!
//! Two urd daemons play two nodes; two **independent** jobs are
//! submitted. `alpha` (on node 0) stages in and then computes for
//! 500 ms; `beta` (on node 1) stages in, runs instantly and stages
//! out. The executor's DAG engine admits both at once: the event log
//! must show `StageInStarted(beta)` *before* `Completed(alpha)` —
//! and in fact `beta`'s whole lifecycle finishes while `alpha` is
//! still computing. The old sequential run loop ran `alpha` to its
//! terminal state before `beta` moved a byte.

use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

use norns_flow::{FlowConfig, FlowEvent, FlowJobState, JobBody, NodeSpec, WorkflowExecutor};
use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
use norns_proto::{BackendKind, DataspaceDesc};

fn spawn_node(root: &Path, name: &str, nsid: &str) -> UrdDaemon {
    let daemon = UrdDaemon::spawn(
        DaemonConfig::in_dir(root.join(name).join("sockets")).with_data_addr("127.0.0.1:0"),
    )
    .unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: nsid.into(),
        kind: BackendKind::NvmDax,
        mount: root.join(name).join("ds").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    daemon
}

fn main() {
    let root = std::env::temp_dir().join(format!("norns-overlap-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();

    let daemon_a = spawn_node(&root, "node0", "dsa");
    let daemon_b = spawn_node(&root, "node1", "dsb");
    fs::write(root.join("node0/ds/in.dat"), b"alpha input").unwrap();
    fs::write(root.join("node1/ds/in.dat"), b"beta input").unwrap();

    let mut exec = WorkflowExecutor::new(FlowConfig {
        heartbeat: Duration::from_millis(10),
        ..FlowConfig::default()
    });
    exec.add_node(NodeSpec {
        name: "node0".into(),
        control_path: daemon_a.control_path.clone(),
        dataspaces: vec!["dsa".into()],
    })
    .unwrap();
    exec.add_node(NodeSpec {
        name: "node1".into(),
        control_path: daemon_b.control_path.clone(),
        dataspaces: vec!["dsb".into()],
    })
    .unwrap();

    let alpha = exec
        .submit(
            "#SBATCH --job-name=alpha\n\
             #NORNS stage_in dsa://in.dat dsa://work/in.dat\n",
            JobBody::Sleep(Duration::from_millis(500)),
        )
        .unwrap();
    let beta = exec
        .submit(
            "#SBATCH --job-name=beta\n\
             #NORNS stage_in dsb://in.dat dsb://work/in.dat\n\
             #NORNS stage_out dsb://work/in.dat dsb://results/out.dat\n",
            JobBody::Sleep(Duration::ZERO),
        )
        .unwrap();

    let started = Instant::now();
    let outcomes = exec.run().unwrap();
    let wall = started.elapsed();
    for event in exec.events() {
        println!("  {event:?}");
    }
    assert_eq!(
        outcomes,
        vec![
            (alpha, FlowJobState::Completed),
            (beta, FlowJobState::Completed)
        ]
    );

    // The proof: beta's stage-in began — and its whole lifecycle
    // finished — before alpha's terminal event.
    let pos = |pred: &dyn Fn(&FlowEvent) -> bool| exec.events().iter().position(pred).unwrap();
    let beta_stage_in =
        pos(&|e| matches!(e, FlowEvent::StageInStarted { job, .. } if *job == beta));
    let beta_done = pos(&|e| matches!(e, FlowEvent::Completed { job, .. } if *job == beta));
    let alpha_done = pos(&|e| matches!(e, FlowEvent::Completed { job, .. } if *job == alpha));
    assert!(
        beta_stage_in < alpha_done,
        "beta's staging must start while alpha is still in flight"
    );
    assert!(
        beta_done < alpha_done,
        "beta must complete while alpha computes"
    );
    // And the wall clock agrees: the two jobs' work overlapped rather
    // than being serialized (alpha alone sleeps 500 ms).
    assert!(
        wall < Duration::from_millis(1500),
        "overlapped workflow took {wall:?}; the jobs were serialized"
    );
    assert_eq!(
        fs::read(root.join("node1/ds/results/out.dat")).unwrap(),
        b"beta input"
    );

    println!(
        "overlap proven: beta staged, ran and staged out while alpha computed ({wall:?} wall)"
    );
    drop(daemon_a);
    drop(daemon_b);
    let _ = fs::remove_dir_all(&root);
}
