//! Remote staging: two real NORNS daemons move a file between their
//! dataspaces over the TCP data plane.
//!
//! ```text
//! cargo run --release --example remote_staging
//! ```
//!
//! Simulates the paper's two-node scenario on one host: daemon A owns
//! a "PFS-like" dataspace, daemon B a "node-local NVM" dataspace. The
//! daemons learn each other through their peer registries
//! (`RegisterPeer`: `RemotePath.host` → data-plane address), then a
//! job on A **pushes** a multi-chunk file into B's dataspace and
//! **pulls** it back — both directions streamed in chunk sub-units
//! with live `query()` progress, exactly like local transfers.

use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
use norns_proto::{
    BackendKind, DataspaceDesc, Durability, JobDesc, ResourceDesc, TaskOp, TaskSpec, TaskState,
    DEFAULT_PRIORITY,
};

fn spawn_node(root: &std::path::Path, name: &str, nsid: &str) -> (UrdDaemon, CtlClient) {
    // `127.0.0.1:0` binds the data plane to an ephemeral loopback
    // port. The data plane is unauthenticated: on a real cluster, bind
    // it to the compute interconnect, never a user-reachable network.
    let daemon = UrdDaemon::spawn(
        DaemonConfig::in_dir(root.join(name).join("sockets"))
            .with_chunk_size(1 << 20)
            .with_data_addr("127.0.0.1:0"),
    )
    .unwrap();
    let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(DataspaceDesc {
        nsid: nsid.into(),
        kind: if name == "nodea" {
            BackendKind::Lustre
        } else {
            BackendKind::NvmDax
        },
        mount: root.join(name).join("ds").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    ctl.register_job(JobDesc {
        job_id: 1,
        hosts: vec!["nodea".into(), "nodeb".into()],
        limits: vec![],
    })
    .unwrap();
    (daemon, ctl)
}

fn stage(ctl: &mut CtlClient, what: &str, input: ResourceDesc, output: ResourceDesc) -> u64 {
    let task = ctl
        .submit(
            1,
            TaskSpec {
                op: TaskOp::Copy,
                priority: DEFAULT_PRIORITY,
                input,
                output: Some(output),
                durability: Durability::LocalOnly,
            },
            None,
        )
        .unwrap();
    // Poll live progress (the paper's NORNS_EPENDING semantics) while
    // the chunks travel over TCP.
    let mut last_pct = u64::MAX;
    loop {
        let stats = ctl.query(task).unwrap();
        if let Some(pct) = (stats.bytes_moved * 100).checked_div(stats.bytes_total) {
            if pct / 20 != last_pct / 20 || stats.state.is_terminal() {
                println!(
                    "  {what}: {} / {} bytes ({pct}%)",
                    stats.bytes_moved, stats.bytes_total
                );
                last_pct = pct;
            }
        }
        if stats.state.is_terminal() {
            assert_eq!(stats.state, TaskState::Finished, "{what} failed");
            return stats.bytes_moved;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

fn main() {
    let root = std::env::temp_dir().join(format!("norns-remote-staging-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // 1. Two daemons — "two nodes" on one host.
    let (daemon_a, mut ctl_a) = spawn_node(&root, "nodea", "lustre0");
    let (daemon_b, mut ctl_b) = spawn_node(&root, "nodeb", "pmdk0");
    println!("nodea data plane: {}", daemon_a.data_addr().unwrap());
    println!("nodeb data plane: {}", daemon_b.data_addr().unwrap());

    // 2. Peer registries: host name → data-plane address.
    ctl_a
        .register_peer("nodeb", &daemon_b.data_addr().unwrap().to_string())
        .unwrap();
    ctl_b
        .register_peer("nodea", &daemon_a.data_addr().unwrap().to_string())
        .unwrap();
    println!("status(nodea): {:?}", ctl_a.status().unwrap());

    // 3. A 24 MiB input (24 chunk sub-units at the 1 MiB chunk size).
    let payload: Vec<u8> = (0..24 << 20).map(|i: usize| (i % 251) as u8).collect();
    std::fs::write(root.join("nodea/ds/mesh.dat"), &payload).unwrap();

    // 4. Push: nodea's lustre0 → nodeb's pmdk0 (stage-in for a job
    //    about to run on node B).
    let moved = stage(
        &mut ctl_a,
        "push nodea:lustre0/mesh.dat → nodeb:pmdk0/job1/mesh.dat",
        ResourceDesc::PosixPath {
            nsid: "lustre0".into(),
            path: "mesh.dat".into(),
        },
        ResourceDesc::RemotePath {
            host: "nodeb".into(),
            nsid: "pmdk0".into(),
            path: "job1/mesh.dat".into(),
        },
    );
    assert_eq!(moved, payload.len() as u64);
    assert_eq!(
        std::fs::read(root.join("nodeb/ds/job1/mesh.dat")).unwrap(),
        payload
    );

    // 5. Pull: nodeb's pmdk0 → nodea's lustre0 (stage-out of results).
    let moved = stage(
        &mut ctl_a,
        "pull nodeb:pmdk0/job1/mesh.dat → nodea:lustre0/out/mesh.dat",
        ResourceDesc::RemotePath {
            host: "nodeb".into(),
            nsid: "pmdk0".into(),
            path: "job1/mesh.dat".into(),
        },
        ResourceDesc::PosixPath {
            nsid: "lustre0".into(),
            path: "out/mesh.dat".into(),
        },
    );
    assert_eq!(moved, payload.len() as u64);
    assert_eq!(
        std::fs::read(root.join("nodea/ds/out/mesh.dat")).unwrap(),
        payload
    );

    println!("round-trip complete: push + pull byte-exact in both directions");
    let _ = std::fs::remove_dir_all(&root);
}
