//! Workspace root crate for the NORNS reproduction.
//!
//! This crate only re-exports the workspace members so that the
//! cross-crate integration tests under `tests/` and the runnable
//! examples under `examples/` have a single dependency root.
//!
//! See `README.md` at the workspace root for the crate map, build and
//! test instructions, and the shared-scheduler architecture.

pub use cluster;
pub use norns;
pub use norns_ipc;
pub use norns_proto;
pub use norns_sched;
pub use simcore;
pub use simnet;
pub use simstore;
pub use slurm_sim;
pub use workloads;
