//! Workspace root crate for the NORNS reproduction.
//!
//! This crate only re-exports the workspace members so that the
//! cross-crate integration tests under `tests/` and the runnable
//! examples under `examples/` have a single dependency root.
//!
//! See `README.md` for an overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use cluster;
pub use norns;
pub use norns_ipc;
pub use norns_proto;
pub use simcore;
pub use simnet;
pub use simstore;
pub use slurm_sim;
pub use workloads;
