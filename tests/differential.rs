//! Sim-vs-real differential test: the same job set, submitted to the
//! simulated urd's `norns::TaskQueue` and to the real `norns_ipc`
//! engine, must dispatch in the *same order* under every shared
//! arbitration policy. This is the contract PR 1 extracted the
//! `norns-sched` crate for — if the two worlds ever disagree, a
//! workflow tuned in the simulator would behave differently on live
//! daemons.
//!
//! Ordering is observed without races: the real engine runs **one**
//! worker pinned by a plug task while the whole set is submitted, so
//! every arbitration decision sees the full pending set, exactly like
//! the sim-side dispatch loop. Dispatch order is then recovered from
//! `wait_usec` (submission → first worker touch): with one worker,
//! consecutive dispatches are separated by a whole multi-MiB copy,
//! orders of magnitude above the submission loop's skew.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use norns::{JobId, TaskId, TaskQueue};
use norns_ipc::{Engine, EngineConfig};
use norns_proto::{BackendKind, DataspaceDesc, ResourceDesc, TaskOp, TaskSpec, TaskState};
use norns_sched::{ArbitrationPolicy, Fcfs, JobFairShare, ShortestFirst};
use simcore::SimTime;

/// (job, bytes) submission order shared by both worlds. Sizes are
/// distinct so SJF has a unique order, and jobs interleave so
/// fair-share differs from FCFS.
const WORKLOAD: [(u64, u64); 8] = [
    (1, 24 << 20),
    (1, 18 << 20),
    (2, 22 << 20),
    (1, 28 << 20),
    (3, 16 << 20),
    (2, 26 << 20),
    (3, 20 << 20),
    (2, 30 << 20),
];

/// The plug occupying the real engine's single worker while the set is
/// submitted; mirrored in the sim so policies with history (fair
/// share) see identical service sequences.
const PLUG_JOB: u64 = 0;
const PLUG_BYTES: u64 = 96 << 20;

type SimPolicy = Box<dyn ArbitrationPolicy<JobId, TaskId, SimTime>>;
type IpcPolicy = Box<dyn ArbitrationPolicy<u64, u64, u64>>;

/// Dispatch order of the workload on the simulated queue (task index
/// per WORKLOAD position).
fn sim_order(policy: SimPolicy) -> Vec<usize> {
    let mut q = TaskQueue::new(1, policy);
    // Plug: enqueued and dispatched before the rest exists, exactly
    // like the real engine's idle worker grabs it.
    q.enqueue(TaskId(999), JobId(PLUG_JOB), PLUG_BYTES, SimTime::ZERO);
    assert_eq!(q.dispatch().unwrap().task, TaskId(999));
    for (i, (job, bytes)) in WORKLOAD.iter().enumerate() {
        q.enqueue(TaskId(i as u64), JobId(*job), *bytes, SimTime::ZERO);
    }
    q.finish(); // plug completes; arbitration begins over the full set
    let mut order = Vec::new();
    while let Some(t) = q.dispatch() {
        order.push(t.task.0 as usize);
        q.finish();
    }
    order
}

/// Dispatch order of the same workload on the real engine.
fn real_order(policy: IpcPolicy, tag: &str) -> Vec<usize> {
    let root: PathBuf =
        std::env::temp_dir().join(format!("norns-differential-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    let engine: Arc<Engine> = Engine::with_config(
        EngineConfig {
            workers: 1,
            chunk_size: 1 << 30, // keep every copy monolithic
            ..EngineConfig::default()
        },
        policy,
    );
    engine
        .register_dataspace(DataspaceDesc {
            nsid: "tmp0".into(),
            kind: BackendKind::PosixFilesystem,
            mount: root.join("ds").to_string_lossy().into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();
    let mount = root.join("ds");
    fs::write(mount.join("plug.src"), vec![1u8; PLUG_BYTES as usize]).unwrap();
    for (i, (_, bytes)) in WORKLOAD.iter().enumerate() {
        fs::write(mount.join(format!("in{i}.dat")), vec![2u8; *bytes as usize]).unwrap();
    }
    let copy = |src: &str, dst: &str| {
        TaskSpec::new(
            TaskOp::Copy,
            ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: src.into(),
            },
            Some(ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: dst.into(),
            }),
        )
    };
    let plug = engine
        .submit(PLUG_JOB, copy("plug.src", "plug.dst"), None)
        .unwrap();
    let mut ids = Vec::new();
    for (i, (job, _)) in WORKLOAD.iter().enumerate() {
        ids.push(
            engine
                .submit(
                    *job,
                    copy(&format!("in{i}.dat"), &format!("out{i}.dat")),
                    None,
                )
                .unwrap(),
        );
    }
    engine.wait(plug, 0).unwrap();
    let mut touched: Vec<(u64, usize)> = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let stats = engine.wait(*id, 0).unwrap();
        assert_eq!(stats.state, TaskState::Finished);
        assert_eq!(stats.bytes_total, WORKLOAD[i].1, "size estimate feeds SJF");
        touched.push((stats.wait_usec, i));
    }
    engine.shutdown();
    let _ = fs::remove_dir_all(&root);
    touched.sort();
    touched.into_iter().map(|(_, i)| i).collect()
}

#[test]
fn fcfs_orders_identically_in_sim_and_real() {
    let sim = sim_order(Box::new(Fcfs));
    assert_eq!(sim, vec![0, 1, 2, 3, 4, 5, 6, 7], "FCFS = submission order");
    assert_eq!(real_order(Box::new(Fcfs), "fcfs"), sim);
}

#[test]
fn fair_share_orders_identically_in_sim_and_real() {
    let sim = sim_order(Box::new(JobFairShare::default()));
    assert_ne!(
        sim,
        vec![0, 1, 2, 3, 4, 5, 6, 7],
        "the workload must discriminate fair-share from FCFS"
    );
    assert_eq!(
        real_order(Box::new(JobFairShare::default()), "fair"),
        sim,
        "fair-share service history must evolve identically in both worlds"
    );
}

#[test]
fn sjf_orders_identically_in_sim_and_real() {
    let sim = sim_order(Box::new(ShortestFirst));
    // Distinct sizes: SJF order is the size-sorted permutation.
    let mut by_size: Vec<usize> = (0..WORKLOAD.len()).collect();
    by_size.sort_by_key(|&i| WORKLOAD[i].1);
    assert_eq!(sim, by_size);
    assert_eq!(real_order(Box::new(ShortestFirst), "sjf"), sim);
}
