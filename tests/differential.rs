//! Sim-vs-real differential test: the same job set, submitted to the
//! simulated urd's `norns::TaskQueue` and to the real `norns_ipc`
//! engine, must dispatch in the *same order* under every shared
//! arbitration policy. This is the contract PR 1 extracted the
//! `norns-sched` crate for — if the two worlds ever disagree, a
//! workflow tuned in the simulator would behave differently on live
//! daemons.
//!
//! Ordering is observed without races: the real engine runs **one**
//! worker pinned by a plug task while the whole set is submitted, so
//! every arbitration decision sees the full pending set, exactly like
//! the sim-side dispatch loop. Dispatch order is then recovered from
//! `wait_usec` (submission → first worker touch): with one worker,
//! consecutive dispatches are separated by a whole multi-MiB copy,
//! orders of magnitude above the submission loop's skew.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use norns::{JobId, TaskId, TaskQueue};
use norns_ipc::{Engine, EngineConfig};
use norns_proto::{BackendKind, DataspaceDesc, ResourceDesc, TaskOp, TaskSpec, TaskState};
use norns_sched::{ArbitrationPolicy, Fcfs, JobFairShare, ShortestFirst};
use simcore::SimTime;

/// (job, bytes) submission order shared by both worlds. Sizes are
/// distinct so SJF has a unique order, and jobs interleave so
/// fair-share differs from FCFS.
const WORKLOAD: [(u64, u64); 8] = [
    (1, 24 << 20),
    (1, 18 << 20),
    (2, 22 << 20),
    (1, 28 << 20),
    (3, 16 << 20),
    (2, 26 << 20),
    (3, 20 << 20),
    (2, 30 << 20),
];

/// The plug occupying the real engine's single worker while the set is
/// submitted; mirrored in the sim so policies with history (fair
/// share) see identical service sequences.
const PLUG_JOB: u64 = 0;
const PLUG_BYTES: u64 = 96 << 20;

type SimPolicy = Box<dyn ArbitrationPolicy<JobId, TaskId, SimTime>>;
type IpcPolicy = Box<dyn ArbitrationPolicy<u64, u64, u64>>;

/// Dispatch order of the workload on the simulated queue (task index
/// per WORKLOAD position).
fn sim_order(policy: SimPolicy) -> Vec<usize> {
    let mut q = TaskQueue::new(1, policy);
    // Plug: enqueued and dispatched before the rest exists, exactly
    // like the real engine's idle worker grabs it.
    q.enqueue(TaskId(999), JobId(PLUG_JOB), PLUG_BYTES, SimTime::ZERO);
    assert_eq!(q.dispatch().unwrap().task, TaskId(999));
    for (i, (job, bytes)) in WORKLOAD.iter().enumerate() {
        q.enqueue(TaskId(i as u64), JobId(*job), *bytes, SimTime::ZERO);
    }
    q.finish(); // plug completes; arbitration begins over the full set
    let mut order = Vec::new();
    while let Some(t) = q.dispatch() {
        order.push(t.task.0 as usize);
        q.finish();
    }
    order
}

/// Dispatch order of the same workload on the real engine.
fn real_order(policy: IpcPolicy, tag: &str) -> Vec<usize> {
    let root: PathBuf =
        std::env::temp_dir().join(format!("norns-differential-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    let engine: Arc<Engine> = Engine::with_config(
        EngineConfig {
            workers: 1,
            chunk_size: 1 << 30, // keep every copy monolithic
            ..EngineConfig::default()
        },
        policy,
    );
    engine
        .register_dataspace(DataspaceDesc {
            nsid: "tmp0".into(),
            kind: BackendKind::PosixFilesystem,
            mount: root.join("ds").to_string_lossy().into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();
    let mount = root.join("ds");
    fs::write(mount.join("plug.src"), vec![1u8; PLUG_BYTES as usize]).unwrap();
    for (i, (_, bytes)) in WORKLOAD.iter().enumerate() {
        fs::write(mount.join(format!("in{i}.dat")), vec![2u8; *bytes as usize]).unwrap();
    }
    let copy = |src: &str, dst: &str| {
        TaskSpec::new(
            TaskOp::Copy,
            ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: src.into(),
            },
            Some(ResourceDesc::PosixPath {
                nsid: "tmp0".into(),
                path: dst.into(),
            }),
        )
    };
    let plug = engine
        .submit(PLUG_JOB, copy("plug.src", "plug.dst"), None)
        .unwrap();
    let mut ids = Vec::new();
    for (i, (job, _)) in WORKLOAD.iter().enumerate() {
        ids.push(
            engine
                .submit(
                    *job,
                    copy(&format!("in{i}.dat"), &format!("out{i}.dat")),
                    None,
                )
                .unwrap(),
        );
    }
    engine.wait(plug, 0).unwrap();
    let mut touched: Vec<(u64, usize)> = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let stats = engine.wait(*id, 0).unwrap();
        assert_eq!(stats.state, TaskState::Finished);
        assert_eq!(stats.bytes_total, WORKLOAD[i].1, "size estimate feeds SJF");
        touched.push((stats.wait_usec, i));
    }
    engine.shutdown();
    let _ = fs::remove_dir_all(&root);
    touched.sort();
    touched.into_iter().map(|(_, i)| i).collect()
}

#[test]
fn fcfs_orders_identically_in_sim_and_real() {
    let sim = sim_order(Box::new(Fcfs));
    assert_eq!(sim, vec![0, 1, 2, 3, 4, 5, 6, 7], "FCFS = submission order");
    assert_eq!(real_order(Box::new(Fcfs), "fcfs"), sim);
}

#[test]
fn fair_share_orders_identically_in_sim_and_real() {
    let sim = sim_order(Box::new(JobFairShare::default()));
    assert_ne!(
        sim,
        vec![0, 1, 2, 3, 4, 5, 6, 7],
        "the workload must discriminate fair-share from FCFS"
    );
    assert_eq!(
        real_order(Box::new(JobFairShare::default()), "fair"),
        sim,
        "fair-share service history must evolve identically in both worlds"
    );
}

#[test]
fn sjf_orders_identically_in_sim_and_real() {
    let sim = sim_order(Box::new(ShortestFirst));
    // Distinct sizes: SJF order is the size-sorted permutation.
    let mut by_size: Vec<usize> = (0..WORKLOAD.len()).collect();
    by_size.sort_by_key(|&i| WORKLOAD[i].1);
    assert_eq!(sim, by_size);
    assert_eq!(real_order(Box::new(ShortestFirst), "sjf"), sim);
}

/// Sim-vs-real differential for the *mapping* semantics: a `scatter`
/// stage-in must place each enumerated child on exactly one node —
/// and on the *same* node — in both worlds (mirroring the simulator's
/// `scatter_mapping_splits_children_across_nodes`), never
/// replicating the way real-mode `scatter` used to when it degraded
/// to `all`.
mod scatter_gather {
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    use norns::{HasNorns, NornsWorld, TaskCompletion};
    use norns_flow::{FlowConfig, FlowJobState, JobBody, NodeSpec, WorkflowExecutor};
    use norns_ipc::{CtlClient, DaemonConfig, UrdDaemon};
    use norns_proto::{BackendKind, DataspaceDesc};
    use simcore::{CompletedFlow, FluidModel, FluidSystem, Sim, SimDuration};
    use simstore::{Cred, Mode};
    use slurm_sim::{submit_script, HasSlurm, JobState, SchedConfig, Slurmctld};

    const NODES: usize = 2;
    const CHILDREN: [&str; 4] = ["part0.dat", "part1.dat", "part2.dat", "part3.dat"];
    const SCRIPT: &str = "#SBATCH --job-name=sg\n\
                          #SBATCH --nodes=2\n\
                          #NORNS stage_in lustre://case pmdk0://case scatter\n";

    struct Model {
        world: NornsWorld,
        ctld: Slurmctld,
    }

    impl FluidModel for Model {
        fn fluid_mut(&mut self) -> &mut FluidSystem {
            &mut self.world.fluid
        }
        fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
            norns::handle_flow_complete(sim, done);
        }
    }

    impl HasNorns for Model {
        fn norns_mut(&mut self) -> &mut NornsWorld {
            &mut self.world
        }
        fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
            slurm_sim::handle_task_complete(sim, &completion);
        }
    }

    impl HasSlurm for Model {
        fn ctld_mut(&mut self) -> &mut Slurmctld {
            &mut self.ctld
        }
    }

    /// Which children each node holds once the simulated job reaches
    /// Running (stage-in complete), as `node → sorted child names`.
    fn sim_placement() -> Vec<Vec<String>> {
        let tb = cluster::nextgenio_quiet(NODES);
        let ctld = Slurmctld::new(NODES, SchedConfig::default());
        let mut sim = Sim::new(
            Model {
                world: tb.world,
                ctld,
            },
            7,
        );
        for n in 0..NODES {
            norns::sim::ops::register_dataspace(&mut sim, n, "pmdk0", "pmdk0", false).unwrap();
            norns::sim::ops::register_dataspace(&mut sim, n, "lustre", "lustre", false).unwrap();
        }
        let cred = Cred::new(1000, 1000);
        {
            let t = sim.model.world.storage.resolve("lustre").unwrap();
            for c in CHILDREN {
                sim.model
                    .world
                    .storage
                    .ns_mut(t, None)
                    .write_file(&format!("case/{c}"), 1 << 20, &cred, Mode(0o644))
                    .unwrap();
            }
        }
        let id = submit_script(
            &mut sim,
            SCRIPT,
            cred,
            slurm_sim::JobBody::Fixed(SimDuration::from_secs(60)),
        )
        .unwrap();
        while sim.model.ctld.job(id).unwrap().state != JobState::Running && sim.step() {}
        assert_eq!(sim.model.ctld.job(id).unwrap().state, JobState::Running);
        let t = sim.model.world.storage.resolve("pmdk0").unwrap();
        (0..NODES)
            .map(|n| {
                CHILDREN
                    .iter()
                    .filter(|c| {
                        sim.model
                            .world
                            .storage
                            .ns(t, Some(n))
                            .exists(&format!("case/{c}"))
                    })
                    .map(|c| c.to_string())
                    .collect()
            })
            .collect()
    }

    fn spawn(root: &Path, name: &str) -> UrdDaemon {
        UrdDaemon::spawn(
            DaemonConfig::in_dir(root.join(name).join("sockets"))
                .with_chunk_size(1 << 30)
                .with_data_addr("127.0.0.1:0"),
        )
        .unwrap()
    }

    fn register(daemon: &UrdDaemon, nsid: &str, mount: &Path) {
        let mut ctl = CtlClient::connect(&daemon.control_path).unwrap();
        ctl.register_dataspace(DataspaceDesc {
            nsid: nsid.into(),
            kind: BackendKind::PosixFilesystem,
            mount: mount.to_string_lossy().into_owned(),
            quota: 0,
            tracked: false,
        })
        .unwrap();
    }

    /// The same workload against two live daemons: node 0 hosts the
    /// shared `lustre` tier plus its node-local `pmdk0`, node 1 its
    /// own `pmdk0` (same nsid, own mount — the node-local pattern).
    fn real_placement() -> Vec<Vec<String>> {
        let root: PathBuf =
            std::env::temp_dir().join(format!("norns-diff-scatter-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        let daemon_a = spawn(&root, "n0");
        let daemon_b = spawn(&root, "n1");
        let lustre = root.join("n0/lustre");
        let pmdk = [root.join("n0/pmdk"), root.join("n1/pmdk")];
        register(&daemon_a, "lustre", &lustre);
        register(&daemon_a, "pmdk0", &pmdk[0]);
        register(&daemon_b, "pmdk0", &pmdk[1]);
        fs::create_dir_all(lustre.join("case")).unwrap();
        for c in CHILDREN {
            fs::write(lustre.join("case").join(c), vec![7u8; 1 << 10]).unwrap();
        }
        let mut exec = WorkflowExecutor::new(FlowConfig::default());
        exec.add_node(NodeSpec {
            name: "n0".into(),
            control_path: daemon_a.control_path.clone(),
            dataspaces: vec!["lustre".into(), "pmdk0".into()],
        })
        .unwrap();
        exec.add_node(NodeSpec {
            name: "n1".into(),
            control_path: daemon_b.control_path.clone(),
            dataspaces: vec!["pmdk0".into()],
        })
        .unwrap();
        let job = exec.submit(SCRIPT, JobBody::Sleep(Duration::ZERO)).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.job_state(job), Some(FlowJobState::Completed));
        let placement = pmdk
            .iter()
            .map(|mount| {
                CHILDREN
                    .iter()
                    .filter(|c| mount.join("case").join(c).exists())
                    .map(|c| c.to_string())
                    .collect()
            })
            .collect();
        drop(daemon_a);
        drop(daemon_b);
        let _ = fs::remove_dir_all(&root);
        placement
    }

    #[test]
    fn scatter_places_children_identically_in_sim_and_real() {
        let sim = sim_placement();
        // The sim's contract first: round-robin over sorted children,
        // no replication.
        assert_eq!(
            sim,
            vec![
                vec!["part0.dat".to_string(), "part2.dat".to_string()],
                vec!["part1.dat".to_string(), "part3.dat".to_string()],
            ],
            "sim scatter must deal sorted children round-robin"
        );
        let real = real_placement();
        assert_eq!(
            real, sim,
            "real-mode scatter must place every child on the same node as the simulator, \
             with no replication"
        );
    }
}
