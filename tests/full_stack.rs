//! Cross-crate integration: the full stack from batch script to bytes
//! on tiers, plus miniature versions of the paper's headline results.

use norns::{HasNorns, NornsWorld, TaskCompletion};
use simcore::{CompletedFlow, FluidModel, FluidSystem, Sim, SimDuration, SimTime};
use simstore::{Cred, IoDir, Mode};
use slurm_sim::{submit_script, HasSlurm, JobBody, JobEvent, JobState, SchedConfig, Slurmctld};
use workloads::prodcons::{run_phase, ProdConsConfig};
use workloads::{register_tiers, BenchWorld};

const GB: u64 = 1_000_000_000;

struct Stack {
    world: NornsWorld,
    ctld: Slurmctld,
    events: Vec<(SimTime, JobEvent)>,
}

impl FluidModel for Stack {
    fn fluid_mut(&mut self) -> &mut FluidSystem {
        &mut self.world.fluid
    }
    fn on_flow_complete(sim: &mut Sim<Self>, done: CompletedFlow) {
        norns::handle_flow_complete(sim, done);
    }
}

impl HasNorns for Stack {
    fn norns_mut(&mut self) -> &mut NornsWorld {
        &mut self.world
    }
    fn on_task_complete(sim: &mut Sim<Self>, completion: TaskCompletion) {
        slurm_sim::handle_task_complete(sim, &completion);
    }
}

impl HasSlurm for Stack {
    fn ctld_mut(&mut self) -> &mut Slurmctld {
        &mut self.ctld
    }
    fn on_job_event(sim: &mut Sim<Self>, event: JobEvent) {
        let now = sim.now();
        // The producer job materializes output at start.
        if let JobEvent::Started { job, nodes } = &event {
            let name = sim.model.ctld.job(*job).unwrap().script.name.clone();
            if name == "producer" {
                let t = sim.model.world.storage.resolve("pmdk0").unwrap();
                sim.model
                    .world
                    .storage
                    .ns_mut(t, Some(nodes[0]))
                    .write_file("wf/data.bin", 10 * GB, &Cred::new(1000, 1000), Mode(0o644))
                    .unwrap();
            }
        }
        sim.model.events.push((now, event));
    }
}

fn stack(nodes: usize) -> Sim<Stack> {
    let tb = cluster::nextgenio_quiet(nodes);
    let ctld = Slurmctld::new(nodes, SchedConfig::default());
    let mut sim = Sim::new(
        Stack {
            world: tb.world,
            ctld,
            events: vec![],
        },
        3,
    );
    register_tiers(&mut sim);
    sim
}

#[test]
fn script_to_bytes_roundtrip() {
    // A producer/consumer workflow expressed purely as batch scripts
    // moves real (simulated) bytes between tiers and nodes.
    let mut sim = stack(3);
    let cred = Cred::new(1000, 1000);
    let producer = submit_script(
        &mut sim,
        "#SBATCH --job-name=producer\n#SBATCH --nodes=1\n#SBATCH --workflow-start\n\
         #NORNS persist store pmdk0://wf alice\n",
        cred.clone(),
        JobBody::Fixed(SimDuration::from_secs(20)),
    )
    .unwrap();
    let consumer = submit_script(
        &mut sim,
        "#SBATCH --job-name=consumer\n#SBATCH --nodes=2\n\
         #SBATCH --workflow-end\n#SBATCH --workflow-prior-dependency=producer\n\
         #NORNS stage_in pmdk0://wf pmdk0://wf all\n\
         #NORNS stage_out pmdk0://wf lustre://final gather\n",
        cred,
        JobBody::Fixed(SimDuration::from_secs(10)),
    )
    .unwrap();
    sim.run();
    let p = sim.model.ctld.job(producer).unwrap();
    let c = sim.model.ctld.job(consumer).unwrap();
    assert_eq!(p.state, JobState::Completed);
    assert_eq!(c.state, JobState::Completed);
    // The consumer includes the producer's node (affinity) and pulled
    // a copy to its second node.
    assert!(c.nodes.contains(&p.nodes[0]));
    // Final data landed on Lustre via stage-out.
    let t = sim.model.world.storage.resolve("lustre").unwrap();
    assert!(sim.model.world.storage.ns(t, None).exists("final/data.bin"));
    // The workflow ran strictly in order.
    let p_done = p.finished.unwrap();
    let c_start = c.stage_in_started.unwrap();
    assert!(c_start >= p_done);
}

#[test]
fn nvm_workflow_beats_lustre_workflow() {
    // Miniature Table III on the full simulated testbed.
    let cfg = ProdConsConfig {
        data_bytes: 20 * GB,
        files: 20,
        producer_compute: SimDuration::from_secs(9),
        consumer_compute: SimDuration::from_secs(4),
    };
    let tb = cluster::nextgenio_quiet(2);
    let mut sim = Sim::new(BenchWorld::new(tb.world), 1);
    register_tiers(&mut sim);
    let lustre = run_phase(&mut sim, 0, "lustre", &cfg.producer())
        + run_phase(&mut sim, 1, "lustre", &cfg.consumer());
    let nvm = run_phase(&mut sim, 0, "pmdk0", &cfg.producer())
        + run_phase(&mut sim, 0, "pmdk0", &cfg.consumer());
    assert!(
        nvm.as_secs_f64() < lustre.as_secs_f64() * 0.75,
        "NVM workflow must be >25% faster: lustre {lustre}, nvm {nvm}"
    );
}

#[test]
fn node_local_aggregate_scales_but_pfs_does_not() {
    // Miniature Fig. 8.
    let bw = |tier: &str, nodes: usize| {
        let tb = cluster::nextgenio_quiet(nodes);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 2);
        register_tiers(&mut sim);
        let t0 = sim.now();
        let tokens: Vec<u64> = (0..nodes)
            .map(|n| {
                norns::sim::ops::app_io(&mut sim, n, tier, IoDir::Write, 8 * GB, 48, None).unwrap()
            })
            .collect();
        let end = workloads::wait_tokens(&mut sim, &tokens);
        (8 * GB * nodes as u64) as f64 / (end - t0).as_secs_f64()
    };
    let nvm_1 = bw("pmdk0", 1);
    let nvm_8 = bw("pmdk0", 8);
    let pfs_1 = bw("lustre", 1);
    let pfs_8 = bw("lustre", 8);
    assert!((nvm_8 / nvm_1 - 8.0).abs() < 0.2, "NVM scales linearly");
    assert!(pfs_8 / pfs_1 < 4.0, "PFS saturates at the server side");
    assert!(nvm_8 > pfs_8 * 5.0, "order-of-magnitude gap at scale");
}

#[test]
fn wire_protocol_matches_real_daemon_behaviour() {
    // The same TaskSpec shape accepted by the simulated controller is
    // accepted by the real daemon over the wire.
    let root = std::env::temp_dir().join(format!("norns-fullstack-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let daemon =
        norns_ipc::UrdDaemon::spawn(norns_ipc::DaemonConfig::in_dir(root.join("s"))).unwrap();
    let mut ctl = norns_ipc::CtlClient::connect(&daemon.control_path).unwrap();
    ctl.register_dataspace(norns_proto::DataspaceDesc {
        nsid: "tmp0".into(),
        kind: norns_proto::BackendKind::Tmpfs,
        mount: root.join("tmp0").to_string_lossy().into_owned(),
        quota: 0,
        tracked: false,
    })
    .unwrap();
    std::fs::create_dir_all(root.join("tmp0")).unwrap();
    std::fs::write(root.join("tmp0/x"), b"payload").unwrap();
    let task = ctl
        .submit(
            0,
            norns_proto::TaskSpec {
                op: norns_proto::TaskOp::Move,
                priority: norns_proto::DEFAULT_PRIORITY,
                input: norns_proto::ResourceDesc::PosixPath {
                    nsid: "tmp0".into(),
                    path: "x".into(),
                },
                output: Some(norns_proto::ResourceDesc::PosixPath {
                    nsid: "tmp0".into(),
                    path: "y".into(),
                }),
                durability: norns_proto::Durability::LocalOnly,
            },
            None,
        )
        .unwrap();
    let stats = ctl.wait(task, 0).unwrap();
    assert_eq!(stats.state, norns_proto::TaskState::Finished);
    assert!(!root.join("tmp0/x").exists());
    assert!(root.join("tmp0/y").exists());
}

#[test]
fn experiment_drivers_produce_paper_shapes() {
    // Tiny versions of the Fig. 5/6 drivers assert the headline shapes.
    let rps_1 = norns_bench_shapes::request_rate_small(1);
    let rps_8 = norns_bench_shapes::request_rate_small(8);
    let rps_32 = norns_bench_shapes::request_rate_small(32);
    assert!(
        rps_8 > rps_1 * 2.0,
        "throughput grows with clients: {rps_1} → {rps_8}"
    );
    assert!(
        rps_32 < rps_8 * 4.0,
        "single accept thread saturates: {rps_8} → {rps_32}"
    );
}

/// The bench crate is a binary-focused crate; rebuild the small shape
/// checks here against the public API to keep the root test
/// self-contained.
mod norns_bench_shapes {
    use norns::sim::ops;
    use norns::{JobId, JobSpec, RpcRequest};
    use simcore::Sim;
    use simstore::Cred;
    use workloads::{register_tiers, BenchWorld};

    pub fn request_rate_small(clients: usize) -> f64 {
        let tb = cluster::bandwidth_bench(clients);
        let mut sim = Sim::new(BenchWorld::new(tb.world), 9);
        register_tiers(&mut sim);
        ops::register_job(
            &mut sim,
            JobSpec {
                id: JobId(1),
                hosts: (0..clients + 1).collect(),
                limits: vec![("pmdk0".into(), 0)],
                cred: Cred::new(1, 1),
            },
        )
        .unwrap();
        let per_client = 300;
        let mut sent = vec![0usize; clients + 1];
        #[allow(clippy::needless_range_loop)]
        for c in 1..=clients {
            let tok = ((c as u64) << 32) | sent[c] as u64;
            ops::rpc_call(&mut sim, c, 0, RpcRequest::Ping, tok);
            sent[c] += 1;
        }
        let total = clients * per_client;
        let mut seen = 0;
        let mut cursor = 0;
        let mut last = simcore::SimTime::ZERO;
        while seen < total {
            assert!(sim.step());
            while cursor < sim.model.reply_times.len() {
                let (tok, at) = sim.model.reply_times[cursor];
                cursor += 1;
                seen += 1;
                last = last.max(at);
                let c = (tok >> 32) as usize;
                if sent[c] < per_client {
                    let tok = ((c as u64) << 32) | sent[c] as u64;
                    ops::rpc_call(&mut sim, c, 0, RpcRequest::Ping, tok);
                    sent[c] += 1;
                }
            }
        }
        let secs = last.as_secs_f64();
        total as f64 / secs
    }
}
